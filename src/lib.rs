#![warn(missing_docs)]

//! # darwin-repro
//!
//! Umbrella crate for the Darwin reproduction (Chen et al., *Darwin:
//! Flexible Learning-based CDN Caching*, SIGCOMM 2023). It exists to host
//! the repository-level `examples/` and cross-crate integration `tests/`;
//! the functionality lives in the workspace crates it re-exports:
//!
//! * [`darwin`] — the paper's contribution (offline trainer, model, online
//!   controller, experts);
//! * [`darwin_trace`] — synthetic CDN traces, trace I/O and dynamics;
//! * [`darwin_cache`] — the two-level HOC/DC cache simulator;
//! * [`darwin_features`] — feature extraction, footprint descriptors, drift
//!   detection, trace synthesis;
//! * [`darwin_cluster`] — k-means and normalization;
//! * [`darwin_nn`] — the from-scratch MLPs behind the cross-expert
//!   predictors;
//! * [`darwin_bandit`] — Track-and-Stop with Side Information and baselines;
//! * [`darwin_baselines`] — AdaptSize, Percentile, HillClimbing,
//!   DirectMapping;
//! * [`darwin_testbed`] — the discrete-event prototype testbed.
//!
//! See `README.md` for a tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction methodology and results.

pub use darwin;
pub use darwin_bandit;
pub use darwin_baselines;
pub use darwin_cache;
pub use darwin_cluster;
pub use darwin_features;
pub use darwin_nn;
pub use darwin_testbed;
pub use darwin_trace;
