//! Trace synthesis from a footprint descriptor — the core capability of
//! Tragen (Sabnis & Sitaraman, IMC'21), which the paper uses to build its
//! entire evaluation corpus: given a descriptor measured from (possibly
//! anonymized) production logs, emit a synthetic trace whose reuse-distance
//! distribution — and therefore its LRU hit-rate curve at *every* cache
//! size — matches the original.
//!
//! Algorithm: the inverse of the Mattson measurement in [`crate::hrc`]. A
//! Fenwick tree over emission positions holds each live object's size at
//! its most recent access. Per request:
//!
//! 1. sample a reuse-distance bucket from the descriptor's request
//!    fractions (the unbounded bucket emits a *cold* request: a fresh
//!    object);
//! 2. for a warm bucket, draw a target byte distance `d` within the bucket
//!    and binary-search the position `q` whose suffix byte-sum brackets `d`
//!    (the distance of the object at `q` is exactly the bytes at positions
//!    ≥ q, which decreases monotonically in q);
//! 3. re-emit that object, moving its Fenwick mass to the new position.
//!
//! Validation (see tests): descriptor(synthesize(descriptor(T))) ≈
//! descriptor(T), and the synthesized trace's simulated LRU hit rate matches
//! the original's within a few percent — Tragen's own fidelity criterion.

use crate::hrc::FootprintDescriptor;
use darwin_trace::{Request, SizeModel, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Synthesizes `n` requests matching `descriptor`'s reuse-distance
/// distribution. Object sizes are drawn from `sizes` (the descriptor
/// constrains temporal locality, not the size marginal); inter-arrivals are
/// Poisson at `rate_rps`.
pub fn synthesize(
    descriptor: &FootprintDescriptor,
    sizes: &SizeModel,
    rate_rps: f64,
    n: usize,
    seed: u64,
) -> Trace {
    assert!(descriptor.total_requests() > 0, "descriptor must be non-empty");
    assert!(rate_rps > 0.0, "rate must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = descriptor.edges();
    let counts = descriptor.request_counts();
    let total: u64 = counts.iter().sum();

    // Cumulative bucket distribution for sampling.
    let mut cum = Vec::with_capacity(counts.len());
    let mut acc = 0u64;
    for &c in counts {
        acc += c;
        cum.push(acc);
    }

    // Emission state.
    let mut fen = FenwickI64::new(n);
    // position → (object id, size) for *live* (most-recent) positions.
    let mut live: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    let mut total_bytes: u64 = 0;
    let mut next_id: u64 = 0;
    let mut t_us: u64 = 0;
    let lambda_per_us = rate_rps / 1e6;
    let mut requests = Vec::with_capacity(n);

    for pos in 0..n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t_us = t_us.saturating_add(((-u.ln() / lambda_per_us).round() as u64).max(1));

        // Sample a bucket.
        let draw = rng.gen_range(0..total);
        let bucket = cum.iter().position(|&c| draw < c).unwrap_or(counts.len() - 1);
        let is_cold = bucket == edges.len() || live.is_empty();

        let (id, size) = if is_cold {
            let id = next_id;
            next_id += 1;
            (id, sizes.sample(&mut rng))
        } else {
            // Target distance within the bucket, clamped to what's live.
            let lo = if bucket == 0 { 1 } else { edges[bucket - 1] + 1 };
            let hi = edges[bucket].min(total_bytes.max(1));
            let d = if lo >= hi { hi } else { rng.gen_range(lo..=hi) };
            // Find the largest q whose suffix byte-sum ≥ d; the object at
            // the first live position ≥ q has distance closest above d.
            let q = suffix_search(&fen, total_bytes, d, pos);
            let (&qpos, &(id, size)) = live
                .range(q..)
                .next()
                .or_else(|| live.iter().next_back())
                .expect("live set non-empty for warm requests");
            // Move the object's mass to the new position.
            fen.add(qpos, -(size as i64));
            live.remove(&qpos);
            total_bytes -= size;
            (id, size)
        };

        fen.add(pos, size as i64);
        live.insert(pos, (id, size));
        total_bytes += size;
        requests.push(Request::new(id, size, t_us));
    }
    Trace::from_sorted(requests)
}

/// Largest position `q` with `suffix_bytes(q) ≥ d`, where
/// `suffix_bytes(q) = Σ_{pos ≥ q} size(pos)`. Binary search on the monotone
/// suffix (O(log² n) — fine for synthesis).
fn suffix_search(fen: &FenwickI64, total_bytes: u64, d: u64, upper: usize) -> usize {
    let (mut lo, mut hi) = (0usize, upper); // invariant: suffix(lo) ≥ d
    if total_bytes < d {
        return 0;
    }
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let suffix = total_bytes - if mid == 0 { 0 } else { fen.prefix(mid - 1) };
        if suffix >= d {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Minimal signed Fenwick tree (adds may remove previously-added mass).
#[derive(Debug, Clone)]
struct FenwickI64 {
    tree: Vec<i64>,
}

impl FenwickI64 {
    fn new(n: usize) -> Self {
        Self { tree: vec![0; n + 1] }
    }

    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `[0, i]`, as u64 (sums are never negative).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0i64;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn reference_trace(n: usize) -> Trace {
        TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 77)
            .generate(n)
    }

    #[test]
    fn synthesized_trace_has_requested_length_and_order() {
        let fd = FootprintDescriptor::compute(&reference_trace(20_000));
        let sizes = SizeModel::from_median(50.0 * 1024.0, 1.2, 128, 10 * 1024 * 1024);
        let t = synthesize(&fd, &sizes, 200.0, 10_000, 1);
        assert_eq!(t.len(), 10_000);
        assert!(t.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn synthesis_is_deterministic_in_seed() {
        let fd = FootprintDescriptor::compute(&reference_trace(10_000));
        let sizes = SizeModel::from_median(50.0 * 1024.0, 1.2, 128, 10 * 1024 * 1024);
        assert_eq!(synthesize(&fd, &sizes, 200.0, 5_000, 9), synthesize(&fd, &sizes, 200.0, 5_000, 9));
        assert_ne!(synthesize(&fd, &sizes, 200.0, 5_000, 9), synthesize(&fd, &sizes, 200.0, 5_000, 10));
    }

    #[test]
    fn descriptor_roundtrip_matches_bucket_fractions() {
        // Tragen's fidelity criterion: the synthesized trace's descriptor
        // should be close to the input descriptor, bucket by bucket.
        let original = reference_trace(30_000);
        let fd = FootprintDescriptor::compute(&original);
        // Use the measured per-request sizes' scale for the synthetic sizes.
        let sizes = SizeModel::from_median(40.0 * 1024.0, 1.3, 128, 20 * 1024 * 1024);
        let synth = synthesize(&fd, &sizes, 265.9, 30_000, 3);
        let fd2 = FootprintDescriptor::compute(&synth);

        let f1 = fd.as_features();
        let f2 = fd2.as_features();
        let l1: f64 = f1.values().iter().zip(f2.values()).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.35, "bucket-fraction L1 distance {l1:.3} too large");
    }

    #[test]
    fn synthesized_hit_rate_matches_original_lru() {
        use darwin_cache::{EvictionKind, HocSim, ThresholdPolicy};
        let original = reference_trace(30_000);
        let fd = FootprintDescriptor::compute(&original);
        let sizes = SizeModel::from_median(40.0 * 1024.0, 1.3, 128, 20 * 1024 * 1024);
        let synth = synthesize(&fd, &sizes, 265.9, 30_000, 4);

        let cache_bytes = 8 * 1024 * 1024u64;
        let run = |t: &Trace| {
            let mut sim = HocSim::new(cache_bytes, EvictionKind::Lru, ThresholdPolicy::new(0, u64::MAX));
            sim.run_trace(t).hoc_ohr()
        };
        let (a, b) = (run(&original), run(&synth));
        assert!((a - b).abs() < 0.06, "original LRU OHR {a:.4} vs synthesized {b:.4}");
    }

    #[test]
    fn cold_only_descriptor_yields_all_unique_objects() {
        // A trace of all-distinct objects has a descriptor with everything
        // in the unbounded bucket; synthesis must produce all-cold requests.
        let t = Trace::from_requests((0..1000u64).map(|i| Request::new(i, 1000, i)).collect());
        let fd = FootprintDescriptor::compute(&t);
        let sizes = SizeModel::from_median(1000.0, 0.5, 100, 10_000);
        let synth = synthesize(&fd, &sizes, 100.0, 1000, 5);
        assert_eq!(synth.unique_objects(), 1000);
    }

    #[test]
    fn tight_loop_descriptor_yields_high_reuse() {
        // One object requested n times: descriptor is ~all in the smallest
        // bucket; the synthesized trace must be strongly reusing.
        let t = Trace::from_requests((0..2000u64).map(|i| Request::new(7, 4096, i)).collect());
        let fd = FootprintDescriptor::compute(&t);
        let sizes = SizeModel::from_median(4096.0, 0.1, 1024, 16_384);
        let synth = synthesize(&fd, &sizes, 100.0, 2000, 6);
        assert!(
            synth.unique_objects() < 50,
            "expected heavy reuse, got {} unique objects",
            synth.unique_objects()
        );
    }
}
