//! Bucketized request-size distribution.
//!
//! §4.1: "we first extend the set of features associated with each trace with
//! a bucketized version of its size distribution … the number of buckets to
//! use can be chosen as necessary." §6.3 reuses the same histogram to convert
//! OHR predictions into byte-level (BMR) and disk-write estimates.
//!
//! Bucket edges default to the expert size-threshold grid (10, 20, 50, 100,
//! 500, 1000 KB, ∞) — the paper's prototype stores a distribution "whose
//! entry number is the same as the size threshold selection range" (§6.4).

use darwin_ckpt::{CkptError, Dec, Enc};
use serde::{Deserialize, Serialize};

/// A request-size histogram over fixed byte-edge buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeDistribution {
    /// Upper (inclusive) byte edge of each bucket except the last, which is
    /// unbounded.
    edges: Vec<u64>,
    /// Request counts per bucket (`edges.len() + 1` entries).
    counts: Vec<u64>,
    /// Sum of request sizes per bucket (for byte-weighted estimates).
    bytes: Vec<u64>,
    total: u64,
}

impl SizeDistribution {
    /// Histogram with the given ascending bucket edges (bytes).
    pub fn new(edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "at least one edge required");
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must be ascending");
        let n = edges.len() + 1;
        Self { edges, counts: vec![0; n], bytes: vec![0; n], total: 0 }
    }

    /// The paper's default edges: the expert size-threshold grid in KB.
    pub fn paper_default() -> Self {
        Self::new(vec![10, 20, 50, 100, 500, 1000].into_iter().map(|k| k * 1024).collect())
    }

    /// Records one request of `size` bytes.
    pub fn observe(&mut self, size: u64) {
        let b = self.bucket_of(size);
        self.counts[b] += 1;
        self.bytes[b] += size;
        self.total += 1;
    }

    /// Index of the bucket holding `size`.
    pub fn bucket_of(&self, size: u64) -> usize {
        self.edges.iter().position(|&e| size <= e).unwrap_or(self.edges.len())
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Request-count fractions per bucket (all zeros if empty).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Mean request size within each bucket (0 for empty buckets).
    pub fn mean_size_per_bucket(&self) -> Vec<f64> {
        self.counts
            .iter()
            .zip(&self.bytes)
            .map(|(&c, &b)| if c == 0 { 0.0 } else { b as f64 / c as f64 })
            .collect()
    }

    /// Fraction of requests at or below `size` bytes (bucket-resolution
    /// upper bound: whole buckets whose edge ≤ size plus the bucket of size).
    pub fn fraction_at_most(&self, size: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = self.bucket_of(size);
        let c: u64 = self.counts[..=b].iter().sum();
        c as f64 / self.total as f64
    }

    /// Overall mean request size.
    pub fn mean_size(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bytes.iter().sum::<u64>() as f64 / self.total as f64
    }

    /// Resets all counts (edges retained).
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.bytes.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
    }

    /// Serializes edges and per-bucket counters.
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.seq(&self.edges, |e, &v| e.u64(v));
        enc.seq(&self.counts, |e, &v| e.u64(v));
        enc.seq(&self.bytes, |e, &v| e.u64(v));
        enc.u64(self.total);
    }

    /// Rebuilds a histogram from bytes written by
    /// [`SizeDistribution::encode_state`], re-validating the shape
    /// invariants (ascending edges, bucket count = edges + 1, total =
    /// Σ counts).
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let edges = dec.seq(|d| d.u64())?;
        let counts = dec.seq(|d| d.u64())?;
        let bytes = dec.seq(|d| d.u64())?;
        let total = dec.u64()?;
        if edges.is_empty() || edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CkptError::Malformed("size-distribution edges not ascending".into()));
        }
        if counts.len() != edges.len() + 1 || bytes.len() != counts.len() {
            return Err(CkptError::Malformed("size-distribution bucket count mismatch".into()));
        }
        if counts.iter().sum::<u64>() != total {
            return Err(CkptError::Malformed("size-distribution total mismatch".into()));
        }
        Ok(Self { edges, counts, bytes, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive() {
        let d = SizeDistribution::new(vec![10, 100]);
        assert_eq!(d.bucket_of(10), 0);
        assert_eq!(d.bucket_of(11), 1);
        assert_eq!(d.bucket_of(100), 1);
        assert_eq!(d.bucket_of(101), 2);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut d = SizeDistribution::paper_default();
        for s in [1024u64, 15 * 1024, 60 * 1024, 2 * 1024 * 1024, 5_000] {
            d.observe(s);
        }
        let sum: f64 = d.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = SizeDistribution::paper_default();
        assert!(d.fractions().iter().all(|&f| f == 0.0));
        assert_eq!(d.mean_size(), 0.0);
        assert_eq!(d.fraction_at_most(1 << 30), 0.0);
    }

    #[test]
    fn fraction_at_most_accumulates() {
        let mut d = SizeDistribution::new(vec![10, 100]);
        d.observe(5); // bucket 0
        d.observe(50); // bucket 1
        d.observe(500); // bucket 2
        assert!((d.fraction_at_most(10) - 1.0 / 3.0).abs() < 1e-12);
        assert!((d.fraction_at_most(100) - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.fraction_at_most(u64::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_sizes_tracked_per_bucket() {
        let mut d = SizeDistribution::new(vec![10]);
        d.observe(4);
        d.observe(6);
        d.observe(100);
        let means = d.mean_size_per_bucket();
        assert!((means[0] - 5.0).abs() < 1e-12);
        assert!((means[1] - 100.0).abs() < 1e-12);
        assert!((d.mean_size() - 110.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_counts_only() {
        let mut d = SizeDistribution::new(vec![10]);
        d.observe(5);
        d.clear();
        assert_eq!(d.total(), 0);
        assert_eq!(d.num_buckets(), 2);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_edges() {
        SizeDistribution::new(vec![100, 10]);
    }
}
