//! Named feature vectors.

use darwin_ckpt::{CkptError, Dec, Enc};
use serde::{Deserialize, Serialize};

/// A dense feature vector with stable entry semantics.
///
/// Layout: `[avg_size, iat_1..iat_n, sd_1..sd_m]`, optionally extended with
/// size-distribution buckets (see [`crate::SizeDistribution`]) when used as
/// predictor input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Wraps raw values.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes into the raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Entry access.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Euclidean distance to another vector of the same length.
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        assert_eq!(self.len(), other.len(), "dimension mismatch");
        self.values.iter().zip(&other.values).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// Concatenates `extra` entries (e.g. size-distribution buckets) onto a
    /// copy of this vector.
    pub fn extended(&self, extra: &[f64]) -> FeatureVector {
        let mut v = self.values.clone();
        v.extend_from_slice(extra);
        FeatureVector::new(v)
    }

    /// Serializes the entries bit-exactly.
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.seq(&self.values, |e, &v| e.f64(v));
    }

    /// Reads entries written by [`FeatureVector::encode_state`].
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(Self { values: dec.seq(|d| d.f64())? })
    }
}

impl From<Vec<f64>> for FeatureVector {
    fn from(values: Vec<f64>) -> Self {
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = FeatureVector::new(vec![0.0, 3.0]);
        let b = FeatureVector::new(vec![4.0, 0.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = FeatureVector::new(vec![1.5, -2.0, 7.0]);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn distance_rejects_mismatched_dims() {
        FeatureVector::new(vec![1.0]).distance(&FeatureVector::new(vec![1.0, 2.0]));
    }

    #[test]
    fn extended_appends() {
        let a = FeatureVector::new(vec![1.0]);
        let e = a.extended(&[2.0, 3.0]);
        assert_eq!(e.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.len(), 1, "original untouched");
    }
}
