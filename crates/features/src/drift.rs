//! Traffic-drift detection — an extension beyond the paper.
//!
//! Darwin's epochs have fixed length `N_e`; a mix shift *inside* an epoch is
//! only corrected at the next epoch boundary. This detector watches cheap
//! rolling statistics (mean request size and the bucketized size
//! distribution — the same §4.1 histogram the prototype already keeps) and
//! signals when the live traffic has moved away from the reference captured
//! at warm-up, so a controller can restart feature estimation early.
//!
//! The signal is the L1 distance between bucket-fraction vectors plus the
//! relative change in mean size; both are scale-free, so one threshold works
//! across traffic classes.

use crate::sizedist::SizeDistribution;
use darwin_ckpt::{CkptError, Dec, Enc};
use darwin_trace::Request;

/// A snapshot of the cheap distributional statistics of a request chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSnapshot {
    fractions: Vec<f64>,
    mean_size: f64,
}

impl TrafficSnapshot {
    fn from_dist(dist: &SizeDistribution) -> Self {
        Self { fractions: dist.fractions(), mean_size: dist.mean_size() }
    }

    /// Scale-free distance to another snapshot: L1 over bucket fractions
    /// (∈ [0, 2]). Mean size is deliberately *not* part of the distance —
    /// CDN size distributions are heavy-tailed, so a chunk's mean jumps with
    /// a single giant object; the bucket fractions encode persistent size
    /// shifts without that noise.
    pub fn distance(&self, other: &TrafficSnapshot) -> f64 {
        assert_eq!(self.fractions.len(), other.fractions.len(), "bucket mismatch");
        self.fractions.iter().zip(&other.fractions).map(|(a, b)| (a - b).abs()).sum()
    }

    /// Mean request size of the chunk (reporting only).
    pub fn mean_size(&self) -> f64 {
        self.mean_size
    }

    fn encode_state(&self, enc: &mut Enc) {
        enc.seq(&self.fractions, |e, &v| e.f64(v));
        enc.f64(self.mean_size);
    }

    fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(Self { fractions: dec.seq(|d| d.f64())?, mean_size: dec.f64()? })
    }
}

/// Streaming drift detector over fixed-size request chunks.
///
/// ```
/// use darwin_features::DriftDetector;
/// use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
///
/// let mut detector = DriftDetector::new(1_000, 0.4);
/// // Reference phase: image-heavy traffic.
/// let a = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1).generate(5_000);
/// assert!(a.iter().all(|r| !detector.observe(r)));
/// // Shift to download-heavy traffic: detected within a few chunks.
/// let b = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 2).generate(5_000);
/// assert!(b.iter().any(|r| detector.observe(r)));
/// ```
#[derive(Debug, Clone)]
pub struct DriftDetector {
    chunk_requests: usize,
    threshold: f64,
    /// Consecutive over-threshold chunks required before signaling; absorbs
    /// single-chunk sampling noise (default 2).
    consecutive_required: usize,
    consecutive_over: usize,
    reference: Option<TrafficSnapshot>,
    current: SizeDistribution,
    seen_in_chunk: usize,
    last_distance: f64,
}

impl DriftDetector {
    /// Detector with `chunk_requests` per comparison window and a drift
    /// `threshold` on [`TrafficSnapshot::distance`] (sensible range
    /// 0.2–0.8; smaller = more sensitive).
    pub fn new(chunk_requests: usize, threshold: f64) -> Self {
        assert!(chunk_requests > 0, "chunk must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            chunk_requests,
            threshold,
            consecutive_required: 2,
            consecutive_over: 0,
            reference: None,
            current: SizeDistribution::paper_default(),
            seen_in_chunk: 0,
            last_distance: 0.0,
        }
    }

    /// Overrides how many consecutive over-threshold chunks are required
    /// before drift is signaled (≥ 1; default 2).
    pub fn with_consecutive(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one chunk required");
        self.consecutive_required = n;
        self
    }

    /// Clears everything, including the reference (a new epoch).
    pub fn reset(&mut self) {
        self.reference = None;
        self.current.clear();
        self.seen_in_chunk = 0;
        self.last_distance = 0.0;
        self.consecutive_over = 0;
    }

    /// Distance measured at the last completed chunk.
    pub fn last_distance(&self) -> f64 {
        self.last_distance
    }

    /// Whether a reference snapshot has been locked.
    pub fn has_reference(&self) -> bool {
        self.reference.is_some()
    }

    /// Serializes the detector's configuration and rolling state.
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.usize(self.chunk_requests);
        enc.f64(self.threshold);
        enc.usize(self.consecutive_required);
        enc.usize(self.consecutive_over);
        enc.opt(self.reference.as_ref(), |e, r| r.encode_state(e));
        self.current.encode_state(enc);
        enc.usize(self.seen_in_chunk);
        enc.f64(self.last_distance);
    }

    /// Rebuilds a detector from bytes written by
    /// [`DriftDetector::encode_state`].
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let chunk_requests = dec.usize()?;
        let threshold = dec.f64()?;
        let consecutive_required = dec.usize()?;
        let consecutive_over = dec.usize()?;
        let reference = dec.opt(TrafficSnapshot::decode_state)?;
        let current = SizeDistribution::decode_state(dec)?;
        let seen_in_chunk = dec.usize()?;
        let last_distance = dec.f64()?;
        if chunk_requests == 0 || !threshold.is_finite() || threshold <= 0.0 || consecutive_required == 0
        {
            return Err(CkptError::Malformed("invalid drift-detector parameters".into()));
        }
        if let Some(r) = &reference {
            if r.fractions.len() != current.num_buckets() {
                return Err(CkptError::Malformed("drift reference bucket mismatch".into()));
            }
        }
        Ok(Self {
            chunk_requests,
            threshold,
            consecutive_required,
            consecutive_over,
            reference,
            current,
            seen_in_chunk,
            last_distance,
        })
    }

    /// Feeds one request. Returns `true` when a completed chunk deviates
    /// from the reference by more than the threshold (drift!). The first
    /// completed chunk becomes the reference.
    pub fn observe(&mut self, req: &Request) -> bool {
        self.current.observe(req.size);
        self.seen_in_chunk += 1;
        if self.seen_in_chunk < self.chunk_requests {
            return false;
        }
        let snapshot = TrafficSnapshot::from_dist(&self.current);
        self.current.clear();
        self.seen_in_chunk = 0;
        match &self.reference {
            None => {
                self.reference = Some(snapshot);
                false
            }
            Some(reference) => {
                self.last_distance = snapshot.distance(reference);
                if self.last_distance > self.threshold {
                    self.consecutive_over += 1;
                } else {
                    self.consecutive_over = 0;
                }
                self.consecutive_over >= self.consecutive_required
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn feed(detector: &mut DriftDetector, share: f64, n: usize, seed: u64) -> bool {
        let mix = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), share);
        let trace = TraceGenerator::new(mix, seed).generate(n);
        let mut drifted = false;
        for r in &trace {
            drifted |= detector.observe(r);
        }
        drifted
    }

    #[test]
    fn stationary_traffic_never_drifts() {
        let mut d = DriftDetector::new(1_000, 0.4);
        assert!(!feed(&mut d, 0.5, 20_000, 1), "stationary traffic flagged as drift");
        assert!(d.last_distance() < 0.4);
    }

    #[test]
    fn strong_mix_shift_is_detected() {
        let mut d = DriftDetector::new(1_000, 0.4);
        assert!(!feed(&mut d, 0.95, 5_000, 2), "reference phase must not drift");
        assert!(feed(&mut d, 0.05, 5_000, 3), "image→download shift not detected");
    }

    #[test]
    fn reset_forgets_reference() {
        let mut d = DriftDetector::new(500, 0.4);
        feed(&mut d, 0.9, 2_000, 4);
        assert!(d.has_reference());
        d.reset();
        assert!(!d.has_reference());
        // After reset the new phase becomes its own reference: no drift.
        assert!(!feed(&mut d, 0.1, 5_000, 5));
    }

    #[test]
    fn snapshot_distance_is_symmetric_and_zero_on_self() {
        let mut a = SizeDistribution::paper_default();
        let mut b = SizeDistribution::paper_default();
        for s in [1_000u64, 30_000, 700_000] {
            a.observe(s);
        }
        for s in [5_000u64, 90_000] {
            b.observe(s);
        }
        let sa = TrafficSnapshot::from_dist(&a);
        let sb = TrafficSnapshot::from_dist(&b);
        assert_eq!(sa.distance(&sa), 0.0);
        assert!((sa.distance(&sb) - sb.distance(&sa)).abs() < 1e-12);
        assert!(sa.distance(&sb) > 0.0);
    }

    #[test]
    fn codec_roundtrip_mid_chunk_resumes_identically() {
        let mut original = DriftDetector::new(700, 0.4);
        feed(&mut original, 0.9, 3_000, 8); // reference locked, mid-chunk state
        let mut enc = darwin_ckpt::Enc::new();
        original.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = darwin_ckpt::Dec::new(&bytes);
        let mut restored = DriftDetector::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(restored.has_reference(), original.has_reference());
        assert_eq!(restored.last_distance(), original.last_distance());
        // Both fire (or not) on the same future request stream.
        let mix = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.05);
        let trace = TraceGenerator::new(mix, 9).generate(5_000);
        for r in &trace {
            assert_eq!(original.observe(r), restored.observe(r));
        }
    }

    #[test]
    fn threshold_controls_sensitivity() {
        // A mild shift: strict threshold fires, loose one does not.
        let mut strict = DriftDetector::new(1_000, 0.05);
        feed(&mut strict, 0.6, 4_000, 6);
        let strict_fired = feed(&mut strict, 0.4, 6_000, 7);

        let mut loose = DriftDetector::new(1_000, 1.5);
        feed(&mut loose, 0.6, 4_000, 6);
        let loose_fired = feed(&mut loose, 0.4, 6_000, 7);

        assert!(strict_fired, "strict detector missed the mild shift");
        assert!(!loose_fired, "loose detector fired on a mild shift");
    }
}
