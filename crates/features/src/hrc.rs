//! Footprint descriptors: byte-weighted reuse distances and hit-rate curves.
//!
//! §3.2's second learnability argument: "It is easy to obtain the cache
//! performance representation (footprint descriptor), even from completely
//! anonymized logs … this is strongly correlated with the traffic's cache
//! performance." A footprint descriptor (Sundarrajan et al., CoNEXT'17)
//! summarizes a trace by the distribution of its *byte-weighted reuse
//! distances*: for each request, the number of distinct bytes touched since
//! the previous request for the same object. Under LRU with unconditional
//! admission, a request hits a cache of `C` bytes **iff** its reuse distance
//! is ≤ C (Mattson's stack property), so the reuse-distance CDF *is* the
//! hit-rate curve (HRC) across all cache sizes at once.
//!
//! The implementation is the classic O(n log n) Mattson algorithm: a Fenwick
//! tree over request positions holds each object's size at its most recent
//! access position; a request's reuse distance is the suffix byte-sum past
//! the object's previous position.

use crate::vector::FeatureVector;
use darwin_trace::{ObjectId, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fenwick (binary indexed) tree over u64 byte counts.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self { tree: vec![0; n + 1] }
    }

    /// Adds `delta` at 0-based index `i` (delta may be "negative" via
    /// wrapping: callers only ever remove what they added).
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over 0-based `[0, i]`.
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// A footprint descriptor: the empirical distribution of byte-weighted reuse
/// distances, convertible to hit-rate curves.
///
/// ```
/// use darwin_features::FootprintDescriptor;
/// use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
///
/// let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1)
///     .generate(20_000);
/// let fd = FootprintDescriptor::compute(&trace);
/// // Bigger caches never hit less (the HRC is monotone).
/// assert!(fd.predicted_ohr(64 << 20) >= fd.predicted_ohr(1 << 20));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintDescriptor {
    /// Upper (inclusive) byte edge of each reuse-distance bucket; the last
    /// bucket is unbounded and also holds cold misses (first accesses).
    edges: Vec<u64>,
    /// Requests per bucket.
    request_counts: Vec<u64>,
    /// Requested bytes per bucket.
    byte_counts: Vec<u64>,
    /// Total requests.
    total_requests: u64,
    /// Total requested bytes.
    total_bytes: u64,
    /// Distinct bytes in the trace (the working-set size).
    unique_bytes: u64,
}

impl FootprintDescriptor {
    /// Default log-spaced bucket edges: 64 KiB … 64 GiB, ×2 per bucket.
    pub fn default_edges() -> Vec<u64> {
        (0..21).map(|i| (64 * 1024u64) << i).collect()
    }

    /// Computes the descriptor of a trace with the default bucketing.
    pub fn compute(trace: &Trace) -> Self {
        Self::compute_with_edges(trace, Self::default_edges())
    }

    /// Computes the descriptor with custom ascending bucket edges.
    pub fn compute_with_edges(trace: &Trace, edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "at least one edge required");
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must be ascending");
        let n = trace.len();
        let mut fen = Fenwick::new(n);
        let mut last_pos: HashMap<ObjectId, (usize, u64)> = HashMap::new();
        let nb = edges.len() + 1;
        let mut request_counts = vec![0u64; nb];
        let mut byte_counts = vec![0u64; nb];
        let mut total_bytes = 0u64;
        let mut unique_bytes = 0u64;

        for (pos, r) in trace.iter().enumerate() {
            total_bytes += r.size;
            let bucket = match last_pos.get(&r.id) {
                Some(&(prev, prev_size)) => {
                    // Distinct bytes accessed strictly after `prev`, plus the
                    // object itself (its own bytes count toward the stack
                    // position it must fit into).
                    let between = if pos == 0 { 0 } else { fen.prefix(pos - 1) } - fen.prefix(prev);
                    let dist = between + r.size;
                    fen.add(prev, -(prev_size as i64));
                    edges.iter().position(|&e| dist <= e).unwrap_or(edges.len())
                }
                None => {
                    unique_bytes += r.size;
                    edges.len() // cold miss: unbounded bucket
                }
            };
            request_counts[bucket] += 1;
            byte_counts[bucket] += r.size;
            fen.add(pos, r.size as i64);
            last_pos.insert(r.id, (pos, r.size));
        }

        Self { edges, request_counts, byte_counts, total_requests: n as u64, total_bytes, unique_bytes }
    }

    /// Total requests summarized.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// The bucket edges (exclusive of the final unbounded bucket).
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket request counts (`edges().len() + 1` entries; the last
    /// holds the unbounded bucket including cold misses).
    pub fn request_counts(&self) -> &[u64] {
        &self.request_counts
    }

    /// Distinct bytes in the trace.
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    /// Predicted LRU *object* hit rate for an unconditional-admission cache
    /// of `cache_bytes` (bucket-resolution lower bound: whole buckets whose
    /// edge is ≤ the cache size count as hits).
    pub fn predicted_ohr(&self, cache_bytes: u64) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .edges
            .iter()
            .zip(&self.request_counts)
            .filter(|(&e, _)| e <= cache_bytes)
            .map(|(_, &c)| c)
            .sum();
        hits as f64 / self.total_requests as f64
    }

    /// Predicted LRU *byte* hit rate for a cache of `cache_bytes`.
    pub fn predicted_bhr(&self, cache_bytes: u64) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        let hit_bytes: u64 = self
            .edges
            .iter()
            .zip(&self.byte_counts)
            .filter(|(&e, _)| e <= cache_bytes)
            .map(|(_, &b)| b)
            .sum();
        hit_bytes as f64 / self.total_bytes as f64
    }

    /// The full hit-rate curve: `(cache_bytes, ohr)` at each bucket edge.
    pub fn hit_rate_curve(&self) -> Vec<(u64, f64)> {
        self.edges.iter().map(|&e| (e, self.predicted_ohr(e))).collect()
    }

    /// A compact feature vector (the per-bucket request fractions) usable as
    /// an alternative clustering input ("Darwin allows the CDN server
    /// operators to use other features, too", Appendix A.1).
    pub fn as_features(&self) -> FeatureVector {
        let v = if self.total_requests == 0 {
            vec![0.0; self.request_counts.len()]
        } else {
            self.request_counts.iter().map(|&c| c as f64 / self.total_requests as f64).collect()
        };
        FeatureVector::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_trace::{MixSpec, Request, TraceGenerator, TrafficClass};

    fn t(reqs: &[(u64, u64)]) -> Trace {
        Trace::from_requests(
            reqs.iter().enumerate().map(|(i, &(id, size))| Request::new(id, size, i as u64)).collect(),
        )
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 5);
        f.add(3, 7);
        f.add(7, 1);
        assert_eq!(f.prefix(0), 5);
        assert_eq!(f.prefix(2), 5);
        assert_eq!(f.prefix(3), 12);
        assert_eq!(f.prefix(7), 13);
        f.add(3, -7);
        assert_eq!(f.prefix(7), 6);
    }

    #[test]
    fn reuse_distance_of_tight_loop_is_own_size() {
        // A A A …: every re-access has reuse distance == object size.
        let trace = t(&[(1, 100), (1, 100), (1, 100)]);
        let fd = FootprintDescriptor::compute_with_edges(&trace, vec![100, 1000]);
        // 1 cold miss + 2 requests at distance 100 (bucket 0).
        assert_eq!(fd.request_counts, vec![2, 0, 1]);
    }

    #[test]
    fn interleaved_objects_accumulate_distance() {
        // A B A: A's re-access must skip over B's bytes: distance = 50+100.
        let trace = t(&[(1, 100), (2, 50), (1, 100)]);
        let fd = FootprintDescriptor::compute_with_edges(&trace, vec![100, 150, 1000]);
        // A's re-access distance 150 ⇒ bucket 1 (≤150); the two cold misses
        // (A's and B's first accesses) land in the unbounded 4th bucket.
        assert_eq!(fd.request_counts, vec![0, 1, 0, 2]);
    }

    #[test]
    fn repeated_interleaving_counts_each_object_once() {
        // A B B A: distance for final A = B (once) + A = 50 + 100 = 150,
        // not 200 (B's two accesses must not double-count).
        let trace = t(&[(1, 100), (2, 50), (2, 50), (1, 100)]);
        let fd = FootprintDescriptor::compute_with_edges(&trace, vec![149, 150, 1000]);
        assert_eq!(fd.request_counts[1], 1, "final A in the 150 bucket: {:?}", fd.request_counts);
    }

    #[test]
    fn hrc_matches_lru_simulation() {
        // Mattson exactness: predicted OHR at a bucket edge equals the hit
        // rate of an LRU cache of that size with unconditional admission.
        use darwin_cache::{EvictionKind, HocSim, ThresholdPolicy};
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 9).generate(30_000);
        let cache_bytes = 4 * 1024 * 1024u64;
        let fd = FootprintDescriptor::compute_with_edges(&trace, vec![cache_bytes, 2 * cache_bytes]);
        let mut sim = HocSim::new(
            cache_bytes,
            EvictionKind::Lru,
            ThresholdPolicy::new(0, u64::MAX), // admit everything immediately
        );
        let m = sim.run_trace(&trace);
        let predicted = fd.predicted_ohr(cache_bytes);
        assert!(
            (predicted - m.hoc_ohr()).abs() < 0.02,
            "Mattson {predicted:.4} vs simulated LRU {:.4}",
            m.hoc_ohr()
        );
    }

    #[test]
    fn hrc_is_monotone_in_cache_size() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 3).generate(20_000);
        let fd = FootprintDescriptor::compute(&trace);
        let curve = fd.hit_rate_curve();
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
        // BHR also monotone.
        let bhr: Vec<f64> = curve.iter().map(|&(c, _)| fd.predicted_bhr(c)).collect();
        assert!(bhr.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn cold_misses_cap_the_curve() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 4).generate(20_000);
        let fd = FootprintDescriptor::compute(&trace);
        let max_ohr = fd.predicted_ohr(u64::MAX / 2);
        let unique = trace.unique_objects();
        let compulsory = unique as f64 / trace.len() as f64;
        assert!(
            (max_ohr - (1.0 - compulsory)).abs() < 1e-9,
            "infinite-cache OHR {max_ohr} vs 1 − compulsory {compulsory}"
        );
    }

    #[test]
    fn feature_fractions_sum_to_one() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::web()), 5).generate(5_000);
        let fd = FootprintDescriptor::compute(&trace);
        let sum: f64 = fd.as_features().values().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_descriptor() {
        let fd = FootprintDescriptor::compute(&Trace::default());
        assert_eq!(fd.total_requests(), 0);
        assert_eq!(fd.predicted_ohr(1 << 30), 0.0);
        assert_eq!(fd.unique_bytes(), 0);
    }
}
