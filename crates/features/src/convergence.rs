//! Feature-convergence measurement (Fig 5a / Fig 8).
//!
//! Darwin's warm-up length `N_warmup` is chosen by measuring how quickly
//! empirical features computed over a trace *prefix* approach the values over
//! the full trace: "we see that feature values converge to within a 10% error
//! margin using only the first 3M requests" (§6.2). These helpers compute the
//! per-entry and maximum relative errors that the figure plots.

use crate::vector::FeatureVector;

/// Per-entry relative error `|prefix − full| / |full|`, in percent.
/// Entries where the full-trace value is 0 report 0 if the prefix also has 0
/// and 100 otherwise (a conservative "not converged" marker).
pub fn relative_errors(prefix: &FeatureVector, full: &FeatureVector) -> Vec<f64> {
    assert_eq!(prefix.len(), full.len(), "dimension mismatch");
    prefix
        .values()
        .iter()
        .zip(full.values())
        .map(|(&p, &f)| {
            if f == 0.0 {
                if p == 0.0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                ((p - f) / f).abs() * 100.0
            }
        })
        .collect()
}

/// Maximum relative error (percent) across all entries — the convergence
/// criterion the paper applies ("within a 10% error margin").
pub fn max_relative_error(prefix: &FeatureVector, full: &FeatureVector) -> f64 {
    relative_errors(prefix, full).into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_error() {
        let v = FeatureVector::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(max_relative_error(&v, &v), 0.0);
    }

    #[test]
    fn relative_error_is_percentage() {
        let p = FeatureVector::new(vec![90.0]);
        let f = FeatureVector::new(vec![100.0]);
        assert!((max_relative_error(&p, &f) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_handled() {
        let p = FeatureVector::new(vec![0.0, 5.0]);
        let f = FeatureVector::new(vec![0.0, 0.0]);
        let errs = relative_errors(&p, &f);
        assert_eq!(errs, vec![0.0, 100.0]);
    }

    #[test]
    fn max_picks_worst_entry() {
        let p = FeatureVector::new(vec![99.0, 50.0]);
        let f = FeatureVector::new(vec![100.0, 100.0]);
        assert!((max_relative_error(&p, &f) - 50.0).abs() < 1e-12);
    }
}
