//! The online feature extractor.
//!
//! Implements the three feature families of Appendix A.1 (average size,
//! order-k average inter-arrival times, order-k average byte-weighted stack
//! distances) plus the bucketized size distribution of §4.1, all in a single
//! streaming pass.
//!
//! For each object the extractor keeps a bounded ring of its most recent
//! `max(n, m) + 1` accesses as `(timestamp, cumulative_bytes_at_access)`
//! pairs. On a new access to the object, the gap to its k-th most recent
//! access contributes one sample to the order-k inter-arrival average (time
//! gap) and to the order-k stack-distance average (cumulative-bytes gap).

use crate::sizedist::SizeDistribution;
use crate::vector::FeatureVector;
use darwin_ckpt::{CkptError, Dec, Enc};
use darwin_trace::{ObjectId, Request, Trace};
use std::collections::{HashMap, VecDeque};

/// Streaming extractor of Darwin's trace features.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    n_iat: usize,
    m_sd: usize,
    /// Per-object ring of `(timestamp_us, cum_bytes_before_access)`.
    history: HashMap<ObjectId, VecDeque<(u64, u64)>>,
    /// Running byte counter over the whole stream.
    cum_bytes: u64,
    iat_sum: Vec<f64>,
    iat_cnt: Vec<u64>,
    sd_sum: Vec<f64>,
    sd_cnt: Vec<u64>,
    size_sum: u64,
    requests: u64,
    size_dist: SizeDistribution,
}

impl FeatureExtractor {
    /// Extractor with `n_iat` inter-arrival orders and `m_sd` stack-distance
    /// orders, and the given size-distribution bucketing.
    pub fn new(n_iat: usize, m_sd: usize, size_dist: SizeDistribution) -> Self {
        assert!(n_iat > 0 && m_sd > 0, "feature orders must be positive");
        Self {
            n_iat,
            m_sd,
            history: HashMap::new(),
            cum_bytes: 0,
            iat_sum: vec![0.0; n_iat],
            iat_cnt: vec![0; n_iat],
            sd_sum: vec![0.0; m_sd],
            sd_cnt: vec![0; m_sd],
            size_sum: 0,
            requests: 0,
            size_dist,
        }
    }

    /// The paper's configuration: "average size (size_avg), the first 7
    /// average inter-arrival times (iat_avg's), and stack distances
    /// (sd_avg's)" — a 15-entry vector (§6.2), with the default size buckets.
    pub fn paper_default() -> Self {
        Self::new(7, 7, SizeDistribution::paper_default())
    }

    /// Consumes one request.
    pub fn observe(&mut self, req: &Request) {
        self.requests += 1;
        self.size_sum += req.size;
        self.size_dist.observe(req.size);

        let ring = self.history.entry(req.id).or_default();
        // Order-k samples against the k-th most recent access.
        for (back, &(ts, bytes)) in ring.iter().rev().enumerate() {
            let k = back; // 0-indexed: order k+1
            if k < self.n_iat {
                self.iat_sum[k] += (req.timestamp_us - ts) as f64;
                self.iat_cnt[k] += 1;
            }
            if k < self.m_sd {
                self.sd_sum[k] += (self.cum_bytes - bytes) as f64;
                self.sd_cnt[k] += 1;
            }
        }
        let cap = self.n_iat.max(self.m_sd);
        if ring.len() == cap {
            ring.pop_front();
        }
        ring.push_back((req.timestamp_us, self.cum_bytes));
        self.cum_bytes += req.size;
    }

    /// Number of requests observed.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The 1 + n + m feature vector: `[avg_size, iat_1..n, sd_1..m]`.
    /// Orders with no samples yet report 0 (e.g. very short prefixes).
    pub fn features(&self) -> FeatureVector {
        let mut v = Vec::with_capacity(1 + self.n_iat + self.m_sd);
        v.push(if self.requests == 0 { 0.0 } else { self.size_sum as f64 / self.requests as f64 });
        for k in 0..self.n_iat {
            v.push(if self.iat_cnt[k] == 0 { 0.0 } else { self.iat_sum[k] / self.iat_cnt[k] as f64 });
        }
        for k in 0..self.m_sd {
            v.push(if self.sd_cnt[k] == 0 { 0.0 } else { self.sd_sum[k] / self.sd_cnt[k] as f64 });
        }
        FeatureVector::new(v)
    }

    /// The feature vector extended with the size-distribution fractions —
    /// the cross-expert predictor input of §4.1.
    pub fn extended_features(&self) -> FeatureVector {
        self.features().extended(&self.size_dist.fractions())
    }

    /// The bucketized size distribution observed so far.
    pub fn size_distribution(&self) -> &SizeDistribution {
        &self.size_dist
    }

    /// Drops the per-object working state, keeping only the aggregated
    /// feature vector (what the paper's prototype does at the end of the
    /// feature-collection stage: "this tree is deleted at the end of the
    /// stage, and we only store a single feature vector with 15 entries").
    pub fn finish(self) -> (FeatureVector, SizeDistribution) {
        let features = self.features();
        (features, self.size_dist)
    }

    /// Serializes the extractor's full streaming state, including every
    /// per-object access ring (sorted by object ID for a canonical byte
    /// stream).
    pub fn encode_state(&self, enc: &mut Enc) {
        enc.usize(self.n_iat);
        enc.usize(self.m_sd);
        enc.u64(self.cum_bytes);
        enc.seq(&self.iat_sum, |e, &v| e.f64(v));
        enc.seq(&self.iat_cnt, |e, &v| e.u64(v));
        enc.seq(&self.sd_sum, |e, &v| e.f64(v));
        enc.seq(&self.sd_cnt, |e, &v| e.u64(v));
        enc.u64(self.size_sum);
        enc.u64(self.requests);
        self.size_dist.encode_state(enc);
        let mut ids: Vec<ObjectId> = self.history.keys().copied().collect();
        ids.sort_unstable();
        enc.seq(&ids, |e, &id| {
            e.u64(id);
            let ring: Vec<(u64, u64)> = self.history[&id].iter().copied().collect();
            e.seq(&ring, |e, &(ts, bytes)| {
                e.u64(ts);
                e.u64(bytes);
            });
        });
    }

    /// Rebuilds an extractor from bytes written by
    /// [`FeatureExtractor::encode_state`].
    pub fn decode_state(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let n_iat = dec.usize()?;
        let m_sd = dec.usize()?;
        if n_iat == 0 || m_sd == 0 {
            return Err(CkptError::Malformed("feature orders must be positive".into()));
        }
        let cum_bytes = dec.u64()?;
        let iat_sum = dec.seq(|d| d.f64())?;
        let iat_cnt = dec.seq(|d| d.u64())?;
        let sd_sum = dec.seq(|d| d.f64())?;
        let sd_cnt = dec.seq(|d| d.u64())?;
        if iat_sum.len() != n_iat
            || iat_cnt.len() != n_iat
            || sd_sum.len() != m_sd
            || sd_cnt.len() != m_sd
        {
            return Err(CkptError::Malformed("feature accumulator length mismatch".into()));
        }
        let size_sum = dec.u64()?;
        let requests = dec.u64()?;
        let size_dist = SizeDistribution::decode_state(dec)?;
        let cap = n_iat.max(m_sd);
        let entries = dec.seq(|d| {
            let id = d.u64()?;
            let ring = d.seq(|d| Ok((d.u64()?, d.u64()?)))?;
            Ok((id, ring))
        })?;
        let mut history: HashMap<ObjectId, VecDeque<(u64, u64)>> = HashMap::new();
        for (id, ring) in entries {
            if ring.len() > cap {
                return Err(CkptError::Malformed(format!("ring for {id} exceeds capacity")));
            }
            if history.insert(id, ring.into_iter().collect()).is_some() {
                return Err(CkptError::Malformed(format!("duplicate history entry {id}")));
            }
        }
        Ok(Self {
            n_iat,
            m_sd,
            history,
            cum_bytes,
            iat_sum,
            iat_cnt,
            sd_sum,
            sd_cnt,
            size_sum,
            requests,
            size_dist,
        })
    }

    /// Convenience: extract features of an entire trace.
    pub fn extract(trace: &Trace) -> FeatureVector {
        let mut fx = Self::paper_default();
        for r in trace {
            fx.observe(r);
        }
        fx.features()
    }

    /// Convenience: extended features (with size distribution) of a trace.
    pub fn extract_extended(trace: &Trace) -> FeatureVector {
        let mut fx = Self::paper_default();
        for r in trace {
            fx.observe(r);
        }
        fx.extended_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_trace::Request;

    fn fx(n: usize, m: usize) -> FeatureExtractor {
        FeatureExtractor::new(n, m, SizeDistribution::paper_default())
    }

    #[test]
    fn avg_size_is_mean_of_request_sizes() {
        let mut f = fx(2, 2);
        f.observe(&Request::new(1, 100, 0));
        f.observe(&Request::new(2, 300, 10));
        assert!((f.features().get(0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_iat_is_gap_between_consecutive_same_id() {
        let mut f = fx(2, 2);
        f.observe(&Request::new(1, 10, 0));
        f.observe(&Request::new(2, 10, 50)); // other object: no IAT sample
        f.observe(&Request::new(1, 10, 100));
        let v = f.features();
        assert!((v.get(1) - 100.0).abs() < 1e-12, "iat_1 = 100 expected, got {}", v.get(1));
        assert_eq!(v.get(2), 0.0, "no order-2 samples yet");
    }

    #[test]
    fn second_order_iat_spans_two_gaps() {
        let mut f = fx(2, 2);
        f.observe(&Request::new(1, 10, 0));
        f.observe(&Request::new(1, 10, 30));
        f.observe(&Request::new(1, 10, 100));
        let v = f.features();
        // iat_1 samples: 30, 70 → 50. iat_2 sample: 100.
        assert!((v.get(1) - 50.0).abs() < 1e-12);
        assert!((v.get(2) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn stack_distance_counts_bytes_between_same_id_accesses() {
        let mut f = fx(1, 1);
        f.observe(&Request::new(1, 10, 0));
        f.observe(&Request::new(2, 77, 1));
        f.observe(&Request::new(3, 23, 2));
        f.observe(&Request::new(1, 10, 3));
        let v = f.features();
        // Bytes between the two accesses of object 1: its own 10 + 77 + 23.
        assert!((v.get(2) - 110.0).abs() < 1e-12, "sd_1 = 110 expected, got {}", v.get(2));
    }

    #[test]
    fn repeated_same_object_has_zero_stack_distance_excluding_self() {
        let mut f = fx(1, 1);
        f.observe(&Request::new(1, 10, 0));
        f.observe(&Request::new(1, 10, 1));
        // cum_bytes gap = 10 (the object's own first access bytes).
        assert!((f.features().get(2) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_has_paper_dimensions() {
        let f = FeatureExtractor::paper_default();
        assert_eq!(f.features().len(), 15);
        assert_eq!(f.extended_features().len(), 15 + 7);
    }

    #[test]
    fn matches_naive_reference_on_random_trace() {
        // Naive O(n²)-ish reference: recompute order-k gaps per object.
        use std::collections::HashMap;
        let mut reqs = Vec::new();
        let mut x = 99u64;
        let mut t = 0u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            t += 1 + (x >> 60);
            let id = (x >> 33) % 50;
            let size = 1 + ((x >> 17) % 1000);
            reqs.push(Request::new(id, size, t));
        }
        // Reference computation.
        let (n, m) = (3usize, 3usize);
        let mut positions: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, r) in reqs.iter().enumerate() {
            positions.entry(r.id).or_default().push(i);
        }
        let cum: Vec<u64> = reqs
            .iter()
            .scan(0u64, |acc, r| {
                let before = *acc;
                *acc += r.size;
                Some(before)
            })
            .collect();
        let mut iat_sum = vec![0.0; n];
        let mut iat_cnt = vec![0u64; n];
        let mut sd_sum = vec![0.0; m];
        let mut sd_cnt = vec![0u64; m];
        for pos in positions.values() {
            for (j, &pj) in pos.iter().enumerate() {
                for k in 1..=n.min(j) {
                    iat_sum[k - 1] += (reqs[pj].timestamp_us - reqs[pos[j - k]].timestamp_us) as f64;
                    iat_cnt[k - 1] += 1;
                }
                for k in 1..=m.min(j) {
                    sd_sum[k - 1] += (cum[pj] - cum[pos[j - k]]) as f64;
                    sd_cnt[k - 1] += 1;
                }
            }
        }
        let mut f = fx(n, m);
        for r in &reqs {
            f.observe(r);
        }
        let v = f.features();
        for k in 0..n {
            let expect = if iat_cnt[k] == 0 { 0.0 } else { iat_sum[k] / iat_cnt[k] as f64 };
            assert!((v.get(1 + k) - expect).abs() < 1e-6, "iat order {}", k + 1);
        }
        for k in 0..m {
            let expect = if sd_cnt[k] == 0 { 0.0 } else { sd_sum[k] / sd_cnt[k] as f64 };
            assert!((v.get(1 + n + k) - expect).abs() < 1e-6, "sd order {}", k + 1);
        }
    }

    #[test]
    fn finish_returns_same_features() {
        let mut f = fx(2, 2);
        for i in 0..100u64 {
            f.observe(&Request::new(i % 10, 100 + i, i * 7));
        }
        let live = f.features();
        let (done, dist) = f.finish();
        assert_eq!(live, done);
        assert_eq!(dist.total(), 100);
    }

    #[test]
    fn empty_extractor_reports_zeros() {
        let f = FeatureExtractor::paper_default();
        assert!(f.features().values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn codec_roundtrip_resumes_identically() {
        let mut original = FeatureExtractor::paper_default();
        for i in 0..5_000u64 {
            original.observe(&Request::new(i % 97, 100 + i % 9_000, i * 13));
        }
        let mut enc = darwin_ckpt::Enc::new();
        original.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = darwin_ckpt::Dec::new(&bytes);
        let mut restored = FeatureExtractor::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(restored.features(), original.features());
        // Canonical bytes and identical continued evolution.
        let mut re = darwin_ckpt::Enc::new();
        restored.encode_state(&mut re);
        assert_eq!(re.into_bytes(), bytes);
        for i in 5_000..6_000u64 {
            let r = Request::new(i % 97, 100 + i % 9_000, i * 13);
            original.observe(&r);
            restored.observe(&r);
        }
        assert_eq!(restored.features(), original.features());
        assert_eq!(restored.extended_features(), original.extended_features());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use darwin_trace::Request;
    use proptest::prelude::*;

    proptest! {
        /// Feature values are always finite and non-negative (timestamps and
        /// cumulative bytes are monotone).
        #[test]
        fn features_finite_nonnegative(ids in proptest::collection::vec((0u64..20, 1u64..10_000), 1..300)) {
            let mut f = FeatureExtractor::paper_default();
            let mut t = 0u64;
            for (id, size) in ids {
                t += 1;
                f.observe(&Request::new(id, size, t));
            }
            for &x in f.features().values() {
                prop_assert!(x.is_finite());
                prop_assert!(x >= 0.0);
            }
        }

        /// Higher-order IATs/SDs dominate lower orders (they span more gaps).
        #[test]
        fn orders_are_monotone(nreq in 50usize..300) {
            let mut f = FeatureExtractor::paper_default();
            // Round-robin over 5 objects at fixed cadence.
            for i in 0..nreq {
                f.observe(&Request::new((i % 5) as u64, 100, i as u64 * 10));
            }
            let v = f.features();
            for k in 1..7 {
                if v.get(1 + k) > 0.0 {
                    prop_assert!(v.get(1 + k) >= v.get(k), "iat order {} < order {}", k + 1, k);
                }
                if v.get(8 + k) > 0.0 {
                    prop_assert!(v.get(8 + k) >= v.get(7 + k), "sd order {} < order {}", k + 1, k);
                }
            }
        }
    }
}
