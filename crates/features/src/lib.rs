#![warn(missing_docs)]

//! # darwin-features
//!
//! Traffic-pattern feature extraction — the "footprint descriptor"-style
//! statistics Darwin clusters on and feeds to its cross-expert predictors.
//!
//! Appendix A.1 of the paper defines the features:
//!
//! * **(a)** average request size;
//! * **(b)** vector of the first *n* average inter-arrival times, where the
//!   n-th inter-arrival time is the time elapsed between n+1 successive
//!   requests with the same object ID;
//! * **(c)** vector of the first *m* average stack distances, where the m-th
//!   stack distance is the *cumulative size of all requests* received between
//!   m+1 successive requests with the same ID.
//!
//! Averages are over all object-ID/position choices. The paper uses n = m = 7
//! for 15 features total, and extends the vector with a **bucketized size
//! distribution** when training the cross-expert predictors (§4.1).
//!
//! The extractor is *online*: it consumes requests one at a time (the paper's
//! prototype builds "a tree structure" during the feature-collection stage
//! and then keeps only "a single feature vector with 15 entries" — here the
//! working state is a per-object ring of recent accesses, discarded on
//! [`FeatureExtractor::finish`]).
//!
//! ```
//! use darwin_features::FeatureExtractor;
//! use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
//!
//! let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1).generate(10_000);
//! let mut fx = FeatureExtractor::paper_default();
//! for r in &trace {
//!     fx.observe(r);
//! }
//! let features = fx.features();
//! assert_eq!(features.len(), 15); // avg size + 7 IATs + 7 stack distances
//! ```

pub mod convergence;
pub mod drift;
pub mod extractor;
pub mod hrc;
pub mod sizedist;
pub mod synth;
pub mod vector;

pub use convergence::{max_relative_error, relative_errors};
pub use drift::{DriftDetector, TrafficSnapshot};
pub use extractor::FeatureExtractor;
pub use hrc::FootprintDescriptor;
pub use sizedist::SizeDistribution;
pub use synth::synthesize;
pub use vector::FeatureVector;
