//! Lloyd's k-means with k-means++ seeding.
//!
//! The cluster count `N_clusters` "can be tuned as necessary" (Appendix A.1;
//! the paper's evaluation uses 52 clusters over its offline corpus). Empty
//! clusters are re-seeded from the point farthest from its centroid, so the
//! model always returns exactly `k` centroids.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    inertia: f64,
    iterations_run: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fits `k` clusters on `data` with at most `max_iters` Lloyd iterations.
    ///
    /// # Panics
    /// Panics if `data` is empty, `k` is 0, or rows have differing lengths.
    pub fn fit(data: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot cluster an empty data set");
        assert!(k > 0, "k must be positive");
        let dim = data[0].len();
        assert!(data.iter().all(|r| r.len() == dim), "inconsistent dimensions");
        let k = k.min(data.len());
        let mut rng = SmallRng::seed_from_u64(seed);

        let mut centroids = Self::plus_plus_init(data, k, &mut rng);
        let mut assignment = vec![usize::MAX; data.len()];
        let mut iterations_run = 0;

        for iter in 0..max_iters.max(1) {
            iterations_run = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, row) in data.iter().enumerate() {
                let best = Self::nearest(&centroids, row).0;
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            if !changed && iter > 0 {
                break;
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (row, &a) in data.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from its
                    // current centroid assignment.
                    let far = data
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let da = sq_dist(a, &centroids[assignment[0]]);
                            let db = sq_dist(b, &centroids[assignment[0]]);
                            da.partial_cmp(&db).unwrap()
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    centroids[c] = data[far].clone();
                } else {
                    for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *cv = s / counts[c] as f64;
                    }
                }
            }
        }

        let inertia = data.iter().map(|row| Self::nearest(&centroids, row).1).sum();
        Self { centroids, inertia, iterations_run }
    }

    fn plus_plus_init(data: &[Vec<f64>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f64>> {
        let mut centroids = Vec::with_capacity(k);
        centroids.push(data[rng.gen_range(0..data.len())].clone());
        while centroids.len() < k {
            // Distance-squared weighted sampling.
            let d2: Vec<f64> = data
                .iter()
                .map(|row| centroids.iter().map(|c| sq_dist(row, c)).fold(f64::INFINITY, f64::min))
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All points coincide with existing centroids; duplicate one.
                centroids.push(data[rng.gen_range(0..data.len())].clone());
                continue;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = data.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            centroids.push(data[chosen].clone());
        }
        centroids
    }

    fn nearest(centroids: &[Vec<f64>], row: &[f64]) -> (usize, f64) {
        let mut best = (0, f64::INFINITY);
        for (i, c) in centroids.iter().enumerate() {
            let d = sq_dist(c, row);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    /// Index of the cluster whose centroid is nearest to `v` — Darwin's
    /// online cluster lookup.
    pub fn assign(&self, v: &[f64]) -> usize {
        assert_eq!(v.len(), self.centroids[0].len(), "dimension mismatch");
        Self::nearest(&self.centroids, v).0
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Within-cluster sum of squared distances at convergence.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations actually run.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_data() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..20 {
            data.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            data.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMeans::fit(&two_blob_data(), 2, 100, 1);
        let a = km.assign(&[0.1, 0.0]);
        let b = km.assign(&[10.1, 10.0]);
        assert_ne!(a, b);
        // All blob-0 points agree.
        for i in 0..20 {
            assert_eq!(km.assign(&[i as f64 * 0.01, 0.0]), a);
        }
    }

    #[test]
    fn centroid_is_cluster_mean() {
        let data = vec![vec![0.0], vec![2.0], vec![100.0], vec![102.0]];
        let km = KMeans::fit(&data, 2, 100, 3);
        let mut cs: Vec<f64> = km.centroids().iter().map(|c| c[0]).collect();
        cs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((cs[0] - 1.0).abs() < 1e-9);
        assert!((cs[1] - 101.0).abs() < 1e-9);
    }

    #[test]
    fn k_clamped_to_data_size() {
        let data = vec![vec![1.0], vec![2.0]];
        let km = KMeans::fit(&data, 10, 50, 4);
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let d = two_blob_data();
        let a = KMeans::fit(&d, 3, 100, 7);
        let b = KMeans::fit(&d, 3, 100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let km = KMeans::fit(&two_blob_data(), 2, 100, 9);
        let v = vec![4.0, 4.0];
        let assigned = km.assign(&v);
        let dists: Vec<f64> = km
            .centroids()
            .iter()
            .map(|c| c.iter().zip(&v).map(|(a, b)| (a - b) * (a - b)).sum())
            .collect();
        let best = dists.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(assigned, best);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let d = two_blob_data();
        let k1 = KMeans::fit(&d, 1, 100, 5);
        let k2 = KMeans::fit(&d, 2, 100, 5);
        assert!(k2.inertia() < k1.inertia());
    }

    #[test]
    fn identical_points_dont_crash() {
        let d = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&d, 3, 50, 6);
        assert_eq!(km.assign(&[1.0, 1.0]), km.assign(&[1.0, 1.0]));
        assert!(km.inertia() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every point must be assigned to its genuinely nearest centroid.
        #[test]
        fn assignment_optimality(points in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3), 4..60), k in 1usize..6) {
            let km = KMeans::fit(&points, k, 50, 11);
            for p in &points {
                let assigned = km.assign(p);
                for (i, c) in km.centroids().iter().enumerate() {
                    let da: f64 = km.centroids()[assigned].iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                    let di: f64 = c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                    prop_assert!(da <= di + 1e-9, "point assigned to {} but {} is nearer", assigned, i);
                }
            }
        }
    }
}
