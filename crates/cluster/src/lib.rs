#![warn(missing_docs)]

//! # darwin-cluster
//!
//! Unsupervised clustering of workload feature vectors — step 1a of Darwin's
//! offline pipeline ("we then form clusters of traces based on their
//! features … using the K-means clustering algorithm", Appendix A.1).
//!
//! Provides z-score feature normalization (features span wildly different
//! scales: bytes vs microseconds vs cumulative gigabytes), k-means with
//! k-means++ seeding, and nearest-centroid assignment for Darwin's *online*
//! cluster lookup at the end of each epoch's warm-up phase.
//!
//! ```
//! use darwin_cluster::{KMeans, Normalizer};
//!
//! let data = vec![
//!     vec![0.0, 0.1], vec![0.2, 0.0], vec![10.0, 9.8], vec![9.9, 10.1],
//! ];
//! let norm = Normalizer::fit(&data);
//! let scaled: Vec<Vec<f64>> = data.iter().map(|v| norm.transform(v)).collect();
//! let km = KMeans::fit(&scaled, 2, 100, 42);
//! assert_eq!(km.assign(&norm.transform(&vec![0.1, 0.1])),
//!            km.assign(&norm.transform(&vec![0.15, 0.05])));
//! ```

pub mod kmeans;
pub mod normalize;

pub use kmeans::KMeans;
pub use normalize::Normalizer;
