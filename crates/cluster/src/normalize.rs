//! Z-score feature normalization.
//!
//! Darwin's features mix units (bytes, microseconds, cumulative bytes) whose
//! magnitudes differ by many orders; unnormalized Euclidean k-means would be
//! dominated by the stack-distance entries. The normalizer is fit on the
//! offline corpus and shipped inside the trained model so online feature
//! vectors are transformed identically.

use serde::{Deserialize, Serialize};

/// Per-dimension z-score transform fit on a data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits means and standard deviations per dimension. Dimensions with
    /// zero variance get std 1 (they transform to 0 and never influence
    /// distances).
    ///
    /// # Panics
    /// Panics if `data` is empty or rows have inconsistent lengths.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a normalizer on no data");
        let dim = data[0].len();
        assert!(data.iter().all(|r| r.len() == dim), "inconsistent dimensions");
        let n = data.len() as f64;
        let mut means = vec![0.0; dim];
        for row in data {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut vars = vec![0.0; dim];
        for row in data {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(row) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Dimensionality the normalizer was fit on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Transforms one vector.
    pub fn transform(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim(), "dimension mismatch");
        v.iter().zip(self.means.iter().zip(&self.stds)).map(|(&x, (&m, &s))| (x - m) / s).collect()
    }

    /// Inverse transform (for reporting centroids in original units).
    pub fn inverse(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim(), "dimension mismatch");
        v.iter().zip(self.means.iter().zip(&self.stds)).map(|(&z, (&m, &s))| z * s + m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_data_has_zero_mean_unit_std() {
        let data = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let n = Normalizer::fit(&data);
        let t: Vec<Vec<f64>> = data.iter().map(|v| n.transform(v)).collect();
        for d in 0..2 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| (r[d] - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let data = vec![vec![7.0], vec![7.0], vec![7.0]];
        let n = Normalizer::fit(&data);
        assert_eq!(n.transform(&[7.0]), vec![0.0]);
        assert_eq!(n.transform(&[8.0]), vec![1.0]); // std fell back to 1
    }

    #[test]
    fn inverse_roundtrips() {
        let data = vec![vec![1.0, -5.0], vec![2.0, 10.0], vec![9.0, 0.0]];
        let n = Normalizer::fit(&data);
        for row in &data {
            let back = n.inverse(&n.transform(row));
            for (a, b) in back.iter().zip(row) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        Normalizer::fit(&[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// transform ∘ inverse is the identity for any fit.
        #[test]
        fn inverse_is_right_inverse(
            data in proptest::collection::vec(
                proptest::collection::vec(-1e6f64..1e6, 3), 2..30),
            probe in proptest::collection::vec(-1e6f64..1e6, 3),
        ) {
            let n = Normalizer::fit(&data);
            let back = n.inverse(&n.transform(&probe));
            for (a, b) in back.iter().zip(&probe) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }
}
