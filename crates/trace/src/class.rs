//! Traffic-class models.
//!
//! A *traffic class* (paper §2.1) is a set of domain names with a particular
//! content type and similar access characteristics. The paper's evaluation is
//! built on the Image and Download classes of a production server trace; §3.1
//! reports their distinguishing statistics, which the presets below encode:
//!
//! * **Image** — "many requests for infrequently accessed objects and 71.9 %
//!   of the requests are for objects whose sizes are smaller than 20 KB";
//!   best static expert (f=5, s=20 KB).
//! * **Download** — "objects are more popular … these objects all have more
//!   than 7 requests", "only 21.5 % of the requests are for objects below
//!   50 KB"; best static expert (f=1, s=5 MB).

use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Identifies the preset a class was derived from (used for labeling traces
/// and experiment output; custom classes use [`ClassKind::Custom`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassKind {
    /// Small, unpopular objects (one/two-hit wonders dominate).
    Image,
    /// Large, popular objects (software downloads, media segments).
    Download,
    /// Mid-sized objects with moderate popularity (HTML/CSS/JS).
    Web,
    /// User-defined class.
    Custom,
}

/// Object-size model: a log-normal distribution (in bytes) clamped to
/// `[min_bytes, max_bytes]`. Log-normal body sizes are the standard model for
/// CDN object sizes and are what Tragen fits per traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeModel {
    /// Mean of ln(size).
    pub mu: f64,
    /// Std-dev of ln(size).
    pub sigma: f64,
    /// Lower clamp in bytes (CDN objects are at least a header's worth).
    pub min_bytes: u64,
    /// Upper clamp in bytes.
    pub max_bytes: u64,
}

impl SizeModel {
    /// Log-normal with the given median (bytes) and shape `sigma`.
    pub fn from_median(median_bytes: f64, sigma: f64, min_bytes: u64, max_bytes: u64) -> Self {
        Self { mu: median_bytes.ln(), sigma, min_bytes, max_bytes }
    }

    /// Draws one size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inline Box-Muller-free sampling via rand_distr would also work; we
        // use the standard-normal from rand_distr for numerical quality.
        let z: f64 = rng.sample(rand_distr::StandardNormal);
        let v = (self.mu + self.sigma * z).exp();
        (v as u64).clamp(self.min_bytes, self.max_bytes)
    }
}

/// A traffic class: a catalog of `num_objects` objects with Zipf(`zipf_alpha`)
/// popularity, per-object sizes drawn once from `sizes`, and Poisson arrivals
/// at `rate_rps` requests/second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficClass {
    /// Human-readable name for logs and experiment output.
    pub name: String,
    /// Preset the class derives from.
    pub kind: ClassKind,
    /// Catalog size (number of distinct objects).
    pub num_objects: u64,
    /// Zipf skew; larger ⇒ more popular head, fewer one-hit wonders.
    pub zipf_alpha: f64,
    /// Object-size distribution.
    pub sizes: SizeModel,
    /// Aggregate request rate of the class in requests/second when the class
    /// runs at 100 % share. The mixer scales this by the mix ratio.
    pub rate_rps: f64,
    /// Fraction of requests that target a brand-new, never-repeated object
    /// (a "cache scan" of one-hit wonders; §2.2 reports ≈70 % of unique CDN
    /// objects are one-hit wonders). These requests pollute size-only
    /// admission policies — the failure mode §3.2.1 pins on AdaptSize.
    pub one_hit_fraction: f64,
}

impl TrafficClass {
    /// The Image class preset (see module docs). Catalog is large relative to
    /// typical trace lengths so that most objects are requested only a few
    /// times, reproducing the one/two/three-hit-wonder-heavy behaviour.
    pub fn image() -> Self {
        Self {
            name: "image".into(),
            kind: ClassKind::Image,
            num_objects: 25_000,
            zipf_alpha: 0.8,
            // Median 8 KB, sigma 1.15 ⇒ P(size < 20 KB) ≈ 0.78, matching the
            // paper's 71.9 % of requests below 20 KB (requests skew smaller
            // than objects because popular objects are drawn independently).
            sizes: SizeModel::from_median(8.0 * 1024.0, 1.15, 128, 20 * 1024 * 1024),
            rate_rps: 150.0,
            one_hit_fraction: 0.5,
        }
    }

    /// The Download class preset: small catalog of popular, large objects.
    pub fn download() -> Self {
        Self {
            name: "download".into(),
            kind: ClassKind::Download,
            // Small catalog: the paper's Download subtrace has no unpopular
            // objects ("these objects all have more than 7 requests", §3.1).
            num_objects: 2_000,
            zipf_alpha: 1.05,
            // Median 200 KB, sigma 1.3 ⇒ P(size < 50 KB) ≈ 0.14, near the
            // paper's 21.5 % of requests below 50 KB, with a tail thin
            // enough that the evaluation grid's size thresholds
            // (10 KB–1 MB, §6 "Baselines") remain meaningful for the class,
            // as they were for the paper's production traffic.
            sizes: SizeModel::from_median(200.0 * 1024.0, 1.3, 4 * 1024, 50 * 1024 * 1024),
            rate_rps: 115.9,
            // The class catalog is uniformly popular ("these objects all
            // have more than 7 requests"), but the class still carries a
            // modest stream of cold one-off fetches — large-object scans
            // are the §3.2.1 failure mode for size-only admission.
            one_hit_fraction: 0.15,
        }
    }

    /// A generic Web class (HTML/CSS/JS): mid-size objects, moderate skew.
    /// Used by the extension experiments that need a third class.
    pub fn web() -> Self {
        Self {
            name: "web".into(),
            kind: ClassKind::Web,
            num_objects: 80_000,
            zipf_alpha: 0.9,
            sizes: SizeModel::from_median(32.0 * 1024.0, 1.0, 256, 50 * 1024 * 1024),
            rate_rps: 120.0,
            one_hit_fraction: 0.25,
        }
    }

    /// Deterministic per-object size: object `rank` (0-based popularity rank)
    /// always has the same size for a given class seed, so that the same
    /// object observed in different traces keeps its size.
    pub fn object_size(&self, rank: u64, class_seed: u64) -> u64 {
        // A splitmix-style hash of (seed, rank) seeds a small RNG per object.
        let mut h = class_seed ^ rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(h);
        self.sizes.sample(&mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn size_model_respects_clamps() {
        let m = SizeModel::from_median(1000.0, 3.0, 100, 5000);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!((100..=5000).contains(&s));
        }
    }

    #[test]
    fn size_model_median_roughly_matches() {
        let m = SizeModel::from_median(10_000.0, 1.0, 1, u64::MAX);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut v: Vec<u64> = (0..20_001).map(|_| m.sample(&mut rng)).collect();
        v.sort_unstable();
        let med = v[v.len() / 2] as f64;
        assert!((med / 10_000.0 - 1.0).abs() < 0.10, "median {med} too far from 10000");
    }

    #[test]
    fn object_size_is_deterministic() {
        let c = TrafficClass::image();
        assert_eq!(c.object_size(42, 7), c.object_size(42, 7));
        // Different seeds or ranks give (almost surely) different sizes.
        assert_ne!(c.object_size(42, 7), c.object_size(43, 7));
    }

    #[test]
    fn image_class_mostly_small_objects() {
        let c = TrafficClass::image();
        let below = (0..5000u64).filter(|&r| c.object_size(r, 1) < 20 * 1024).count();
        // Object-level share below 20 KB should be comfortably above half.
        assert!(below > 2500, "only {below}/5000 image objects below 20 KB");
    }

    #[test]
    fn download_class_mostly_large_objects() {
        let c = TrafficClass::download();
        let below = (0..5000u64).filter(|&r| c.object_size(r, 1) < 50 * 1024).count();
        assert!(below < 1500, "{below}/5000 download objects below 50 KB (expected few)");
    }
}
