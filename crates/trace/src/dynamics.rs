//! Non-stationary workload transformations.
//!
//! §2.1's premise is that "the volume and mix of traffic classes assigned to
//! a CDN server can change rapidly". Beyond concatenating stationary phases
//! ([`crate::concat_traces`]), these transformations inject the specific
//! dynamics production servers exhibit:
//!
//! * [`modulate_rate`] — diurnal-style request-rate modulation (time-warps
//!   arrivals without changing their order or mix);
//! * [`drift_popularity`] — gradual popularity drift: the object IDs of one
//!   class are progressively remapped so old favourites cool down and new
//!   ones heat up;
//! * [`flash_crowd`] — a sudden hot object that absorbs a share of requests
//!   for a window (an "important iOS update is released");
//! * [`popularity_inversion`] — an instant regime change: at one cut point
//!   the popular set is bijectively remapped, so everything a cache learned
//!   about who is hot becomes wrong at once (the adversarial counterpart of
//!   [`drift_popularity`]'s gradual rotation);
//! * [`compress_window`] — a true arrival-rate burst: a window's timestamps
//!   are squeezed by a factor so the same requests land in a fraction of the
//!   wall-clock, the load spike that drives a gateway into shedding.

use crate::generator::{object_id, split_id};
use crate::request::{Request, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Time-warps arrivals so the instantaneous rate follows
/// `1 + depth·sin(2πt/period)` (depth ∈ [0, 1)). Request order and content
/// are unchanged; only timestamps move.
pub fn modulate_rate(trace: &Trace, period_us: u64, depth: f64) -> Trace {
    assert!((0.0..1.0).contains(&depth), "depth must be in [0,1)");
    assert!(period_us > 0, "period must be positive");
    let mut requests = Vec::with_capacity(trace.len());
    let mut warped = 0.0f64;
    let mut prev = trace.requests().first().map(|r| r.timestamp_us).unwrap_or(0);
    for r in trace {
        let gap = (r.timestamp_us - prev) as f64;
        prev = r.timestamp_us;
        // Higher instantaneous rate ⇒ gaps shrink.
        let phase = 2.0 * std::f64::consts::PI * (warped / period_us as f64);
        let rate = 1.0 + depth * phase.sin();
        warped += gap / rate;
        requests.push(Request::new(r.id, r.size, warped.round() as u64));
    }
    Trace::from_sorted(requests)
}

/// Gradually remaps a fraction of object IDs over the trace: by the end,
/// `drift_fraction` of requests reference "generation 1" objects (fresh IDs)
/// instead of their original "generation 0" objects. The remap preserves
/// each object's size-class by keeping its rank (only the generation bit in
/// the high rank space changes), so size statistics stay put while the
/// *identity* of the popular set rotates — exactly what ages a cache.
pub fn drift_popularity(trace: &Trace, drift_fraction: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&drift_fraction), "fraction in [0,1]");
    let n = trace.len().max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    const GENERATION_BIT: u64 = 1 << 40; // inside the 48-bit rank space
    let requests = trace
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let progress = i as f64 / n as f64;
            let p_new = progress * drift_fraction;
            if rng.gen::<f64>() < p_new {
                let (class, rank) = split_id(r.id);
                Request::new(object_id(class, rank | GENERATION_BIT), r.size, r.timestamp_us)
            } else {
                *r
            }
        })
        .collect();
    Trace::from_sorted(requests)
}

/// Overwrites a window `[start_frac, end_frac)` of the trace so that a
/// single hot object of `hot_size` bytes absorbs `share` of its requests —
/// a flash crowd / major software release.
pub fn flash_crowd(
    trace: &Trace,
    start_frac: f64,
    end_frac: f64,
    share: f64,
    hot_size: u64,
    seed: u64,
) -> Trace {
    assert!((0.0..=1.0).contains(&start_frac) && (0.0..=1.0).contains(&end_frac));
    assert!(start_frac < end_frac, "empty flash-crowd window");
    assert!((0.0..=1.0).contains(&share), "share in [0,1]");
    assert!(hot_size > 0, "hot object needs a size");
    let n = trace.len();
    let lo = (start_frac * n as f64) as usize;
    let hi = (end_frac * n as f64) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    // A dedicated class index far above generated classes.
    let hot_id = object_id(255, 1);
    let requests = trace
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i >= lo && i < hi && rng.gen::<f64>() < share {
                Request::new(hot_id, hot_size, r.timestamp_us)
            } else {
                *r
            }
        })
        .collect();
    Trace::from_sorted(requests)
}

/// Inverts object popularity at a single cut point: from `at_frac` of the
/// trace onward, every object's rank within its class is XOR-remapped by a
/// seed-derived nonzero mask. The remap is a bijection on the rank space, so
/// the *workload statistics* (class mix, sizes, arrival times) are
/// untouched — but the identity of the popular head flips instantly,
/// invalidating everything a cache or learned admission policy inferred
/// before the cut. Same seed ⇒ same remap.
pub fn popularity_inversion(trace: &Trace, at_frac: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&at_frac), "cut point in [0,1]");
    // The generator's rank width is 48 bits. SplitMix64 the seed into a
    // mask; force the high rank bit so the hot low-rank head provably lands
    // deep in the cold tail.
    const RANK_SPACE: u64 = (1 << 48) - 1;
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let mask = ((z ^ (z >> 31)) & RANK_SPACE) | (1 << 47);
    let cut = (at_frac * trace.len() as f64) as usize;
    let requests = trace
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i >= cut {
                let (class, rank) = split_id(r.id);
                Request::new(object_id(class, rank ^ mask), r.size, r.timestamp_us)
            } else {
                *r
            }
        })
        .collect();
    Trace::from_sorted(requests)
}

/// Time-compresses the window `[start_frac, end_frac)` by `factor` (> 1):
/// the window's inter-arrival gaps shrink to `gap / factor`, so the same
/// requests arrive in `1/factor` of the wall-clock — an arrival-rate burst.
/// Requests after the window shift earlier by the time saved; order and
/// content are unchanged. Compose with [`flash_crowd`] over the same window
/// for the full "everyone fetches the update at once" storm.
pub fn compress_window(trace: &Trace, start_frac: f64, end_frac: f64, factor: f64) -> Trace {
    assert!((0.0..=1.0).contains(&start_frac) && (0.0..=1.0).contains(&end_frac));
    assert!(start_frac < end_frac, "empty burst window");
    assert!(factor >= 1.0, "compression factor must be >= 1");
    let n = trace.len();
    let lo = (start_frac * n as f64) as usize;
    let hi = (end_frac * n as f64) as usize;
    let mut requests = Vec::with_capacity(n);
    let mut out = 0.0f64;
    let mut prev = trace.requests().first().map(|r| r.timestamp_us).unwrap_or(0);
    for (i, r) in trace.iter().enumerate() {
        let gap = (r.timestamp_us - prev) as f64;
        prev = r.timestamp_us;
        out += if i > lo && i <= hi { gap / factor } else { gap };
        requests.push(Request::new(r.id, r.size, out.round() as u64));
    }
    Trace::from_sorted(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MixSpec, TraceGenerator, TrafficClass};

    fn base(n: usize) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), 5).generate(n)
    }

    #[test]
    fn modulation_preserves_content_and_order() {
        let t = base(5_000);
        let m = modulate_rate(&t, 60_000_000, 0.5);
        assert_eq!(m.len(), t.len());
        for (a, b) in t.iter().zip(m.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
        }
        assert!(m.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn modulation_changes_local_density() {
        let t = base(20_000);
        let m = modulate_rate(&t, t.duration_us() / 2, 0.8);
        // Count requests in the first vs second quarter of warped time; a
        // strong modulation must make them clearly unequal.
        let total = m.duration_us();
        let q1 = m.iter().filter(|r| r.timestamp_us < total / 4).count();
        let q2 = m.iter().filter(|r| r.timestamp_us >= total / 4 && r.timestamp_us < total / 2).count();
        let ratio = q1 as f64 / q2.max(1) as f64;
        assert!(!(0.8..=1.25).contains(&ratio), "quarters too uniform under modulation: {q1} vs {q2}");
    }

    #[test]
    fn drift_introduces_new_ids_late_not_early() {
        let t = base(20_000);
        let d = drift_popularity(&t, 0.8, 3);
        let changed_early =
            t.requests().iter().zip(d.requests()).take(2_000).filter(|(a, b)| a.id != b.id).count();
        let changed_late =
            t.requests().iter().zip(d.requests()).skip(18_000).filter(|(a, b)| a.id != b.id).count();
        assert!(changed_late > changed_early * 3, "{changed_early} early vs {changed_late} late");
        // Sizes preserved.
        for (a, b) in t.iter().zip(d.iter()) {
            assert_eq!(a.size, b.size);
        }
    }

    #[test]
    fn zero_drift_is_identity() {
        let t = base(1_000);
        assert_eq!(drift_popularity(&t, 0.0, 1), t);
    }

    #[test]
    fn flash_crowd_confined_to_window() {
        let t = base(10_000);
        let f = flash_crowd(&t, 0.4, 0.6, 0.9, 5 * 1024 * 1024, 9);
        let hot = object_id(255, 1);
        assert!(f.requests()[..4_000].iter().all(|r| r.id != hot));
        assert!(f.requests()[6_000..].iter().all(|r| r.id != hot));
        let inside = f.requests()[4_000..6_000].iter().filter(|r| r.id == hot).count();
        assert!((1_500..=2_000).contains(&inside), "hot object got {inside}/2000 requests at share 0.9");
    }

    #[test]
    #[should_panic(expected = "empty flash-crowd window")]
    fn inverted_window_rejected() {
        flash_crowd(&base(100), 0.6, 0.4, 0.5, 1024, 1);
    }

    #[test]
    fn inversion_flips_the_popular_set_at_the_cut() {
        let t = base(10_000);
        let inv = popularity_inversion(&t, 0.5, 21);
        // Before the cut: identity. After: a bijection that misses every
        // original id (the forced high bit guarantees it), with sizes and
        // timestamps untouched.
        for (a, b) in t.iter().zip(inv.iter()).take(5_000) {
            assert_eq!(a, b);
        }
        let mut remapped = std::collections::HashSet::new();
        for (a, b) in t.iter().zip(inv.iter()).skip(5_000) {
            assert_ne!(a.id, b.id, "post-cut ids must move");
            assert_eq!(a.size, b.size);
            assert_eq!(a.timestamp_us, b.timestamp_us);
            let (ca, _) = split_id(a.id);
            let (cb, _) = split_id(b.id);
            assert_eq!(ca, cb, "class is preserved");
            remapped.insert((a.id, b.id));
        }
        // Bijection: the same original id always maps to the same new id.
        let distinct_from: std::collections::HashSet<u64> =
            remapped.iter().map(|&(from, _)| from).collect();
        let distinct_to: std::collections::HashSet<u64> = remapped.iter().map(|&(_, to)| to).collect();
        assert_eq!(distinct_from.len(), distinct_to.len());
        assert_eq!(remapped.len(), distinct_from.len());
        // Determinism.
        assert_eq!(inv, popularity_inversion(&t, 0.5, 21));
        assert_ne!(inv, popularity_inversion(&t, 0.5, 22), "seed selects the remap");
    }

    #[test]
    fn compression_bursts_the_window_and_preserves_content() {
        let t = base(10_000);
        let c = compress_window(&t, 0.25, 0.75, 4.0);
        assert_eq!(c.len(), t.len());
        for (a, b) in t.iter().zip(c.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
        }
        assert!(c.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
        // The window's span shrinks ~4×; the prefix is untouched.
        let span = |tr: &Trace, lo: usize, hi: usize| {
            tr.requests()[hi - 1].timestamp_us - tr.requests()[lo].timestamp_us
        };
        assert_eq!(span(&c, 0, 2_500), span(&t, 0, 2_500), "prefix untouched");
        let orig = span(&t, 2_500, 7_500) as f64;
        let burst = span(&c, 2_500, 7_500) as f64;
        assert!(
            (burst / orig) < 0.3,
            "window must compress ~4x, got {burst}/{orig} = {:.2}",
            burst / orig
        );
        // Total duration shrinks by exactly the time saved in the window.
        assert!(c.duration_us() < t.duration_us());
    }

    #[test]
    #[should_panic(expected = "compression factor")]
    fn dilating_factor_rejected() {
        compress_window(&base(100), 0.2, 0.8, 0.5);
    }
}
