//! Non-stationary workload transformations.
//!
//! §2.1's premise is that "the volume and mix of traffic classes assigned to
//! a CDN server can change rapidly". Beyond concatenating stationary phases
//! ([`crate::concat_traces`]), these transformations inject the specific
//! dynamics production servers exhibit:
//!
//! * [`modulate_rate`] — diurnal-style request-rate modulation (time-warps
//!   arrivals without changing their order or mix);
//! * [`drift_popularity`] — gradual popularity drift: the object IDs of one
//!   class are progressively remapped so old favourites cool down and new
//!   ones heat up;
//! * [`flash_crowd`] — a sudden hot object that absorbs a share of requests
//!   for a window (an "important iOS update is released").

use crate::generator::{object_id, split_id};
use crate::request::{Request, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Time-warps arrivals so the instantaneous rate follows
/// `1 + depth·sin(2πt/period)` (depth ∈ [0, 1)). Request order and content
/// are unchanged; only timestamps move.
pub fn modulate_rate(trace: &Trace, period_us: u64, depth: f64) -> Trace {
    assert!((0.0..1.0).contains(&depth), "depth must be in [0,1)");
    assert!(period_us > 0, "period must be positive");
    let mut requests = Vec::with_capacity(trace.len());
    let mut warped = 0.0f64;
    let mut prev = trace.requests().first().map(|r| r.timestamp_us).unwrap_or(0);
    for r in trace {
        let gap = (r.timestamp_us - prev) as f64;
        prev = r.timestamp_us;
        // Higher instantaneous rate ⇒ gaps shrink.
        let phase = 2.0 * std::f64::consts::PI * (warped / period_us as f64);
        let rate = 1.0 + depth * phase.sin();
        warped += gap / rate;
        requests.push(Request::new(r.id, r.size, warped.round() as u64));
    }
    Trace::from_sorted(requests)
}

/// Gradually remaps a fraction of object IDs over the trace: by the end,
/// `drift_fraction` of requests reference "generation 1" objects (fresh IDs)
/// instead of their original "generation 0" objects. The remap preserves
/// each object's size-class by keeping its rank (only the generation bit in
/// the high rank space changes), so size statistics stay put while the
/// *identity* of the popular set rotates — exactly what ages a cache.
pub fn drift_popularity(trace: &Trace, drift_fraction: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&drift_fraction), "fraction in [0,1]");
    let n = trace.len().max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    const GENERATION_BIT: u64 = 1 << 40; // inside the 48-bit rank space
    let requests = trace
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let progress = i as f64 / n as f64;
            let p_new = progress * drift_fraction;
            if rng.gen::<f64>() < p_new {
                let (class, rank) = split_id(r.id);
                Request::new(object_id(class, rank | GENERATION_BIT), r.size, r.timestamp_us)
            } else {
                *r
            }
        })
        .collect();
    Trace::from_sorted(requests)
}

/// Overwrites a window `[start_frac, end_frac)` of the trace so that a
/// single hot object of `hot_size` bytes absorbs `share` of its requests —
/// a flash crowd / major software release.
pub fn flash_crowd(
    trace: &Trace,
    start_frac: f64,
    end_frac: f64,
    share: f64,
    hot_size: u64,
    seed: u64,
) -> Trace {
    assert!((0.0..=1.0).contains(&start_frac) && (0.0..=1.0).contains(&end_frac));
    assert!(start_frac < end_frac, "empty flash-crowd window");
    assert!((0.0..=1.0).contains(&share), "share in [0,1]");
    assert!(hot_size > 0, "hot object needs a size");
    let n = trace.len();
    let lo = (start_frac * n as f64) as usize;
    let hi = (end_frac * n as f64) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    // A dedicated class index far above generated classes.
    let hot_id = object_id(255, 1);
    let requests = trace
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i >= lo && i < hi && rng.gen::<f64>() < share {
                Request::new(hot_id, hot_size, r.timestamp_us)
            } else {
                *r
            }
        })
        .collect();
    Trace::from_sorted(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MixSpec, TraceGenerator, TrafficClass};

    fn base(n: usize) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), 5).generate(n)
    }

    #[test]
    fn modulation_preserves_content_and_order() {
        let t = base(5_000);
        let m = modulate_rate(&t, 60_000_000, 0.5);
        assert_eq!(m.len(), t.len());
        for (a, b) in t.iter().zip(m.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
        }
        assert!(m.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn modulation_changes_local_density() {
        let t = base(20_000);
        let m = modulate_rate(&t, t.duration_us() / 2, 0.8);
        // Count requests in the first vs second quarter of warped time; a
        // strong modulation must make them clearly unequal.
        let total = m.duration_us();
        let q1 = m.iter().filter(|r| r.timestamp_us < total / 4).count();
        let q2 = m.iter().filter(|r| r.timestamp_us >= total / 4 && r.timestamp_us < total / 2).count();
        let ratio = q1 as f64 / q2.max(1) as f64;
        assert!(!(0.8..=1.25).contains(&ratio), "quarters too uniform under modulation: {q1} vs {q2}");
    }

    #[test]
    fn drift_introduces_new_ids_late_not_early() {
        let t = base(20_000);
        let d = drift_popularity(&t, 0.8, 3);
        let changed_early =
            t.requests().iter().zip(d.requests()).take(2_000).filter(|(a, b)| a.id != b.id).count();
        let changed_late =
            t.requests().iter().zip(d.requests()).skip(18_000).filter(|(a, b)| a.id != b.id).count();
        assert!(changed_late > changed_early * 3, "{changed_early} early vs {changed_late} late");
        // Sizes preserved.
        for (a, b) in t.iter().zip(d.iter()) {
            assert_eq!(a.size, b.size);
        }
    }

    #[test]
    fn zero_drift_is_identity() {
        let t = base(1_000);
        assert_eq!(drift_popularity(&t, 0.0, 1), t);
    }

    #[test]
    fn flash_crowd_confined_to_window() {
        let t = base(10_000);
        let f = flash_crowd(&t, 0.4, 0.6, 0.9, 5 * 1024 * 1024, 9);
        let hot = object_id(255, 1);
        assert!(f.requests()[..4_000].iter().all(|r| r.id != hot));
        assert!(f.requests()[6_000..].iter().all(|r| r.id != hot));
        let inside = f.requests()[4_000..6_000].iter().filter(|r| r.id == hot).count();
        assert!((1_500..=2_000).contains(&inside), "hot object got {inside}/2000 requests at share 0.9");
    }

    #[test]
    #[should_panic(expected = "empty flash-crowd window")]
    fn inverted_window_rejected() {
        flash_crowd(&base(100), 0.6, 0.4, 0.5, 1024, 1);
    }
}
