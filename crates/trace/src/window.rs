//! Fixed-size request windows over a trace.
//!
//! Several experiments slice traces into windows: the motivation study uses
//! "two randomly-picked time windows, each with 2M requests" (Fig 2a/2b), and
//! the Percentile baseline re-estimates its thresholds every N requests.

use crate::request::Trace;

/// Iterator over consecutive request-count windows of a trace.
///
/// The final window is yielded even if shorter than `window_len`, unless
/// `drop_partial` was requested.
pub struct Windows<'a> {
    trace: &'a Trace,
    window_len: usize,
    pos: usize,
    drop_partial: bool,
}

impl<'a> Windows<'a> {
    /// Windows of `window_len` requests, including a trailing partial window.
    pub fn new(trace: &'a Trace, window_len: usize) -> Self {
        assert!(window_len > 0, "window length must be positive");
        Self { trace, window_len, pos: 0, drop_partial: false }
    }

    /// Windows of `window_len` requests, dropping a trailing partial window.
    pub fn full_only(trace: &'a Trace, window_len: usize) -> Self {
        assert!(window_len > 0, "window length must be positive");
        Self { trace, window_len, pos: 0, drop_partial: true }
    }
}

impl<'a> Iterator for Windows<'a> {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        if self.pos >= self.trace.len() {
            return None;
        }
        let end = (self.pos + self.window_len).min(self.trace.len());
        if self.drop_partial && end - self.pos < self.window_len {
            self.pos = self.trace.len();
            return None;
        }
        let w = self.trace.slice(self.pos, end);
        self.pos = end;
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn t(n: usize) -> Trace {
        Trace::from_requests((0..n as u64).map(|i| Request::new(i, 1, i)).collect())
    }

    #[test]
    fn exact_division() {
        let tr = t(9);
        let w: Vec<Trace> = Windows::new(&tr, 3).collect();
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|x| x.len() == 3));
    }

    #[test]
    fn partial_window_included_by_default() {
        let tr = t(10);
        let w: Vec<Trace> = Windows::new(&tr, 3).collect();
        assert_eq!(w.len(), 4);
        assert_eq!(w[3].len(), 1);
    }

    #[test]
    fn partial_window_dropped_when_requested() {
        let tr = t(10);
        let w: Vec<Trace> = Windows::full_only(&tr, 3).collect();
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn window_larger_than_trace() {
        let tr = t(2);
        let w: Vec<Trace> = Windows::new(&tr, 10).collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].len(), 2);
        let w2: Vec<Trace> = Windows::full_only(&tr, 10).collect();
        assert!(w2.is_empty());
    }
}
