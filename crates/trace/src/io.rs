//! Trace import/export in a plain-text interchange format.
//!
//! Real CDN traces (including the anonymized production logs the paper
//! trains on) are commonly distributed as per-request text records. This
//! module reads and writes the minimal schema Darwin needs — the Appendix
//! A.1 triple `(timestamp, id, size)` — one request per line:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! timestamp_us,object_id,size_bytes
//! 0,42,13312
//! 117,7,524288
//! ```
//!
//! The reader is forgiving about ordering (it re-sorts by timestamp) and
//! reports the line number of the first malformed record.

use crate::request::{Request, Trace};
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Why parsing a trace file failed.
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed record at the given 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of what was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "I/O error: {e}"),
            TraceReadError::Parse { line, reason } => {
                write!(f, "malformed record on line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Parses a trace from CSV text (see module docs for the schema).
pub fn read_trace<R: io::Read>(reader: R) -> Result<Trace, TraceReadError> {
    let mut requests = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parse_field = |part: Option<&str>, name: &str| -> Result<u64, TraceReadError> {
            let raw = part.ok_or_else(|| TraceReadError::Parse {
                line: idx + 1,
                reason: format!("missing field `{name}`"),
            })?;
            raw.trim().parse::<u64>().map_err(|e| TraceReadError::Parse {
                line: idx + 1,
                reason: format!("field `{name}` = {raw:?}: {e}"),
            })
        };
        let timestamp_us = parse_field(parts.next(), "timestamp_us")?;
        let id = parse_field(parts.next(), "object_id")?;
        let size = parse_field(parts.next(), "size_bytes")?;
        if size == 0 {
            return Err(TraceReadError::Parse { line: idx + 1, reason: "size must be positive".into() });
        }
        if let Some(extra) = parts.next() {
            if !extra.trim().is_empty() {
                return Err(TraceReadError::Parse {
                    line: idx + 1,
                    reason: format!("unexpected trailing field {extra:?}"),
                });
            }
        }
        requests.push(Request::new(id, size, timestamp_us));
    }
    Ok(Trace::from_requests(requests))
}

/// Reads a trace from a file path.
pub fn read_trace_file<P: AsRef<Path>>(path: P) -> Result<Trace, TraceReadError> {
    read_trace(fs::File::open(path)?)
}

/// Writes a trace in the interchange format.
pub fn write_trace<W: io::Write>(trace: &Trace, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# timestamp_us,object_id,size_bytes")?;
    for r in trace {
        writeln!(w, "{},{},{}", r.timestamp_us, r.id, r.size)?;
    }
    w.flush()
}

/// Writes a trace to a file path.
pub fn write_trace_file<P: AsRef<Path>>(trace: &Trace, path: P) -> io::Result<()> {
    write_trace(trace, fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MixSpec, TraceGenerator, TrafficClass};

    #[test]
    fn roundtrip_preserves_trace() {
        let t = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1).generate(500);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n10,1,100\n# middle\n20,2,200\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0].id, 1);
    }

    #[test]
    fn out_of_order_records_are_sorted() {
        let text = "30,3,1\n10,1,1\n20,2,1\n";
        let t = read_trace(text.as_bytes()).unwrap();
        let ids: Vec<u64> = t.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn malformed_record_reports_line() {
        let text = "10,1,100\nnot-a-number,2,200\n";
        match read_trace(text.as_bytes()) {
            Err(TraceReadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_field_reports_name() {
        let text = "10,1\n";
        match read_trace(text.as_bytes()) {
            Err(TraceReadError::Parse { reason, .. }) => {
                assert!(reason.contains("size_bytes"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn zero_size_rejected() {
        let text = "10,1,0\n";
        assert!(matches!(read_trace(text.as_bytes()), Err(TraceReadError::Parse { line: 1, .. })));
    }

    #[test]
    fn trailing_field_rejected_but_trailing_comma_tolerated() {
        assert!(read_trace("10,1,100,junk\n".as_bytes()).is_err());
        assert!(read_trace("10,1,100,\n".as_bytes()).is_ok());
    }

    #[test]
    fn file_roundtrip() {
        let t = TraceGenerator::new(MixSpec::single(TrafficClass::web()), 2).generate(100);
        let path = std::env::temp_dir().join("darwin-trace-io-test.csv");
        write_trace_file(&t, &path).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(t, back);
        let _ = std::fs::remove_file(&path);
    }
}
