//! Core request and trace types.
//!
//! A trace is a time-ordered sequence of [`Request`]s, each identified by a
//! triple of object ID, object size and timestamp — the same schema the paper
//! assumes for offline-collected traces (Appendix A.1: "each offline-collected
//! traffic trace contains sequences of requests indexed by a triple of the ID,
//! size, and timestamp associated with the requested object").

use serde::{Deserialize, Serialize};

/// Globally unique object identifier.
///
/// Object IDs are namespaced by traffic class in the generator (the high bits
/// carry the class index) so that mixing classes never aliases objects.
pub type ObjectId = u64;

/// One CDN request: an object ID, the object's size in bytes, and the request
/// arrival time in microseconds since the start of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Requested object.
    pub id: ObjectId,
    /// Object size in bytes. The same ID always carries the same size within
    /// a trace (CDN objects are immutable at this granularity).
    pub size: u64,
    /// Arrival timestamp in microseconds.
    pub timestamp_us: u64,
}

impl Request {
    /// Convenience constructor.
    pub fn new(id: ObjectId, size: u64, timestamp_us: u64) -> Self {
        Self { id, size, timestamp_us }
    }
}

/// A time-ordered request trace.
///
/// Wraps a `Vec<Request>` and offers slicing, iteration and (de)serialization
/// helpers. Invariant: `requests` is sorted by `timestamp_us` (ties allowed).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Builds a trace from a vector of requests, sorting by timestamp to
    /// restore the ordering invariant.
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.timestamp_us);
        Self { requests }
    }

    /// Builds a trace from requests already known to be time-ordered.
    ///
    /// # Panics
    /// Panics in debug builds if the ordering invariant is violated.
    pub fn from_sorted(requests: Vec<Request>) -> Self {
        debug_assert!(
            requests.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us),
            "requests must be time-ordered"
        );
        Self { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The underlying requests, time-ordered.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterator over requests.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// A sub-trace over the half-open request-index range `[start, end)`.
    /// Timestamps are preserved (not re-based).
    pub fn slice(&self, start: usize, end: usize) -> Trace {
        Trace { requests: self.requests[start..end.min(self.requests.len())].to_vec() }
    }

    /// Splits off the first `n` requests as the warm-up prefix, returning
    /// `(warmup, rest)`. Used by the evaluation, which discards statistics of
    /// the first 1 M requests of every trace ("cache warmup" in §6).
    pub fn split_warmup(&self, n: usize) -> (Trace, Trace) {
        let n = n.min(self.len());
        (self.slice(0, n), self.slice(n, self.len()))
    }

    /// Total bytes requested.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.size).sum()
    }

    /// Number of distinct objects.
    pub fn unique_objects(&self) -> usize {
        let mut ids: Vec<ObjectId> = self.requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Duration covered by the trace in microseconds (0 for empty traces).
    pub fn duration_us(&self) -> u64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) => b.timestamp_us - a.timestamp_us,
            _ => 0,
        }
    }

    /// Serializes to a compact JSON array (for persistence of small corpora).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace previously produced by [`Trace::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<T: IntoIterator<Item = Request>>(iter: T) -> Self {
        Trace::from_requests(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: u64, size: u64, ts: u64) -> Request {
        Request::new(id, size, ts)
    }

    #[test]
    fn from_requests_sorts_by_timestamp() {
        let t = Trace::from_requests(vec![r(1, 10, 30), r(2, 20, 10), r(3, 30, 20)]);
        let ts: Vec<u64> = t.iter().map(|x| x.timestamp_us).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn slice_clamps_end() {
        let t = Trace::from_requests(vec![r(1, 10, 0), r(2, 20, 1)]);
        assert_eq!(t.slice(1, 100).len(), 1);
        assert_eq!(t.slice(0, 0).len(), 0);
    }

    #[test]
    fn split_warmup_partitions() {
        let t = Trace::from_requests((0..10).map(|i| r(i, 1, i)).collect());
        let (w, rest) = t.split_warmup(3);
        assert_eq!(w.len(), 3);
        assert_eq!(rest.len(), 7);
        assert_eq!(rest.requests()[0].id, 3);
    }

    #[test]
    fn split_warmup_clamps() {
        let t = Trace::from_requests((0..5).map(|i| r(i, 1, i)).collect());
        let (w, rest) = t.split_warmup(100);
        assert_eq!(w.len(), 5);
        assert!(rest.is_empty());
    }

    #[test]
    fn unique_objects_and_bytes() {
        let t = Trace::from_requests(vec![r(1, 10, 0), r(1, 10, 1), r(2, 5, 2)]);
        assert_eq!(t.unique_objects(), 2);
        assert_eq!(t.total_bytes(), 25);
        assert_eq!(t.duration_us(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let t = Trace::from_requests(vec![r(7, 1234, 0), r(8, 99, 5)]);
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.duration_us(), 0);
        assert_eq!(t.unique_objects(), 0);
    }
}
