//! Trace transformations: size scaling for larger-cache studies, and trace
//! concatenation for traffic-shift workloads.
//!
//! §6 ("CDN Traces"): *"For 200MB and 500MB cache sizes … we scale up the
//! object sizes of the 100MB traces by 2× and 5×, respectively, and
//! additionally perturb each object's size randomly by ±20 % to synthetically
//! generate 'new' traces."* [`scale_trace`] implements exactly that. The
//! perturbation is drawn once per object (not per request) so object sizes
//! remain consistent within the scaled trace.

use crate::request::{Request, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Scales every object's size by `factor` and perturbs it by a per-object
/// uniform factor in `[1 - perturb, 1 + perturb]`.
///
/// `perturb` must be in `[0, 1)`. Timestamps and ordering are preserved.
pub fn scale_trace(trace: &Trace, factor: f64, perturb: f64, seed: u64) -> Trace {
    assert!(factor > 0.0, "scale factor must be positive");
    assert!((0.0..1.0).contains(&perturb), "perturbation must be in [0,1)");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut per_object: HashMap<u64, f64> = HashMap::new();
    let requests = trace
        .iter()
        .map(|r| {
            let mult = *per_object
                .entry(r.id)
                .or_insert_with(|| factor * (1.0 + rng.gen_range(-perturb..=perturb)));
            Request::new(r.id, ((r.size as f64 * mult).round() as u64).max(1), r.timestamp_us)
        })
        .collect();
    Trace::from_sorted(requests)
}

/// Concatenates traces back-to-back, re-basing timestamps so each trace
/// starts where the previous one ended (plus one microsecond). This builds
/// the traffic-shift workloads of Fig 4/7a ("a concatenated trace that
/// consists of four 100M online test traces with different best experts").
pub fn concat_traces(traces: &[Trace]) -> Trace {
    let mut out: Vec<Request> = Vec::with_capacity(traces.iter().map(|t| t.len()).sum());
    let mut offset = 0u64;
    for t in traces {
        let base = t.requests().first().map(|r| r.timestamp_us).unwrap_or(0);
        for r in t {
            out.push(Request::new(r.id, r.size, offset + (r.timestamp_us - base)));
        }
        offset = out.last().map(|r| r.timestamp_us + 1).unwrap_or(offset);
    }
    Trace::from_sorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MixSpec, TraceGenerator, TrafficClass};
    use std::collections::HashMap;

    fn small_trace(seed: u64, n: usize) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
    }

    #[test]
    fn scaling_multiplies_sizes_within_band() {
        let t = small_trace(1, 5000);
        let s = scale_trace(&t, 5.0, 0.2, 7);
        for (a, b) in t.iter().zip(s.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.timestamp_us, b.timestamp_us);
            let ratio = b.size as f64 / a.size as f64;
            assert!((3.9..=6.1).contains(&ratio), "ratio {ratio} outside 5×±20% (+rounding)");
        }
    }

    #[test]
    fn scaling_keeps_object_sizes_consistent() {
        let t = small_trace(2, 20_000);
        let s = scale_trace(&t, 2.0, 0.2, 3);
        let mut sizes: HashMap<u64, u64> = HashMap::new();
        for r in &s {
            if let Some(prev) = sizes.insert(r.id, r.size) {
                assert_eq!(prev, r.size);
            }
        }
    }

    #[test]
    fn scaling_is_deterministic_in_seed() {
        let t = small_trace(3, 2000);
        assert_eq!(scale_trace(&t, 2.0, 0.2, 9), scale_trace(&t, 2.0, 0.2, 9));
        assert_ne!(scale_trace(&t, 2.0, 0.2, 9), scale_trace(&t, 2.0, 0.2, 10));
    }

    #[test]
    fn zero_perturbation_is_pure_scaling() {
        let t = small_trace(4, 1000);
        let s = scale_trace(&t, 3.0, 0.0, 1);
        for (a, b) in t.iter().zip(s.iter()) {
            assert_eq!(b.size, (a.size as f64 * 3.0).round() as u64);
        }
    }

    #[test]
    fn concat_rebases_timestamps_monotonically() {
        let a = small_trace(5, 1000);
        let b = small_trace(6, 1000);
        let c = concat_traces(&[a.clone(), b.clone()]);
        assert_eq!(c.len(), 2000);
        assert!(c.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
        // Second half starts after first half ends.
        assert!(c.requests()[1000].timestamp_us > c.requests()[999].timestamp_us);
    }

    #[test]
    fn concat_of_empty_is_empty() {
        assert!(concat_traces(&[]).is_empty());
        assert_eq!(concat_traces(&[Trace::default(), small_trace(7, 10)]).len(), 10);
    }
}
