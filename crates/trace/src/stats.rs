//! Descriptive statistics of a trace, used in experiment reporting and in
//! tests that check generated traces match their class's published statistics.

use crate::request::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Number of distinct objects.
    pub unique_objects: usize,
    /// Total requested bytes.
    pub total_bytes: u64,
    /// Mean request size in bytes.
    pub mean_size: f64,
    /// Fraction of *objects* requested exactly once ("one-hit wonders";
    /// §2.2: nearly 70 % of unique objects accessed from a CDN cache).
    pub one_hit_wonder_fraction: f64,
    /// Fraction of requests for objects smaller than 20 KB (Image-class
    /// diagnostic from §3.1).
    pub frac_requests_below_20k: f64,
    /// Fraction of requests for objects smaller than 50 KB (Download-class
    /// diagnostic from §3.1).
    pub frac_requests_below_50k: f64,
    /// Mean requests per object.
    pub mean_requests_per_object: f64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let n = trace.len();
        if n == 0 {
            return Self {
                requests: 0,
                unique_objects: 0,
                total_bytes: 0,
                mean_size: 0.0,
                one_hit_wonder_fraction: 0.0,
                frac_requests_below_20k: 0.0,
                frac_requests_below_50k: 0.0,
                mean_requests_per_object: 0.0,
            };
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let mut total_bytes = 0u64;
        let mut below20 = 0usize;
        let mut below50 = 0usize;
        for r in trace {
            *counts.entry(r.id).or_default() += 1;
            total_bytes += r.size;
            if r.size < 20 * 1024 {
                below20 += 1;
            }
            if r.size < 50 * 1024 {
                below50 += 1;
            }
        }
        let unique = counts.len();
        let one_hit = counts.values().filter(|&&c| c == 1).count();
        Self {
            requests: n,
            unique_objects: unique,
            total_bytes,
            mean_size: total_bytes as f64 / n as f64,
            one_hit_wonder_fraction: one_hit as f64 / unique as f64,
            frac_requests_below_20k: below20 as f64 / n as f64,
            frac_requests_below_50k: below50 as f64 / n as f64,
            mean_requests_per_object: n as f64 / unique as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MixSpec, TraceGenerator, TrafficClass};

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_size, 0.0);
    }

    #[test]
    fn image_class_statistics_match_paper_shape() {
        let t = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 11).generate(100_000);
        let s = TraceStats::compute(&t);
        // §3.1: "71.9% of the requests are for objects whose sizes are
        // smaller than 20KB" — we accept a generous band.
        assert!(
            (0.55..=0.90).contains(&s.frac_requests_below_20k),
            "image <20KB fraction {}",
            s.frac_requests_below_20k
        );
        // Image class must be one-hit-wonder heavy.
        assert!(s.one_hit_wonder_fraction > 0.4, "image one-hit fraction {}", s.one_hit_wonder_fraction);
    }

    #[test]
    fn download_class_statistics_match_paper_shape() {
        let t = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 12).generate(100_000);
        let s = TraceStats::compute(&t);
        // §3.1: "only 21.5% of the requests are for objects below 50KB".
        assert!(
            s.frac_requests_below_50k < 0.4,
            "download <50KB fraction {}",
            s.frac_requests_below_50k
        );
        // Download objects are popular: many requests per object.
        assert!(
            s.mean_requests_per_object > 5.0,
            "download mean req/object {}",
            s.mean_requests_per_object
        );
    }

    #[test]
    fn mean_size_is_total_over_requests() {
        let t = TraceGenerator::new(MixSpec::single(TrafficClass::web()), 13).generate(5_000);
        let s = TraceStats::compute(&t);
        assert!((s.mean_size - s.total_bytes as f64 / s.requests as f64).abs() < 1e-9);
    }
}
