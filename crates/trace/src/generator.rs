//! Trace generation: Poisson-arrival, Zipf-popularity request streams mixed
//! across traffic classes (the Tragen-style corpus generator of §6).
//!
//! Each class contributes requests at `rate_rps × share`; class arrival
//! processes are independent Poisson processes, so the merged stream is a
//! Poisson process whose thinning probabilities equal the shares. Object IDs
//! are namespaced per class in the high bits so classes never collide.

use crate::class::TrafficClass;
use crate::request::{ObjectId, Request, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::Zipf;
use serde::{Deserialize, Serialize};

/// Number of low bits of an [`ObjectId`] reserved for the per-class object
/// rank; the class index lives above them.
const CLASS_SHIFT: u32 = 48;

/// Builds the [`ObjectId`] for object `rank` of class `class_idx`.
pub fn object_id(class_idx: usize, rank: u64) -> ObjectId {
    debug_assert!(rank < (1 << CLASS_SHIFT));
    ((class_idx as u64) << CLASS_SHIFT) | rank
}

/// Extracts `(class_idx, rank)` from an [`ObjectId`] minted by [`object_id`].
pub fn split_id(id: ObjectId) -> (usize, u64) {
    ((id >> CLASS_SHIFT) as usize, id & ((1 << CLASS_SHIFT) - 1))
}

/// A mix specification: a set of traffic classes with their traffic shares.
///
/// Shares are normalized at generation time; a share of 0 removes the class
/// from the mix (the paper sweeps 100:0 → 0:100 over Image/Download).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    /// The classes in the mix.
    pub classes: Vec<TrafficClass>,
    /// Relative traffic shares (any non-negative weights; normalized).
    pub shares: Vec<f64>,
}

impl MixSpec {
    /// A mix of exactly one class.
    pub fn single(class: TrafficClass) -> Self {
        Self { classes: vec![class], shares: vec![1.0] }
    }

    /// A two-class mix where `share_a` ∈ `[0,1]` is the traffic share of `a`.
    pub fn two_class(a: TrafficClass, b: TrafficClass, share_a: f64) -> Self {
        assert!((0.0..=1.0).contains(&share_a), "share_a must be in [0,1]");
        Self { classes: vec![a, b], shares: vec![share_a, 1.0 - share_a] }
    }

    /// Arbitrary mix. `classes` and `shares` must have equal lengths and at
    /// least one positive share.
    pub fn new(classes: Vec<TrafficClass>, shares: Vec<f64>) -> Self {
        assert_eq!(classes.len(), shares.len(), "classes/shares length mismatch");
        assert!(shares.iter().any(|&s| s > 0.0), "at least one share must be positive");
        assert!(shares.iter().all(|&s| s >= 0.0), "shares must be non-negative");
        Self { classes, shares }
    }

    /// Normalized shares.
    pub fn normalized_shares(&self) -> Vec<f64> {
        let sum: f64 = self.shares.iter().sum();
        self.shares.iter().map(|s| s / sum).collect()
    }

    /// Aggregate request rate of the mix (sum of class rates weighted by
    /// normalized share), in requests/second. Mirrors the paper's "sum of the
    /// request rates for the two traffic classes … is 265.9 req/s".
    pub fn aggregate_rate_rps(&self) -> f64 {
        let shares = self.normalized_shares();
        self.classes
            .iter()
            .zip(&shares)
            .map(|(c, &sh)| c.rate_rps * sh)
            .sum::<f64>()
            .max(f64::MIN_POSITIVE)
    }

    /// The standard evaluation sweep of the paper: `steps` two-class mixes
    /// with share of `a` going 1.0 → 0.0 inclusive.
    pub fn sweep(a: TrafficClass, b: TrafficClass, steps: usize) -> Vec<MixSpec> {
        assert!(steps >= 2, "a sweep needs at least its two endpoints");
        (0..steps)
            .map(|i| {
                let share_a = 1.0 - i as f64 / (steps - 1) as f64;
                MixSpec::two_class(a.clone(), b.clone(), share_a)
            })
            .collect()
    }
}

/// Deterministic trace generator for a [`MixSpec`].
///
/// The generator draws, per request: the class (categorical over shares), the
/// object (Zipf over the class catalog with per-class random rank permutation
/// so two classes' popular objects are unrelated), and the inter-arrival gap
/// (exponential at the aggregate mix rate).
pub struct TraceGenerator {
    spec: MixSpec,
    /// Seed for object-size derivation; fixed per generator so re-generating
    /// with the same seed reproduces the trace exactly.
    seed: u64,
    rng: SmallRng,
    zipfs: Vec<Zipf<f64>>,
    cum_shares: Vec<f64>,
    lambda_per_us: f64,
    /// Next fresh one-hit-wonder rank per class (offset past the catalog).
    one_hit_next: Vec<u64>,
}

impl TraceGenerator {
    /// Creates a generator for `spec` with the given RNG seed.
    pub fn new(spec: MixSpec, seed: u64) -> Self {
        let shares = spec.normalized_shares();
        let mut cum = 0.0;
        let cum_shares: Vec<f64> = shares
            .iter()
            .map(|s| {
                cum += s;
                cum
            })
            .collect();
        let zipfs = spec
            .classes
            .iter()
            .map(|c| {
                Zipf::new(c.num_objects.max(1), c.zipf_alpha.max(1e-9)).expect("valid Zipf parameters")
            })
            .collect();
        let lambda_per_us = spec.aggregate_rate_rps() / 1_000_000.0;
        let one_hit_next = spec.classes.iter().map(|c| c.num_objects).collect();
        Self {
            spec,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            zipfs,
            cum_shares,
            lambda_per_us,
            one_hit_next,
        }
    }

    /// The spec this generator draws from.
    pub fn spec(&self) -> &MixSpec {
        &self.spec
    }

    /// Generates a trace of exactly `n` requests starting at t = 0.
    pub fn generate(&mut self, n: usize) -> Trace {
        let mut t_us = 0u64;
        let mut requests = Vec::with_capacity(n);
        for _ in 0..n {
            // Exponential inter-arrival at the aggregate rate.
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let gap = (-u.ln() / self.lambda_per_us).round() as u64;
            t_us = t_us.saturating_add(gap.max(1));

            let class_idx = self.draw_class();
            let class = &self.spec.classes[class_idx];
            // With probability `one_hit_fraction`, mint a brand-new object
            // (one-hit wonder); otherwise draw from the Zipf catalog.
            // Zipf gives rank in [1, num_objects]; permute deterministically
            // per class so popularity order differs between classes/seeds.
            let rank = if class.one_hit_fraction > 0.0 && self.rng.gen::<f64>() < class.one_hit_fraction
            {
                let r = self.one_hit_next[class_idx];
                self.one_hit_next[class_idx] += 1;
                r
            } else {
                let raw_rank = self.rng.sample(self.zipfs[class_idx]) as u64 - 1;
                permute_rank(raw_rank, class.num_objects, self.seed ^ class_idx as u64)
            };
            let id = object_id(class_idx, rank);
            let size = class.object_size(rank, self.seed ^ (class_idx as u64) << 32);
            requests.push(Request::new(id, size, t_us));
        }
        Trace::from_sorted(requests)
    }

    fn draw_class(&mut self) -> usize {
        let u: f64 = self.rng.gen::<f64>();
        self.cum_shares.iter().position(|&c| u < c).unwrap_or(self.cum_shares.len() - 1)
    }
}

/// A cheap measure-preserving permutation of `[0, n)` (two rounds of a
/// multiply-xor hash reduced modulo n with linear probing offset). It does not
/// need to be a true bijection for trace realism — collisions merely merge two
/// popularity ranks — but it must be deterministic.
fn permute_rank(rank: u64, n: u64, seed: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let mut x = rank.wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::TrafficClass;
    use std::collections::HashMap;

    #[test]
    fn generates_requested_length_and_ordering() {
        let spec = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5);
        let t = TraceGenerator::new(spec, 1).generate(5000);
        assert_eq!(t.len(), 5000);
        assert!(t.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.3);
        let a = TraceGenerator::new(spec.clone(), 9).generate(2000);
        let b = TraceGenerator::new(spec, 9).generate(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = MixSpec::single(TrafficClass::image());
        let a = TraceGenerator::new(spec.clone(), 1).generate(1000);
        let b = TraceGenerator::new(spec, 2).generate(1000);
        assert_ne!(a, b);
    }

    #[test]
    fn share_zero_excludes_class() {
        let spec = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.0);
        let t = TraceGenerator::new(spec, 3).generate(3000);
        // All IDs must belong to class 1 (download).
        assert!(t.iter().all(|r| split_id(r.id).0 == 1));
    }

    #[test]
    fn mix_ratio_roughly_respected() {
        let spec = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.7);
        let t = TraceGenerator::new(spec, 4).generate(20_000);
        let image_reqs = t.iter().filter(|r| split_id(r.id).0 == 0).count();
        let frac = image_reqs as f64 / t.len() as f64;
        assert!((frac - 0.7).abs() < 0.02, "image share {frac} too far from 0.7");
    }

    #[test]
    fn object_sizes_consistent_within_trace() {
        let spec = MixSpec::single(TrafficClass::download());
        let t = TraceGenerator::new(spec, 5).generate(20_000);
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            let prev = seen.insert(r.id, r.size);
            if let Some(p) = prev {
                assert_eq!(p, r.size, "object {} changed size", r.id);
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let spec = MixSpec::single(TrafficClass::download());
        let t = TraceGenerator::new(spec, 6).generate(50_000);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in &t {
            *counts.entry(r.id).or_default() += 1;
        }
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = v.iter().take(10).sum();
        // Zipf(1.05) over 8k objects: top-10 objects should dominate.
        assert!(top10 as f64 / 50_000.0 > 0.15, "top-10 share too small: {top10}");
    }

    #[test]
    fn sweep_endpoints_are_pure() {
        let sweep = MixSpec::sweep(TrafficClass::image(), TrafficClass::download(), 5);
        assert_eq!(sweep.len(), 5);
        assert!((sweep[0].shares[0] - 1.0).abs() < 1e-12);
        assert!(sweep[4].shares[0].abs() < 1e-12);
    }

    #[test]
    fn split_id_roundtrip() {
        let id = object_id(3, 12345);
        assert_eq!(split_id(id), (3, 12345));
    }

    #[test]
    fn aggregate_rate_matches_paper_total() {
        // Image (150 rps) + Download (115.9 rps) at any split stays within
        // the two class rates; at 50:50 it is their average.
        let spec = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5);
        let r = spec.aggregate_rate_rps();
        assert!((r - (150.0 + 115.9) / 2.0).abs() < 1e-9);
    }
}
