#![warn(missing_docs)]

//! # darwin-trace
//!
//! Synthetic CDN request-trace generation and manipulation for the Darwin
//! reproduction.
//!
//! The Darwin paper evaluates on traces derived from a production CDN server
//! and on synthetic mixes produced by Tragen (Sabnis & Sitaraman, IMC'21).
//! This crate is the stand-in for both: it models *traffic classes* (sets of
//! domains with similar access characteristics, e.g. `Image` and `Download`)
//! with per-class popularity (Zipf), object-size (clamped log-normal) and
//! arrival (Poisson) models, and composes them into mixed traces at arbitrary
//! request-rate ratios — the corpus-construction procedure of the paper's §6
//! ("we generate synthetic traces based on the Download and Image traces with
//! various mixed ratios using Tragen").
//!
//! The crate also provides the trace *scaling* transformation used for the
//! 200 MB / 500 MB cache studies (multiply object sizes by k and perturb each
//! by ±20 %), trace statistics, and (de)serialization.
//!
//! ```
//! use darwin_trace::{TrafficClass, MixSpec, TraceGenerator};
//!
//! // 70 % Image / 30 % Download mix, 10k requests.
//! let spec = MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.7);
//! let trace = TraceGenerator::new(spec, 42).generate(10_000);
//! assert_eq!(trace.len(), 10_000);
//! ```

pub mod class;
pub mod dynamics;
pub mod generator;
pub mod io;
pub mod request;
pub mod scale;
pub mod stats;
pub mod window;

pub use class::{ClassKind, SizeModel, TrafficClass};
pub use dynamics::{
    compress_window, drift_popularity, flash_crowd, modulate_rate, popularity_inversion,
};
pub use generator::{MixSpec, TraceGenerator};
pub use io::{read_trace, read_trace_file, write_trace, write_trace_file, TraceReadError};
pub use request::{ObjectId, Request, Trace};
pub use scale::{concat_traces, scale_trace};
pub use stats::TraceStats;
pub use window::Windows;
