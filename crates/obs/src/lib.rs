//! Deterministic observability for the Darwin serving fleet.
//!
//! Three pillars, all std-only:
//!
//! * [`Histogram`] — a fixed-size, log-bucketed latency histogram that is
//!   lock-free to record into and whose sparse [`HistogramSnapshot`]s merge
//!   exactly (bucket-wise), so per-shard histograms aggregate into fleet
//!   percentiles without losing information. Quantiles are computed
//!   nearest-rank directly from the buckets with a bounded relative error
//!   of `2^-5` ≈ 3.1% (see [`hist`]).
//! * [`Journal`] — a bounded ring of typed [`Event`]s per shard (worker
//!   deaths, restart verdicts, warm/cold restores, expert switches, drift,
//!   fault injection, checkpoint cuts). Events are stamped with per-shard
//!   *request sequence numbers*, never wall clock, so a seeded run
//!   reproduces its journal bit-for-bit — the property the
//!   journal-determinism gate in `verify.sh` pins.
//! * [`SwitchCostTracker`] — opens a post-switch observation window on
//!   every expert switch and quantifies the hit-ratio dip against the
//!   pre-switch trailing baseline, emitting a [`EventKind::SwitchCost`]
//!   event when the window closes. This is the churn-per-switch telemetry
//!   a switching-aware deployment rule needs.
//!
//! Histograms record wall-clock durations and are therefore *not* part of
//! the determinism contract; the journal and switch-cost events are derived
//! purely from request sequence numbers and integer counters and *are*.

#![warn(missing_docs)]

pub mod hist;
pub mod journal;
pub mod switch;

pub use hist::{Histogram, HistogramSnapshot, LatencySnapshot, NUM_BUCKETS, SUB_BITS};
pub use journal::{
    decode_fleet_events, encode_fleet_events, Event, EventKind, Journal, JournalSnapshot,
    DEFAULT_JOURNAL_CAPACITY,
};
pub use switch::{SwitchCostConfig, SwitchCostTracker};

/// One shard's observability state: the three serve-path latency histograms
/// plus the shard's event journal. Owned by the shard's metrics cell so it
/// survives worker restarts (histograms and journal accumulate across
/// incarnations, like every other per-shard counter).
#[derive(Debug)]
pub struct ShardObs {
    /// Request service time (the `process` call itself).
    pub serve: Histogram,
    /// Producer-side blocking time on a full shard queue.
    pub queue_wait: Histogram,
    /// Worker pause while building and storing a checkpoint.
    pub ckpt_pause: Histogram,
    /// The shard's bounded event journal.
    pub journal: Journal,
}

impl Default for ShardObs {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl ShardObs {
    /// Fresh observability state with the given journal capacity.
    pub fn new(journal_capacity: usize) -> Self {
        Self {
            serve: Histogram::new(),
            queue_wait: Histogram::new(),
            ckpt_pause: Histogram::new(),
            journal: Journal::new(journal_capacity),
        }
    }

    /// Snapshots the three histograms together.
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            serve: self.serve.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            ckpt_pause: self.ckpt_pause.snapshot(),
        }
    }
}
