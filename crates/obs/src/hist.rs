//! Log-bucketed latency histograms with exact bucket-wise merging.
//!
//! ## Bucket scheme
//!
//! Values are nanoseconds. The first 64 buckets are exact (one per value);
//! above that each power-of-two octave is split into `2^SUB_BITS = 32`
//! sub-buckets, so a recorded value lands in a bucket whose lower bound is
//! within a factor of `1 + 2^-5` of the value — a bounded relative error
//! of ≈ 3.1%. With 64-bit values that is `(63 - 4) · 32 = 1888` log-linear
//! buckets plus the 32 exact ones: [`NUM_BUCKETS`] = 1920 total, ~15 KiB
//! of `AtomicU64` per histogram. Recording is a handful of relaxed atomic
//! adds — no locks, no allocation — so it can sit on the shard serve path.
//!
//! ## Snapshots merge exactly
//!
//! [`HistogramSnapshot`] is the sparse (index, count) form. Because the
//! bucket boundaries are fixed, merging two snapshots is exact bucket-wise
//! addition: quantiles of the merged snapshot equal quantiles of a
//! histogram that had recorded both streams. That is what lets per-shard
//! histograms aggregate into fleet-wide percentiles in `FleetMetrics`
//! without shipping raw samples.
//!
//! Quantiles are nearest-rank over the bucket counts and report the bucket
//! *lower bound*, so a reported quantile never exceeds the true sample and
//! undershoots it by at most the 3.1% bucket width.

use darwin_ckpt::{open, seal, CkptError, Dec, Enc};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;

const SUB_BUCKETS: u32 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` nanosecond range.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Frame magic for a sealed [`HistogramSnapshot`] ("OBSH").
pub const HIST_MAGIC: u32 = 0x4F42_5348;
/// Frame version for sealed histogram snapshots.
pub const HIST_VERSION: u16 = 1;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> u32 {
    if v < u64::from(SUB_BUCKETS) {
        v as u32
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & u64::from(SUB_BUCKETS - 1)) as u32;
        (exp - (SUB_BITS - 1)) * SUB_BUCKETS + sub
    }
}

/// The lower bound (smallest value) of bucket `index` — the value quantile
/// queries report for samples in that bucket.
#[inline]
pub fn bucket_floor(index: u32) -> u64 {
    if index < 2 * SUB_BUCKETS {
        u64::from(index)
    } else {
        let exp = index / SUB_BUCKETS + (SUB_BITS - 1);
        let sub = index % SUB_BUCKETS;
        u64::from(SUB_BUCKETS + sub) << (exp - SUB_BITS)
    }
}

/// A lock-free log-bucketed histogram of nanosecond values.
///
/// Writers call [`record`](Histogram::record) concurrently with readers
/// taking [`snapshot`](Histogram::snapshot)s; all updates are relaxed
/// atomics, so a snapshot is a consistent-enough view for telemetry (it
/// may miss in-flight records but never tears a counter).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = bucket_index(v) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration, saturating to `u64::MAX` nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// A sparse copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut total = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
                total += c;
            }
        }
        // Derive count from the buckets themselves so the snapshot is
        // internally consistent even if a record() is mid-flight.
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The sparse, mergeable, serializable form of a [`Histogram`].
///
/// `buckets` holds `(bucket_index, count)` pairs sorted by index with no
/// zero counts; `count` always equals the sum of the bucket counts.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total recorded values (= sum of bucket counts).
    pub count: u64,
    /// Sum of recorded values, in nanoseconds (wrapping on overflow).
    pub sum: u64,
    /// Largest recorded value, in nanoseconds.
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, sorted by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Folds `other` into `self` bucket-wise. Exact: quantiles of the
    /// result equal quantiles of one histogram fed both streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.is_empty() {
            self.count += other.count;
            self.sum = self.sum.wrapping_add(other.sum);
            self.max = self.max.max(other.max);
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(ai, ac)), Some(&(bi, bc))) => {
                    if ai == bi {
                        merged.push((ai, ac + bc));
                        i += 1;
                        j += 1;
                    } else if ai < bi {
                        merged.push((ai, ac));
                        i += 1;
                    } else {
                        merged.push((bi, bc));
                        j += 1;
                    }
                }
                (Some(&a), None) => {
                    merged.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (nearest-rank over bucket counts), reported as
    /// the lower bound of the bucket holding that rank; zero when empty.
    ///
    /// # Panics
    ///
    /// If `p` is not a number in `[0, 100]`.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        bucket_floor(self.buckets.last().map(|&(i, _)| i).unwrap_or(0))
    }

    /// Mean recorded value in nanoseconds; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Appends the snapshot to an encoder.
    pub fn encode(&self, e: &mut Enc) {
        e.u64(self.count);
        e.u64(self.sum);
        e.u64(self.max);
        e.seq(&self.buckets, |e, &(i, c)| {
            e.u32(i);
            e.u64(c);
        });
    }

    /// Decodes a snapshot, validating the sparse-bucket invariants
    /// (indices strictly increasing and in range, counts non-zero, bucket
    /// counts summing to `count`).
    pub fn decode(d: &mut Dec) -> Result<Self, CkptError> {
        let count = d.u64()?;
        let sum = d.u64()?;
        let max = d.u64()?;
        let buckets = d.seq(|d| {
            let i = d.u32()?;
            let c = d.u64()?;
            Ok((i, c))
        })?;
        let mut total = 0u64;
        let mut prev: Option<u32> = None;
        for &(i, c) in &buckets {
            if i as usize >= NUM_BUCKETS {
                return Err(CkptError::Malformed(format!("bucket index {i} out of range")));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(CkptError::Malformed("bucket indices not increasing".into()));
            }
            if c == 0 {
                return Err(CkptError::Malformed("zero bucket count".into()));
            }
            prev = Some(i);
            total = total
                .checked_add(c)
                .ok_or_else(|| CkptError::Malformed("bucket counts overflow".into()))?;
        }
        if total != count {
            return Err(CkptError::Malformed(format!(
                "bucket counts sum to {total}, header says {count}"
            )));
        }
        Ok(Self { count, sum, max, buckets })
    }

    /// Seals the snapshot into a CRC-guarded frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        seal(HIST_MAGIC, HIST_VERSION, &e.into_bytes())
    }

    /// Opens and decodes a sealed frame produced by
    /// [`to_frame`](HistogramSnapshot::to_frame).
    pub fn from_frame(frame: &[u8]) -> Result<Self, CkptError> {
        let body = open(frame, HIST_MAGIC, HIST_VERSION)?;
        let mut d = Dec::new(body);
        let snap = Self::decode(&mut d)?;
        d.finish()?;
        Ok(snap)
    }
}

/// The three per-shard latency histograms the fleet records.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Serve-path latency: one `CacheServer::process` call per request.
    pub serve: HistogramSnapshot,
    /// Producer-side queue wait: time a delivery blocked on a full shard
    /// queue (only under `Backpressure::Block`).
    pub queue_wait: HistogramSnapshot,
    /// Checkpoint pause: serve-loop stall while a `ShardCheckpoint` frame
    /// is built and stored.
    pub ckpt_pause: HistogramSnapshot,
}

impl LatencySnapshot {
    /// Folds `other` into `self`, histogram by histogram.
    pub fn merge(&mut self, other: &LatencySnapshot) {
        self.serve.merge(&other.serve);
        self.queue_wait.merge(&other.queue_wait);
        self.ckpt_pause.merge(&other.ckpt_pause);
    }

    /// Appends all three histograms to an encoder.
    pub fn encode(&self, e: &mut Enc) {
        self.serve.encode(e);
        self.queue_wait.encode(e);
        self.ckpt_pause.encode(e);
    }

    /// Decodes what [`encode`](LatencySnapshot::encode) wrote.
    pub fn decode(d: &mut Dec) -> Result<Self, CkptError> {
        Ok(Self {
            serve: HistogramSnapshot::decode(d)?,
            queue_wait: HistogramSnapshot::decode(d)?,
            ckpt_pause: HistogramSnapshot::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_64() {
        for v in 0..64u64 {
            assert_eq!(bucket_index(v), v as u32);
            assert_eq!(bucket_floor(v as u32), v);
        }
    }

    #[test]
    fn floors_are_monotone_and_within_error_bound() {
        let mut prev = None;
        for idx in 0..NUM_BUCKETS as u32 {
            let floor = bucket_floor(idx);
            if let Some(p) = prev {
                assert!(floor > p, "bucket {idx} floor {floor} not above {p}");
            }
            prev = Some(floor);
            // The floor must map back to its own bucket.
            assert_eq!(bucket_index(floor), idx, "floor {floor} of bucket {idx}");
        }
        // Relative error: the next bucket's floor is within 1/32 above.
        for idx in 64..NUM_BUCKETS as u32 - 1 {
            let lo = bucket_floor(idx);
            let hi = bucket_floor(idx + 1);
            assert!(hi - lo <= lo / 32 + 1, "bucket {idx}: width {} vs floor {lo}", hi - lo);
        }
    }

    #[test]
    fn extremes_land_in_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX) as usize, NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_nearest_rank_on_exact_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(50.0), 2, "nearest-rank p50 of [1,2,3,4]");
        assert_eq!(s.quantile(75.0), 3);
        assert_eq!(s.quantile(99.0), 4);
        assert_eq!(s.quantile(100.0), 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.sum, 10);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(99.0), 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn quantile_rejects_out_of_range() {
        let _ = HistogramSnapshot::default().quantile(100.5);
    }

    #[test]
    fn large_values_within_bucket_error() {
        let h = Histogram::new();
        let two_ms = 2_000_000u64;
        h.record(two_ms);
        let got = h.snapshot().quantile(50.0);
        assert!(got <= two_ms, "bucket floor never exceeds the sample");
        assert!(two_ms - got <= two_ms / 32, "reconstruction {got} off by more than 1/32 from {two_ms}");
    }

    #[test]
    fn merge_matches_single_histogram() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..1000u64 {
            let x = v * v % 7_777_777;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn frame_roundtrip_and_rejects_damage() {
        let h = Histogram::new();
        for v in [0u64, 5, 500, 50_000, 5_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let frame = snap.to_frame();
        assert_eq!(HistogramSnapshot::from_frame(&frame).unwrap(), snap);
        for keep in 0..frame.len() {
            assert!(HistogramSnapshot::from_frame(&frame[..keep]).is_err());
        }
    }

    #[test]
    fn decode_rejects_inconsistent_totals() {
        let mut e = Enc::new();
        e.u64(3); // count claims 3
        e.u64(0);
        e.u64(0);
        e.seq(&[(1u32, 2u64)], |e, &(i, c)| {
            e.u32(i);
            e.u64(c);
        });
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(HistogramSnapshot::decode(&mut d), Err(CkptError::Malformed(_))));
    }

    #[test]
    fn serde_roundtrip() {
        let h = Histogram::new();
        for v in [12u64, 9_000, 123_456_789] {
            h.record(v);
        }
        let snap = LatencySnapshot { serve: h.snapshot(), ..LatencySnapshot::default() };
        let json = serde_json::to_string(&snap).unwrap();
        let back: LatencySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
