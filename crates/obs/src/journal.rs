//! The structured per-shard event journal.
//!
//! Every notable control-plane decision in the fleet — worker deaths,
//! restart verdicts with their budget state, warm-vs-cold restores with the
//! checkpoint candidate chosen, expert switches with the bandit's round
//! index and posterior summary, drift detections, injected faults,
//! checkpoint cuts, switching-cost windows, and replication traffic
//! (standby seeds, delta applies, failover promotions, standby losses) —
//! lands in a bounded ring of typed [`Event`]s.
//!
//! ## Determinism
//!
//! Events carry the shard's *request sequence number* at the moment of the
//! event, never a wall-clock timestamp. Faults are scripted on sequence
//! numbers ([`FaultPlan`](../../darwin_shard/fault) semantics), checkpoints
//! cut at sequence boundaries, and controller decisions are functions of
//! the request stream — so two runs with the same seed and fault plan
//! produce *byte-identical* journal frames. `verify.sh` gates on exactly
//! that at 1, 2 and 8 shards.
//!
//! ## Bounded memory
//!
//! The ring keeps the most recent [`DEFAULT_JOURNAL_CAPACITY`] events;
//! older events are dropped oldest-first and counted exactly in
//! [`JournalSnapshot::dropped`]. Events are rare (per decision, not per
//! request), so a mutex-guarded ring off the hot path is plenty.

use darwin_ckpt::{open, seal, CkptError, Dec, Enc};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Events kept per shard before the oldest is dropped.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Frame magic for a sealed [`JournalSnapshot`] ("OBSJ").
pub const JOURNAL_MAGIC: u32 = 0x4F42_534A;
/// Frame magic for a sealed fleet-wide event dump ("OBSE").
pub const FLEET_EVENTS_MAGIC: u32 = 0x4F42_5345;
/// Frame version for journal and fleet-event frames.
pub const JOURNAL_VERSION: u16 = 1;

/// What happened. Payloads are integers and deterministic strings only —
/// no wall clock anywhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// The shard's worker thread died (panic fault or poisoned state).
    WorkerDeath,
    /// The supervisor granted a respawn; `restarts_used` counts this one.
    RestartGranted {
        /// Restarts consumed within the budget window, including this one.
        restarts_used: u32,
        /// The budget's maximum restarts per window.
        budget_max: u32,
    },
    /// The supervisor refused a respawn and buried the shard.
    RestartDenied {
        /// Restarts already consumed within the budget window.
        restarts_used: u32,
        /// The budget's maximum restarts per window.
        budget_max: u32,
    },
    /// A respawned worker restored from a checkpoint.
    RestoreWarm {
        /// Which candidate validated: 0 = active buffer, 1 = previous
        /// buffer, 2 = disk spill.
        candidate: u8,
        /// The restored checkpoint's request sequence number.
        checkpoint_seq: u64,
    },
    /// A respawned worker found no usable checkpoint and started cold.
    RestoreCold,
    /// The controller deployed a different expert.
    ExpertSwitch {
        /// The previously deployed expert, if any.
        from: Option<u32>,
        /// The newly deployed expert.
        to: u32,
        /// Identification rounds completed this epoch when the switch fired.
        round: u32,
        /// Compact posterior summary (per-arm means) at the switch.
        posterior: String,
    },
    /// The drift detector fired and the controller restarted identification.
    DriftDetected {
        /// Drift-triggered restarts so far, including this one.
        restarts: u32,
    },
    /// A scripted fault fired at this sequence number.
    FaultInjected {
        /// Stable label of the fault kind (e.g. `panic`, `delay(100)`).
        fault: String,
    },
    /// A checkpoint frame was cut and stored.
    CheckpointCut {
        /// The checkpoint's request sequence number.
        checkpoint_seq: u64,
    },
    /// A post-switch observation window closed; the dip is the trailing
    /// hit ratio's worst drop below the pre-switch baseline.
    SwitchCost {
        /// The expert deployed by the switch that opened the window.
        expert: u32,
        /// Trailing hit ratio at the switch.
        baseline: f64,
        /// Worst `baseline − trailing ratio` observed in the window (≥ 0).
        dip: f64,
        /// Requests until the trailing ratio regained the baseline;
        /// `None` if it never did within the window.
        recovery: Option<u64>,
        /// Requests the window observed.
        window: u64,
    },
    /// A rebalance began draining this shard: its queue empties, then the
    /// worker cuts a final handoff checkpoint at the drain boundary.
    DrainStart {
        /// Shard count the fleet is resizing to.
        target_shards: u32,
    },
    /// The draining worker cut its final handoff checkpoint at the exact
    /// end-of-stream sequence boundary.
    HandoffCut {
        /// The handoff checkpoint's request sequence number.
        checkpoint_seq: u64,
    },
    /// A shard restored state shipped across a generation or process
    /// boundary (resize handoff or `--checkpoint-dir` warm boot).
    HandoffRestore {
        /// Request sequence number of the restored checkpoint (in its
        /// source incarnation's numbering).
        checkpoint_seq: u64,
        /// `true` for a cross-process warm boot from a spill file, `false`
        /// for an in-process resize handoff.
        warm_boot: bool,
    },
    /// A new fleet generation took over serving from a retired one.
    Cutover {
        /// The router generation now serving.
        generation: u32,
    },
    /// The consistent-hash ring was rebuilt for a new shard count.
    RingResize {
        /// Shard count before the resize.
        from_shards: u32,
        /// Shard count after the resize.
        to_shards: u32,
        /// The router generation serving the new ring.
        generation: u32,
    },
    /// The shard's queue depth crossed its shed watermark: producers start
    /// answering this shard's requests `Busy` instead of delivering them.
    ShedStart {
        /// Queue depth observed at the crossing.
        depth: u64,
    },
    /// The shard's queue drained below the recovery threshold (half the
    /// watermark) and producers resumed delivering.
    ShedStop {
        /// Requests shed at this shard so far (cumulative).
        shed: u64,
    },
    /// A scripted network fault fired on a gateway connection.
    NetFault {
        /// Gateway connection id the fault hit.
        conn: u64,
        /// Per-connection frame sequence number the fault was keyed to.
        frame: u64,
        /// Stable label of the fault kind (e.g. `reset`, `stall(1000)`).
        fault: String,
    },
    /// The gateway evicted a connection whose client stopped reading
    /// replies (the write-stall budget expired).
    SlowClientClosed {
        /// Gateway connection id that was evicted.
        conn: u64,
    },
    /// A connection first exceeded its fair-share token bucket and had
    /// requests answered `Busy` (journaled once per connection).
    ConnThrottled {
        /// Gateway connection id that was throttled.
        conn: u64,
    },
    /// The shard's hot standby was (re)seeded with a full checkpoint image.
    ReplicaSeeded {
        /// Request sequence number of the seeding checkpoint cut.
        checkpoint_seq: u64,
    },
    /// The standby applied a delta cut; its lag behind the primary closed.
    ReplicaLag {
        /// Request sequence number of the cut just applied.
        checkpoint_seq: u64,
        /// Requests the standby was behind before this apply (the gap
        /// between its previous applied boundary and this cut).
        lag: u64,
    },
    /// The restart budget was spent and the hot standby was promoted: the
    /// shard resumes from the standby's last applied checkpoint.
    Failover {
        /// Request sequence number of the checkpoint the promotion
        /// restored.
        checkpoint_seq: u64,
        /// Restarts already consumed within the budget window.
        restarts_used: u32,
        /// The budget's maximum restarts per window.
        budget_max: u32,
    },
    /// The standby itself failed validation (corrupt or stale) and could
    /// not serve a promotion or an apply — detected, never silent.
    StandbyLost {
        /// Request sequence number of the standby's last applied
        /// checkpoint (or the cut whose apply failed).
        checkpoint_seq: u64,
    },
}

impl EventKind {
    fn tag(&self) -> u8 {
        match self {
            EventKind::WorkerDeath => 0,
            EventKind::RestartGranted { .. } => 1,
            EventKind::RestartDenied { .. } => 2,
            EventKind::RestoreWarm { .. } => 3,
            EventKind::RestoreCold => 4,
            EventKind::ExpertSwitch { .. } => 5,
            EventKind::DriftDetected { .. } => 6,
            EventKind::FaultInjected { .. } => 7,
            EventKind::CheckpointCut { .. } => 8,
            EventKind::SwitchCost { .. } => 9,
            EventKind::DrainStart { .. } => 10,
            EventKind::HandoffCut { .. } => 11,
            EventKind::HandoffRestore { .. } => 12,
            EventKind::Cutover { .. } => 13,
            EventKind::RingResize { .. } => 14,
            EventKind::ShedStart { .. } => 15,
            EventKind::ShedStop { .. } => 16,
            EventKind::NetFault { .. } => 17,
            EventKind::SlowClientClosed { .. } => 18,
            EventKind::ConnThrottled { .. } => 19,
            EventKind::ReplicaSeeded { .. } => 20,
            EventKind::ReplicaLag { .. } => 21,
            EventKind::Failover { .. } => 22,
            EventKind::StandbyLost { .. } => 23,
        }
    }
}

/// One journal entry: a typed event stamped with the shard's request
/// sequence number at the moment it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Requests the shard had processed when the event fired.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// A stable single-line rendering, e.g. for dashboards and artifacts.
    pub fn render(&self) -> String {
        let body = match &self.kind {
            EventKind::WorkerDeath => "worker-death".to_string(),
            EventKind::RestartGranted { restarts_used, budget_max } => {
                format!("restart-granted {restarts_used}/{budget_max}")
            }
            EventKind::RestartDenied { restarts_used, budget_max } => {
                format!("restart-denied {restarts_used}/{budget_max}")
            }
            EventKind::RestoreWarm { candidate, checkpoint_seq } => {
                format!("restore-warm candidate={candidate} ckpt_seq={checkpoint_seq}")
            }
            EventKind::RestoreCold => "restore-cold".to_string(),
            EventKind::ExpertSwitch { from, to, round, posterior } => {
                let from = from.map_or("-".to_string(), |f| f.to_string());
                format!("switch {from}->{to} round={round} posterior=[{posterior}]")
            }
            EventKind::DriftDetected { restarts } => format!("drift restarts={restarts}"),
            EventKind::FaultInjected { fault } => format!("fault {fault}"),
            EventKind::CheckpointCut { checkpoint_seq } => {
                format!("ckpt-cut seq={checkpoint_seq}")
            }
            EventKind::SwitchCost { expert, baseline, dip, recovery, window } => {
                let rec = recovery.map_or("none".to_string(), |r| r.to_string());
                format!(
                    "switch-cost expert={expert} baseline={baseline:.4} dip={dip:.4} \
                     recovery={rec}/{window}"
                )
            }
            EventKind::DrainStart { target_shards } => {
                format!("drain-start target_shards={target_shards}")
            }
            EventKind::HandoffCut { checkpoint_seq } => {
                format!("handoff-cut seq={checkpoint_seq}")
            }
            EventKind::HandoffRestore { checkpoint_seq, warm_boot } => {
                let mode = if *warm_boot { "warm-boot" } else { "handoff" };
                format!("handoff-restore ckpt_seq={checkpoint_seq} mode={mode}")
            }
            EventKind::Cutover { generation } => format!("cutover generation={generation}"),
            EventKind::RingResize { from_shards, to_shards, generation } => {
                format!("ring-resize {from_shards}->{to_shards} generation={generation}")
            }
            EventKind::ShedStart { depth } => format!("shed-start depth={depth}"),
            EventKind::ShedStop { shed } => format!("shed-stop shed={shed}"),
            EventKind::NetFault { conn, frame, fault } => {
                format!("net-fault conn={conn} frame={frame} {fault}")
            }
            EventKind::SlowClientClosed { conn } => format!("slow-client-closed conn={conn}"),
            EventKind::ConnThrottled { conn } => format!("conn-throttled conn={conn}"),
            EventKind::ReplicaSeeded { checkpoint_seq } => {
                format!("replica-seeded ckpt_seq={checkpoint_seq}")
            }
            EventKind::ReplicaLag { checkpoint_seq, lag } => {
                format!("replica-lag ckpt_seq={checkpoint_seq} lag={lag}")
            }
            EventKind::Failover { checkpoint_seq, restarts_used, budget_max } => {
                format!("failover ckpt_seq={checkpoint_seq} budget={restarts_used}/{budget_max}")
            }
            EventKind::StandbyLost { checkpoint_seq } => {
                format!("standby-lost ckpt_seq={checkpoint_seq}")
            }
        };
        format!("[{:>10}] {body}", self.seq)
    }

    fn encode(&self, e: &mut Enc) {
        e.u64(self.seq);
        e.u8(self.kind.tag());
        match &self.kind {
            EventKind::WorkerDeath | EventKind::RestoreCold => {}
            EventKind::RestartGranted { restarts_used, budget_max }
            | EventKind::RestartDenied { restarts_used, budget_max } => {
                e.u32(*restarts_used);
                e.u32(*budget_max);
            }
            EventKind::RestoreWarm { candidate, checkpoint_seq } => {
                e.u8(*candidate);
                e.u64(*checkpoint_seq);
            }
            EventKind::ExpertSwitch { from, to, round, posterior } => {
                e.opt(from.as_ref(), |e, f| e.u32(*f));
                e.u32(*to);
                e.u32(*round);
                e.str(posterior);
            }
            EventKind::DriftDetected { restarts } => e.u32(*restarts),
            EventKind::FaultInjected { fault } => e.str(fault),
            EventKind::CheckpointCut { checkpoint_seq } => e.u64(*checkpoint_seq),
            EventKind::SwitchCost { expert, baseline, dip, recovery, window } => {
                e.u32(*expert);
                e.f64(*baseline);
                e.f64(*dip);
                e.opt(recovery.as_ref(), |e, r| e.u64(*r));
                e.u64(*window);
            }
            EventKind::DrainStart { target_shards } => e.u32(*target_shards),
            EventKind::HandoffCut { checkpoint_seq } => e.u64(*checkpoint_seq),
            EventKind::HandoffRestore { checkpoint_seq, warm_boot } => {
                e.u64(*checkpoint_seq);
                e.bool(*warm_boot);
            }
            EventKind::Cutover { generation } => e.u32(*generation),
            EventKind::RingResize { from_shards, to_shards, generation } => {
                e.u32(*from_shards);
                e.u32(*to_shards);
                e.u32(*generation);
            }
            EventKind::ShedStart { depth } => e.u64(*depth),
            EventKind::ShedStop { shed } => e.u64(*shed),
            EventKind::NetFault { conn, frame, fault } => {
                e.u64(*conn);
                e.u64(*frame);
                e.str(fault);
            }
            EventKind::SlowClientClosed { conn } => e.u64(*conn),
            EventKind::ConnThrottled { conn } => e.u64(*conn),
            EventKind::ReplicaSeeded { checkpoint_seq } => e.u64(*checkpoint_seq),
            EventKind::ReplicaLag { checkpoint_seq, lag } => {
                e.u64(*checkpoint_seq);
                e.u64(*lag);
            }
            EventKind::Failover { checkpoint_seq, restarts_used, budget_max } => {
                e.u64(*checkpoint_seq);
                e.u32(*restarts_used);
                e.u32(*budget_max);
            }
            EventKind::StandbyLost { checkpoint_seq } => e.u64(*checkpoint_seq),
        }
    }

    fn decode(d: &mut Dec) -> Result<Self, CkptError> {
        let seq = d.u64()?;
        let kind = match d.u8()? {
            0 => EventKind::WorkerDeath,
            1 => EventKind::RestartGranted { restarts_used: d.u32()?, budget_max: d.u32()? },
            2 => EventKind::RestartDenied { restarts_used: d.u32()?, budget_max: d.u32()? },
            3 => EventKind::RestoreWarm { candidate: d.u8()?, checkpoint_seq: d.u64()? },
            4 => EventKind::RestoreCold,
            5 => EventKind::ExpertSwitch {
                from: d.opt(|d| d.u32())?,
                to: d.u32()?,
                round: d.u32()?,
                posterior: d.str()?.to_string(),
            },
            6 => EventKind::DriftDetected { restarts: d.u32()? },
            7 => EventKind::FaultInjected { fault: d.str()?.to_string() },
            8 => EventKind::CheckpointCut { checkpoint_seq: d.u64()? },
            9 => EventKind::SwitchCost {
                expert: d.u32()?,
                baseline: d.f64()?,
                dip: d.f64()?,
                recovery: d.opt(|d| d.u64())?,
                window: d.u64()?,
            },
            10 => EventKind::DrainStart { target_shards: d.u32()? },
            11 => EventKind::HandoffCut { checkpoint_seq: d.u64()? },
            12 => EventKind::HandoffRestore { checkpoint_seq: d.u64()?, warm_boot: d.bool()? },
            13 => EventKind::Cutover { generation: d.u32()? },
            14 => EventKind::RingResize {
                from_shards: d.u32()?,
                to_shards: d.u32()?,
                generation: d.u32()?,
            },
            15 => EventKind::ShedStart { depth: d.u64()? },
            16 => EventKind::ShedStop { shed: d.u64()? },
            17 => EventKind::NetFault { conn: d.u64()?, frame: d.u64()?, fault: d.str()?.to_string() },
            18 => EventKind::SlowClientClosed { conn: d.u64()? },
            19 => EventKind::ConnThrottled { conn: d.u64()? },
            20 => EventKind::ReplicaSeeded { checkpoint_seq: d.u64()? },
            21 => EventKind::ReplicaLag { checkpoint_seq: d.u64()?, lag: d.u64()? },
            22 => EventKind::Failover {
                checkpoint_seq: d.u64()?,
                restarts_used: d.u32()?,
                budget_max: d.u32()?,
            },
            23 => EventKind::StandbyLost { checkpoint_seq: d.u64()? },
            t => return Err(CkptError::Malformed(format!("unknown event tag {t}"))),
        };
        Ok(Self { seq, kind })
    }
}

/// A copy of a journal's contents: the retained events in arrival order
/// plus the exact count of events dropped by the ring bound.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JournalSnapshot {
    /// Events the ring had to drop (oldest-first) to stay bounded.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

impl JournalSnapshot {
    /// Appends the snapshot to an encoder.
    pub fn encode(&self, e: &mut Enc) {
        e.u64(self.dropped);
        e.seq(&self.events, |e, ev| ev.encode(e));
    }

    /// Decodes what [`encode`](JournalSnapshot::encode) wrote.
    pub fn decode(d: &mut Dec) -> Result<Self, CkptError> {
        Ok(Self { dropped: d.u64()?, events: d.seq(Event::decode)? })
    }

    /// Seals the snapshot into a CRC-guarded frame. Byte-identical
    /// snapshots seal to byte-identical frames — the determinism gate's
    /// comparison unit.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        seal(JOURNAL_MAGIC, JOURNAL_VERSION, &e.into_bytes())
    }

    /// Opens and decodes a sealed frame produced by
    /// [`to_frame`](JournalSnapshot::to_frame).
    pub fn from_frame(frame: &[u8]) -> Result<Self, CkptError> {
        let body = open(frame, JOURNAL_MAGIC, JOURNAL_VERSION)?;
        let mut d = Dec::new(body);
        let snap = Self::decode(&mut d)?;
        d.finish()?;
        Ok(snap)
    }
}

/// Seals every shard's journal into one fleet-wide frame (the gateway
/// `EVENTS` reply body). Shards must be pre-sorted by id for determinism.
pub fn encode_fleet_events(shards: &[(u32, JournalSnapshot)]) -> Vec<u8> {
    let mut e = Enc::new();
    e.seq(shards, |e, (shard, snap)| {
        e.u32(*shard);
        snap.encode(e);
    });
    seal(FLEET_EVENTS_MAGIC, JOURNAL_VERSION, &e.into_bytes())
}

/// Decodes a frame produced by [`encode_fleet_events`].
pub fn decode_fleet_events(frame: &[u8]) -> Result<Vec<(u32, JournalSnapshot)>, CkptError> {
    let body = open(frame, FLEET_EVENTS_MAGIC, JOURNAL_VERSION)?;
    let mut d = Dec::new(body);
    let shards = d.seq(|d| Ok((d.u32()?, JournalSnapshot::decode(d)?)))?;
    d.finish()?;
    Ok(shards)
}

/// A bounded, thread-safe ring of [`Event`]s.
///
/// Recording locks a mutex — events are per *decision* (restart, switch,
/// checkpoint), not per request, so this is far off the serve hot path.
#[derive(Debug)]
pub struct Journal {
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
    capacity: usize,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// A journal retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self { ring: Mutex::new(VecDeque::new()), dropped: AtomicU64::new(0), capacity: capacity.max(1) }
    }

    /// Appends an event stamped with request sequence number `seq`,
    /// dropping the oldest retained event if the ring is full.
    pub fn record(&self, seq: u64, kind: EventKind) {
        let mut ring = self.ring.lock().expect("journal poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event { seq, kind });
    }

    /// Events dropped so far by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A non-destructive copy of the retained events and drop count.
    pub fn snapshot(&self) -> JournalSnapshot {
        let ring = self.ring.lock().expect("journal poisoned");
        JournalSnapshot {
            dropped: self.dropped.load(Ordering::Relaxed),
            events: ring.iter().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::WorkerDeath,
            EventKind::RestartGranted { restarts_used: 1, budget_max: 3 },
            EventKind::RestartDenied { restarts_used: 3, budget_max: 3 },
            EventKind::RestoreWarm { candidate: 2, checkpoint_seq: 4000 },
            EventKind::RestoreCold,
            EventKind::ExpertSwitch {
                from: Some(2),
                to: 0,
                round: 7,
                posterior: "0.41 0.38 0.55 0.12".into(),
            },
            EventKind::ExpertSwitch { from: None, to: 1, round: 0, posterior: String::new() },
            EventKind::DriftDetected { restarts: 1 },
            EventKind::FaultInjected { fault: "delay(100)".into() },
            EventKind::CheckpointCut { checkpoint_seq: 2000 },
            EventKind::SwitchCost {
                expert: 1,
                baseline: 0.5125,
                dip: 0.031,
                recovery: Some(420),
                window: 4096,
            },
            EventKind::SwitchCost { expert: 0, baseline: 0.25, dip: 0.25, recovery: None, window: 4096 },
            EventKind::DrainStart { target_shards: 8 },
            EventKind::HandoffCut { checkpoint_seq: 6000 },
            EventKind::HandoffRestore { checkpoint_seq: 6000, warm_boot: true },
            EventKind::HandoffRestore { checkpoint_seq: 6000, warm_boot: false },
            EventKind::Cutover { generation: 2 },
            EventKind::RingResize { from_shards: 4, to_shards: 8, generation: 2 },
            EventKind::ShedStart { depth: 8192 },
            EventKind::ShedStop { shed: 1311 },
            EventKind::NetFault { conn: 3, frame: 41, fault: "stall(1000)".into() },
            EventKind::SlowClientClosed { conn: 9 },
            EventKind::ConnThrottled { conn: 2 },
            EventKind::ReplicaSeeded { checkpoint_seq: 1000 },
            EventKind::ReplicaLag { checkpoint_seq: 2000, lag: 1000 },
            EventKind::Failover { checkpoint_seq: 3000, restarts_used: 3, budget_max: 3 },
            EventKind::StandbyLost { checkpoint_seq: 3000 },
        ]
    }

    #[test]
    fn every_kind_roundtrips_through_frame_and_json() {
        let j = Journal::new(64);
        for (i, kind) in all_kinds().into_iter().enumerate() {
            j.record(i as u64 * 100, kind);
        }
        let snap = j.snapshot();
        let frame = snap.to_frame();
        assert_eq!(JournalSnapshot::from_frame(&frame).unwrap(), snap);
        let json = serde_json::to_string(&snap).unwrap();
        let back: JournalSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn ring_drops_oldest_and_counts_exactly() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            j.record(i, EventKind::WorkerDeath);
        }
        let snap = j.snapshot();
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events.first().unwrap().seq, 6, "oldest retained");
        assert_eq!(snap.events.last().unwrap().seq, 9);
    }

    #[test]
    fn identical_journals_seal_identically() {
        let build = || {
            let j = Journal::new(8);
            j.record(5, EventKind::FaultInjected { fault: "panic".into() });
            j.record(5, EventKind::WorkerDeath);
            j.record(5, EventKind::RestartGranted { restarts_used: 1, budget_max: 3 });
            j.record(5, EventKind::RestoreWarm { candidate: 0, checkpoint_seq: 4 });
            j.snapshot().to_frame()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn fleet_frame_roundtrips() {
        let j = Journal::new(8);
        j.record(1, EventKind::RestoreCold);
        let shards = vec![(0u32, j.snapshot()), (1u32, JournalSnapshot::default())];
        let frame = encode_fleet_events(&shards);
        assert_eq!(decode_fleet_events(&frame).unwrap(), shards);
        for keep in 0..frame.len() {
            assert!(decode_fleet_events(&frame[..keep]).is_err());
        }
    }

    #[test]
    fn renderings_are_stable() {
        let ev =
            Event { seq: 2000, kind: EventKind::RestoreWarm { candidate: 0, checkpoint_seq: 2000 } };
        assert_eq!(ev.render(), "[      2000] restore-warm candidate=0 ckpt_seq=2000");
        let ev = Event {
            seq: 6000,
            kind: EventKind::RingResize { from_shards: 4, to_shards: 8, generation: 1 },
        };
        assert_eq!(ev.render(), "[      6000] ring-resize 4->8 generation=1");
        let ev = Event {
            seq: 6000,
            kind: EventKind::HandoffRestore { checkpoint_seq: 6000, warm_boot: true },
        };
        assert_eq!(ev.render(), "[      6000] handoff-restore ckpt_seq=6000 mode=warm-boot");
        let ev = Event { seq: 120, kind: EventKind::ShedStart { depth: 8192 } };
        assert_eq!(ev.render(), "[       120] shed-start depth=8192");
        let ev =
            Event { seq: 40, kind: EventKind::NetFault { conn: 1, frame: 40, fault: "reset".into() } };
        assert_eq!(ev.render(), "[        40] net-fault conn=1 frame=40 reset");
        let ev = Event {
            seq: 3000,
            kind: EventKind::Failover { checkpoint_seq: 3000, restarts_used: 3, budget_max: 3 },
        };
        assert_eq!(ev.render(), "[      3000] failover ckpt_seq=3000 budget=3/3");
        let ev = Event { seq: 2000, kind: EventKind::ReplicaLag { checkpoint_seq: 2000, lag: 1000 } };
        assert_eq!(ev.render(), "[      2000] replica-lag ckpt_seq=2000 lag=1000");
        let ev = Event { seq: 1000, kind: EventKind::ReplicaSeeded { checkpoint_seq: 1000 } };
        assert_eq!(ev.render(), "[      1000] replica-seeded ckpt_seq=1000");
        let ev = Event { seq: 3000, kind: EventKind::StandbyLost { checkpoint_seq: 3000 } };
        assert_eq!(ev.render(), "[      3000] standby-lost ckpt_seq=3000");
    }
}
