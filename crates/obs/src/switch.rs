//! Switching-cost accounting: what does an expert switch actually churn?
//!
//! The bandit switches experts "for free", but a real switch perturbs the
//! cache's working set: admission thresholds change, recently admitted
//! objects stop being reinforced, and the hit ratio dips until the cache
//! re-converges. "Online Caching with Optimal Switching Regret" formalizes
//! this cost; before a switching-aware deployment rule can trade it off,
//! it has to be measured.
//!
//! [`SwitchCostTracker`] maintains a trailing hit-ratio window from integer
//! bin counters (deterministic — no wall clock, no floats until the final
//! ratio). On every switch it snapshots the trailing ratio as the
//! *baseline*, then observes a fixed post-switch window: the worst
//! `baseline − trailing` drop is the **dip**, and the first request offset
//! at which the trailing ratio regains the baseline is the **recovery
//! time**. When the window closes (or another switch preempts it) the
//! tracker emits an [`EventKind::SwitchCost`] event for the journal.

use crate::journal::{Event, EventKind};
use std::collections::VecDeque;

/// Shape of the trailing window and post-switch observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchCostConfig {
    /// Requests per trailing-ratio bin.
    pub bin_size: u64,
    /// Completed bins retained; the trailing window spans
    /// `bin_size × bins` requests (plus the partial current bin).
    pub bins: usize,
    /// Requests a post-switch window observes before emitting its event.
    pub window: u64,
}

impl Default for SwitchCostConfig {
    fn default() -> Self {
        Self { bin_size: 512, bins: 8, window: 4096 }
    }
}

struct OpenWindow {
    expert: u32,
    baseline: f64,
    min_ratio: f64,
    recovered_after: Option<u64>,
    seen: u64,
}

/// Tracks hit-ratio churn around expert switches. One per shard, owned by
/// the worker; purely sequential and deterministic in the request stream.
pub struct SwitchCostTracker {
    cfg: SwitchCostConfig,
    done_bins: VecDeque<(u64, u64)>, // (hits, requests) per completed bin
    cur_hits: u64,
    cur_total: u64,
    active: Option<OpenWindow>,
}

impl Default for SwitchCostTracker {
    fn default() -> Self {
        Self::new(SwitchCostConfig::default())
    }
}

impl SwitchCostTracker {
    /// A tracker with the given window shape.
    pub fn new(cfg: SwitchCostConfig) -> Self {
        Self {
            cfg: SwitchCostConfig {
                bin_size: cfg.bin_size.max(1),
                bins: cfg.bins.max(1),
                window: cfg.window.max(1),
            },
            done_bins: VecDeque::new(),
            cur_hits: 0,
            cur_total: 0,
            active: None,
        }
    }

    /// Trailing hit ratio over the retained bins plus the current partial
    /// bin; `None` until the first request.
    pub fn trailing_ratio(&self) -> Option<f64> {
        let (mut hits, mut total) = (self.cur_hits, self.cur_total);
        for &(h, t) in &self.done_bins {
            hits += h;
            total += t;
        }
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Feeds one served request (`hit` = HOC or DC hit). Returns the
    /// [`EventKind::SwitchCost`] event if this request closed an open
    /// post-switch window.
    pub fn observe(&mut self, hit: bool, seq: u64) -> Option<Event> {
        self.cur_total += 1;
        if hit {
            self.cur_hits += 1;
        }
        if self.cur_total >= self.cfg.bin_size {
            self.done_bins.push_back((self.cur_hits, self.cur_total));
            if self.done_bins.len() > self.cfg.bins {
                self.done_bins.pop_front();
            }
            self.cur_hits = 0;
            self.cur_total = 0;
        }
        let ratio = self.trailing_ratio().unwrap_or(0.0);
        let w = self.active.as_mut()?;
        w.seen += 1;
        if ratio < w.min_ratio {
            w.min_ratio = ratio;
        }
        if w.recovered_after.is_none() && ratio >= w.baseline {
            w.recovered_after = Some(w.seen);
        }
        if w.seen >= self.cfg.window {
            return Some(self.close(seq));
        }
        None
    }

    /// Notes an expert switch at sequence number `seq`. If a previous
    /// window was still open it closes early and its event is returned.
    pub fn on_switch(&mut self, seq: u64, expert: u32) -> Option<Event> {
        let preempted = self.active.is_some().then(|| self.close(seq));
        let baseline = self.trailing_ratio().unwrap_or(0.0);
        self.active =
            Some(OpenWindow { expert, baseline, min_ratio: baseline, recovered_after: None, seen: 0 });
        preempted
    }

    /// Closes any open window immediately (end of run), returning its event.
    pub fn finish(&mut self, seq: u64) -> Option<Event> {
        self.active.is_some().then(|| self.close(seq))
    }

    fn close(&mut self, seq: u64) -> Event {
        let w = self.active.take().expect("close without an open window");
        Event {
            seq,
            kind: EventKind::SwitchCost {
                expert: w.expert,
                baseline: w.baseline,
                dip: (w.baseline - w.min_ratio).max(0.0),
                recovery: w.recovered_after,
                window: w.seen,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(t: &mut SwitchCostTracker, hits: &[bool], from_seq: u64) -> Vec<Event> {
        let mut out = Vec::new();
        for (i, &h) in hits.iter().enumerate() {
            if let Some(e) = t.observe(h, from_seq + i as u64 + 1) {
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn dip_and_recovery_are_measured() {
        let mut t = SwitchCostTracker::new(SwitchCostConfig { bin_size: 4, bins: 2, window: 32 });
        // Warm up at 100% hit ratio.
        drive(&mut t, &[true; 16], 0);
        assert_eq!(t.trailing_ratio(), Some(1.0));
        assert!(t.on_switch(16, 3).is_none());
        // Post-switch: 8 misses fill both retained bins (trailing ratio
        // hits 0), then pure hits refill them — the baseline is regained
        // only once the miss bins age out, 8 hit-requests later.
        let mut events = drive(&mut t, &[false; 8], 16);
        events.extend(drive(&mut t, &[true; 24], 24));
        assert_eq!(events.len(), 1, "window of 32 closes exactly once");
        match &events[0].kind {
            EventKind::SwitchCost { expert, baseline, dip, recovery, window } => {
                assert_eq!(*expert, 3);
                assert_eq!(*baseline, 1.0);
                assert_eq!(*dip, 1.0, "both retained bins went all-miss");
                assert_eq!(*recovery, Some(16), "misses age out after 8 more hits");
                assert_eq!(*window, 32);
            }
            other => panic!("expected SwitchCost, got {other:?}"),
        }
        assert_eq!(events[0].seq, 48, "stamped with the closing request's seq");
    }

    #[test]
    fn second_switch_preempts_open_window() {
        let mut t = SwitchCostTracker::new(SwitchCostConfig { bin_size: 4, bins: 2, window: 100 });
        drive(&mut t, &[true; 8], 0);
        assert!(t.on_switch(8, 1).is_none());
        drive(&mut t, &[false; 4], 8);
        let preempted = t.on_switch(12, 2).expect("open window closes early");
        match preempted.kind {
            EventKind::SwitchCost { expert, window, .. } => {
                assert_eq!(expert, 1);
                assert_eq!(window, 4, "only 4 requests observed before preemption");
            }
            other => panic!("expected SwitchCost, got {other:?}"),
        }
        assert!(t.finish(20).is_some(), "the second window closes at finish");
        assert!(t.finish(20).is_none(), "nothing left to close");
    }

    #[test]
    fn no_switch_no_events() {
        let mut t = SwitchCostTracker::default();
        assert!(drive(&mut t, &[true, false, true, false], 0).is_empty());
        assert!(t.finish(4).is_none());
    }

    #[test]
    fn deterministic_in_the_request_stream() {
        let run = || {
            let mut t = SwitchCostTracker::new(SwitchCostConfig { bin_size: 3, bins: 3, window: 16 });
            let mut events = Vec::new();
            for i in 0..200u64 {
                if i == 50 || i == 120 {
                    events.extend(t.on_switch(i, (i / 50) as u32));
                }
                events.extend(t.observe(i % 3 != 0, i + 1));
            }
            events.extend(t.finish(200));
            events
        };
        assert_eq!(run(), run());
    }
}
