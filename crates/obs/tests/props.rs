//! Property tests for the observability primitives: histogram merge laws,
//! codec robustness under damage, and exact journal-ring accounting.

use darwin_obs::{Event, EventKind, Histogram, HistogramSnapshot, Journal, JournalSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// Merging is commutative: a ⊕ b = b ⊕ a.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..10_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..10_000_000_000, 0..200),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
    }

    /// Merging is associative: (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..10_000_000_000, 0..100),
        b in proptest::collection::vec(0u64..10_000_000_000, 0..100),
        c in proptest::collection::vec(0u64..10_000_000_000, 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(merged(&merged(&sa, &sb), &sc), merged(&sa, &merged(&sb, &sc)));
    }

    /// Merging preserves totals exactly and equals one histogram fed both
    /// streams.
    #[test]
    fn merge_is_sum_preserving(
        a in proptest::collection::vec(0u64..10_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..10_000_000_000, 0..200),
    ) {
        let m = merged(&snapshot_of(&a), &snapshot_of(&b));
        prop_assert_eq!(m.count, (a.len() + b.len()) as u64);
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(m, snapshot_of(&all));
    }

    /// Quantiles undershoot the true sample by at most the bucket width.
    #[test]
    fn quantile_within_error_bound(
        mut values in proptest::collection::vec(1u64..10_000_000_000, 1..200),
        p in 0.0f64..100.0,
    ) {
        let snap = snapshot_of(&values);
        values.sort_unstable();
        let rank = ((p / 100.0 * values.len() as f64).ceil() as usize)
            .clamp(1, values.len());
        let exact = values[rank - 1];
        let got = snap.quantile(p);
        prop_assert!(got <= exact, "bucket floor {got} above exact {exact}");
        prop_assert!(
            exact - got <= exact / 32 + 1,
            "quantile {got} under exact {exact} by more than 1/32"
        );
    }

    /// Histogram frames roundtrip bit-exactly.
    #[test]
    fn hist_frame_roundtrips(
        values in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(HistogramSnapshot::from_frame(&snap.to_frame()).unwrap(), snap);
    }

    /// Any truncation of a histogram frame is rejected, never a panic.
    #[test]
    fn hist_frame_truncation_detected(
        values in proptest::collection::vec(0u64..1_000_000, 1..100),
        cut in 0.0f64..1.0,
    ) {
        let frame = snapshot_of(&values).to_frame();
        let keep = ((cut * frame.len() as f64) as usize).min(frame.len() - 1);
        prop_assert!(HistogramSnapshot::from_frame(&frame[..keep]).is_err());
    }

    /// Any single bit flip in a histogram frame is rejected.
    #[test]
    fn hist_frame_bit_flip_detected(
        values in proptest::collection::vec(0u64..1_000_000, 1..100),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let frame = snapshot_of(&values).to_frame();
        let mut bad = frame.clone();
        let byte = ((pos * bad.len() as f64) as usize).min(bad.len() - 1);
        bad[byte] ^= 1 << bit;
        prop_assert!(HistogramSnapshot::from_frame(&bad).is_err());
    }

    /// Decoding arbitrary junk as either frame kind never panics.
    #[test]
    fn frames_never_panic_on_junk(junk in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = HistogramSnapshot::from_frame(&junk);
        let _ = JournalSnapshot::from_frame(&junk);
        let _ = darwin_obs::decode_fleet_events(&junk);
    }

    /// The ring retains exactly the newest `capacity` events and counts
    /// every drop.
    #[test]
    fn journal_wraparound_is_exact(
        capacity in 1usize..64,
        n in 0u64..300,
    ) {
        let j = Journal::new(capacity);
        for seq in 0..n {
            j.record(seq, EventKind::CheckpointCut { checkpoint_seq: seq });
        }
        let snap = j.snapshot();
        let kept = (n as usize).min(capacity);
        prop_assert_eq!(snap.events.len(), kept);
        prop_assert_eq!(snap.dropped, n - kept as u64);
        // The retained events are exactly the newest `kept`, in order.
        let expect: Vec<Event> = (n - kept as u64..n)
            .map(|seq| Event { seq, kind: EventKind::CheckpointCut { checkpoint_seq: seq } })
            .collect();
        prop_assert_eq!(snap.events, expect);
    }

    /// Journal frames roundtrip bit-exactly and truncations are rejected.
    #[test]
    fn journal_frame_roundtrips_and_rejects_truncation(
        seqs in proptest::collection::vec(0u64..1_000_000, 1..50),
        cut in 0.0f64..1.0,
    ) {
        let j = Journal::new(64);
        for &s in &seqs {
            j.record(s, EventKind::FaultInjected { fault: format!("delay({s})") });
        }
        let snap = j.snapshot();
        let frame = snap.to_frame();
        prop_assert_eq!(JournalSnapshot::from_frame(&frame).unwrap(), snap);
        let keep = ((cut * frame.len() as f64) as usize).min(frame.len() - 1);
        prop_assert!(JournalSnapshot::from_frame(&frame[..keep]).is_err());
    }
}
