//! Role-tagged replication envelopes: the frames a primary shard ships to
//! its hot standby.
//!
//! Each periodic checkpoint cut the primary takes is forwarded to the
//! standby as one [`ReplicaFrame`]: the first cut (and every re-seed after
//! a promotion or a detected standby loss) travels as a
//! [`ReplicaPayload::Full`] checkpoint image; every later cut travels as a
//! [`ReplicaPayload::Delta`] — a [`DeltaFrame`] against the frame the
//! standby already holds — so steady-state replication costs O(churn)
//! bytes per checkpoint window, not O(cache).
//!
//! ## Frame format (magic `DRBR`, version 1, CRC-64 sealed)
//!
//! | field        | type    | meaning                                      |
//! |--------------|---------|----------------------------------------------|
//! | `shard`      | `usize` | shard the replicated checkpoint belongs to    |
//! | `generation` | `u32`   | fleet generation the primary serves in        |
//! | `role`       | `u8`    | sender role: `0x01` primary, `0x02` standby   |
//! | `seq`        | `u64`   | request-sequence boundary of the cut          |
//! | payload tag  | `u8`    | `0x01` full, `0x02` delta                     |
//! | payload      | bytes   | full image, or `base_seq` + sealed delta      |
//!
//! [`ReplicaFrame::resolve`] is the standby's apply gate: it rejects a
//! frame addressed to the wrong shard ([`ReplicaError::WrongShard`]), from
//! the wrong generation ([`ReplicaError::WrongGeneration`]) or carrying the
//! wrong role tag ([`ReplicaError::WrongRole`] — only a *primary* may feed
//! a standby), and a delta without its base ([`ReplicaError::MissingBase`]).
//! Damage surfaces as [`CkptError`]s from the sealed-frame layer, and the
//! embedded [`DeltaFrame`] refuses both the wrong base and a reconstruction
//! that does not hash to its recorded checksum — a replica stream can fail
//! loudly but never silently mis-apply.

use crate::delta::DeltaFrame;
use crate::{open, seal, CkptError, Dec, Enc};
use std::fmt;

/// Magic for sealed replica envelopes: `DRBR`.
pub const REPLICA_MAGIC: u32 = 0x4452_4252;
/// Current replica envelope version.
pub const REPLICA_VERSION: u16 = 1;

/// Role tag for frames originated by a serving primary.
const ROLE_PRIMARY: u8 = 0x01;
/// Role tag for frames originated by a standby (promotion acks, future
/// anti-entropy traffic). A standby never *applies* one of these.
const ROLE_STANDBY: u8 = 0x02;

/// Payload tag for a full checkpoint image.
const PAYLOAD_FULL: u8 = 0x01;
/// Payload tag for a delta against the standby's current frame.
const PAYLOAD_DELTA: u8 = 0x02;

/// Which replication endpoint originated a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// The serving primary — the only legal source of checkpoint cuts.
    Primary,
    /// The hot standby.
    Standby,
}

impl ReplicaRole {
    fn to_byte(self) -> u8 {
        match self {
            ReplicaRole::Primary => ROLE_PRIMARY,
            ReplicaRole::Standby => ROLE_STANDBY,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CkptError> {
        match b {
            ROLE_PRIMARY => Ok(ReplicaRole::Primary),
            ROLE_STANDBY => Ok(ReplicaRole::Standby),
            other => Err(CkptError::Malformed(format!("replica role byte {other:#x}"))),
        }
    }
}

/// How the replicated checkpoint travels inside the envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaPayload {
    /// The complete sealed checkpoint frame (seeding / re-seeding).
    Full(Vec<u8>),
    /// A sealed [`DeltaFrame`] against the frame the standby applied at
    /// `base_seq` (steady state — O(churn) bytes).
    Delta {
        /// Request-sequence boundary of the base the delta was computed
        /// against; the standby must hold exactly that frame.
        base_seq: u64,
        /// The sealed delta frame ([`DeltaFrame::to_frame`]).
        frame: Vec<u8>,
    },
}

/// Why a structurally valid replica envelope must not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The envelope (or its embedded delta) failed frame validation.
    Frame(CkptError),
    /// Addressed to a different shard.
    WrongShard {
        /// Shard the standby replicates.
        expected: usize,
        /// Shard the envelope names.
        found: usize,
    },
    /// From a different fleet generation.
    WrongGeneration {
        /// Generation the standby tracks.
        expected: u32,
        /// Generation the envelope names.
        found: u32,
    },
    /// Originated by the wrong endpoint — only a primary feeds a standby.
    WrongRole {
        /// Role the envelope carries.
        found: ReplicaRole,
    },
    /// A delta payload arrived but the standby holds no base (or the wrong
    /// boundary) to apply it against.
    MissingBase {
        /// Base boundary the delta requires.
        base_seq: u64,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Frame(e) => write!(f, "replica frame: {e}"),
            ReplicaError::WrongShard { expected, found } => {
                write!(f, "replica for shard {found}, standby replicates shard {expected}")
            }
            ReplicaError::WrongGeneration { expected, found } => {
                write!(f, "replica from generation {found}, standby tracks generation {expected}")
            }
            ReplicaError::WrongRole { found } => {
                write!(f, "replica originated by {found:?}, only a primary may feed a standby")
            }
            ReplicaError::MissingBase { base_seq } => {
                write!(f, "delta against base seq {base_seq} but no matching base is held")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<CkptError> for ReplicaError {
    fn from(e: CkptError) -> Self {
        ReplicaError::Frame(e)
    }
}

/// One replication shipment: a checkpoint cut addressed shard-, generation-
/// and role-explicitly. See the module docs for the byte layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaFrame {
    /// Shard whose checkpoint this is.
    pub shard: usize,
    /// Fleet generation the primary serves in.
    pub generation: u32,
    /// Originating endpoint; a standby applies only `Primary` frames.
    pub role: ReplicaRole,
    /// Request-sequence boundary of the cut being replicated.
    pub seq: u64,
    /// Full image or delta against the standby's held frame.
    pub payload: ReplicaPayload,
}

impl ReplicaFrame {
    /// Serializes into a sealed, CRC-guarded envelope.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.usize(self.shard);
        e.u32(self.generation);
        e.u8(self.role.to_byte());
        e.u64(self.seq);
        match &self.payload {
            ReplicaPayload::Full(bytes) => {
                e.u8(PAYLOAD_FULL);
                e.bytes(bytes);
            }
            ReplicaPayload::Delta { base_seq, frame } => {
                e.u8(PAYLOAD_DELTA);
                e.u64(*base_seq);
                e.bytes(frame);
            }
        }
        seal(REPLICA_MAGIC, REPLICA_VERSION, &e.into_bytes())
    }

    /// Parses a sealed replica envelope. Truncation, bit flips, a wrong
    /// magic or version, an unknown role or payload tag all surface as
    /// [`CkptError`]s — never a panic.
    pub fn from_frame(frame: &[u8]) -> Result<ReplicaFrame, CkptError> {
        let body = open(frame, REPLICA_MAGIC, REPLICA_VERSION)?;
        let mut d = Dec::new(body);
        let shard = d.usize()?;
        let generation = d.u32()?;
        let role = ReplicaRole::from_byte(d.u8()?)?;
        let seq = d.u64()?;
        let payload = match d.u8()? {
            PAYLOAD_FULL => ReplicaPayload::Full(d.bytes()?.to_vec()),
            PAYLOAD_DELTA => ReplicaPayload::Delta { base_seq: d.u64()?, frame: d.bytes()?.to_vec() },
            tag => return Err(CkptError::Malformed(format!("replica payload tag {tag:#x}"))),
        };
        d.finish()?;
        Ok(ReplicaFrame { shard, generation, role, seq, payload })
    }

    /// Bytes the payload actually ships — a full image's length, or the
    /// sealed delta's length. The O(churn) accounting compares this against
    /// the full checkpoint size.
    pub fn shipped_bytes(&self) -> u64 {
        match &self.payload {
            ReplicaPayload::Full(bytes) => bytes.len() as u64,
            ReplicaPayload::Delta { frame, .. } => frame.len() as u64,
        }
    }

    /// The standby's apply gate: checks addressing (shard, generation) and
    /// role, then materializes the replicated checkpoint image — a copy of
    /// the full payload, or the delta applied to `base` (which must be the
    /// frame the standby applied at the delta's `base_seq`). The returned
    /// bytes still carry their own seal; the caller re-validates them as a
    /// shard checkpoint before trusting them.
    pub fn resolve(
        &self,
        shard: usize,
        generation: u32,
        base: Option<&[u8]>,
    ) -> Result<Vec<u8>, ReplicaError> {
        if self.role != ReplicaRole::Primary {
            return Err(ReplicaError::WrongRole { found: self.role });
        }
        if self.shard != shard {
            return Err(ReplicaError::WrongShard { expected: shard, found: self.shard });
        }
        if self.generation != generation {
            return Err(ReplicaError::WrongGeneration { expected: generation, found: self.generation });
        }
        match &self.payload {
            ReplicaPayload::Full(bytes) => Ok(bytes.clone()),
            ReplicaPayload::Delta { base_seq, frame } => {
                let base = base.ok_or(ReplicaError::MissingBase { base_seq: *base_seq })?;
                let delta = DeltaFrame::from_frame(frame)?;
                Ok(delta.apply(base)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect()
    }

    fn full(seq: u64, bytes: Vec<u8>) -> ReplicaFrame {
        ReplicaFrame {
            shard: 3,
            generation: 2,
            role: ReplicaRole::Primary,
            seq,
            payload: ReplicaPayload::Full(bytes),
        }
    }

    #[test]
    fn full_roundtrip_resolves_to_the_image() {
        let img = image(4096, 1);
        let wire = full(1_000, img.clone()).to_frame();
        let parsed = ReplicaFrame::from_frame(&wire).unwrap();
        assert_eq!(parsed.seq, 1_000);
        assert_eq!(parsed.shipped_bytes(), img.len() as u64);
        assert_eq!(parsed.resolve(3, 2, None).unwrap(), img);
    }

    #[test]
    fn delta_roundtrip_needs_and_uses_its_base() {
        let base = image(64 * 1024, 2);
        let mut target = base.clone();
        for b in &mut target[1_000..1_200] {
            *b ^= 0x5A;
        }
        let delta = DeltaFrame::compute(&base, &target);
        let env = ReplicaFrame {
            shard: 0,
            generation: 0,
            role: ReplicaRole::Primary,
            seq: 2_000,
            payload: ReplicaPayload::Delta { base_seq: 1_000, frame: delta.to_frame() },
        };
        let parsed = ReplicaFrame::from_frame(&env.to_frame()).unwrap();
        assert!(parsed.shipped_bytes() < target.len() as u64 / 10, "delta ships O(churn)");
        assert_eq!(parsed.resolve(0, 0, Some(&base)).unwrap(), target);
        assert_eq!(parsed.resolve(0, 0, None), Err(ReplicaError::MissingBase { base_seq: 1_000 }));
        // The wrong base is refused by the delta's own checksum, not applied.
        let wrong = image(64 * 1024, 3);
        assert_eq!(parsed.resolve(0, 0, Some(&wrong)), Err(ReplicaError::Frame(CkptError::BadCrc)));
    }

    #[test]
    fn wrong_addressing_is_rejected_specifically() {
        let env = full(500, image(256, 4));
        let parsed = ReplicaFrame::from_frame(&env.to_frame()).unwrap();
        assert_eq!(parsed.resolve(4, 2, None), Err(ReplicaError::WrongShard { expected: 4, found: 3 }));
        assert_eq!(
            parsed.resolve(3, 7, None),
            Err(ReplicaError::WrongGeneration { expected: 7, found: 2 })
        );
    }

    #[test]
    fn standby_role_is_rejected_never_applied() {
        let mut env = full(500, image(256, 5));
        env.role = ReplicaRole::Standby;
        let parsed = ReplicaFrame::from_frame(&env.to_frame()).unwrap();
        assert_eq!(
            parsed.resolve(3, 2, None),
            Err(ReplicaError::WrongRole { found: ReplicaRole::Standby })
        );
    }

    #[test]
    fn unknown_role_and_payload_tags_are_malformed() {
        // Build a frame by hand with a bogus role byte.
        let mut e = Enc::new();
        e.usize(0);
        e.u32(0);
        e.u8(0x7F); // no such role
        e.u64(100);
        e.u8(PAYLOAD_FULL);
        e.bytes(b"body");
        let frame = seal(REPLICA_MAGIC, REPLICA_VERSION, &e.into_bytes());
        assert!(matches!(ReplicaFrame::from_frame(&frame), Err(CkptError::Malformed(_))));

        let mut e = Enc::new();
        e.usize(0);
        e.u32(0);
        e.u8(ROLE_PRIMARY);
        e.u64(100);
        e.u8(0x7F); // no such payload
        let frame = seal(REPLICA_MAGIC, REPLICA_VERSION, &e.into_bytes());
        assert!(matches!(ReplicaFrame::from_frame(&frame), Err(CkptError::Malformed(_))));
    }

    #[test]
    fn damage_is_detected_not_applied() {
        let wire = full(900, image(2048, 6)).to_frame();
        for keep in [0, 1, wire.len() / 2, wire.len() - 1] {
            assert!(ReplicaFrame::from_frame(&wire[..keep]).is_err(), "kept {keep} bytes");
        }
        let mut flipped = wire.clone();
        flipped[wire.len() / 2] ^= 0x10;
        assert!(ReplicaFrame::from_frame(&flipped).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding arbitrary bytes as a replica envelope never panics.
        #[test]
        fn from_frame_never_panics(junk in proptest::collection::vec(0u8..=255, 0..512)) {
            let _ = ReplicaFrame::from_frame(&junk);
        }

        /// Any single bit flip in a sealed envelope is detected.
        #[test]
        fn any_bit_flip_detected(
            body in proptest::collection::vec(0u8..=255, 0..256),
            pos in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let wire = ReplicaFrame {
                shard: 1,
                generation: 1,
                role: ReplicaRole::Primary,
                seq: 42,
                payload: ReplicaPayload::Full(body),
            }
            .to_frame();
            let mut bad = wire.clone();
            let byte = ((pos * bad.len() as f64) as usize).min(bad.len() - 1);
            bad[byte] ^= 1 << bit;
            prop_assert!(ReplicaFrame::from_frame(&bad).is_err());
        }

        /// Envelopes roundtrip bit-exactly for any payload.
        #[test]
        fn any_full_payload_roundtrips(
            body in proptest::collection::vec(0u8..=255, 0..256),
            seq in 0u64..1_000_000,
        ) {
            let env = ReplicaFrame {
                shard: 2,
                generation: 9,
                role: ReplicaRole::Primary,
                seq,
                payload: ReplicaPayload::Full(body),
            };
            prop_assert_eq!(ReplicaFrame::from_frame(&env.to_frame()).unwrap(), env);
        }
    }
}
