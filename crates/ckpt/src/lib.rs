#![warn(missing_docs)]

//! # darwin-ckpt
//!
//! Std-only binary checkpoint codec, the wire layer of the warm-recovery
//! subsystem (`wire.rs`'s sibling: no serde, no external crates, explicit
//! little-endian layout).
//!
//! Three pieces:
//!
//! * [`Enc`] / [`Dec`] — append-only writer and checked reader for the
//!   primitive vocabulary every checkpointed struct is built from: `u8`,
//!   `u32`, `u64`, `f64` (bit-exact via `to_le_bytes`), `bool`, `usize`
//!   (as `u64`), length-prefixed byte strings and options. Every `Dec`
//!   read is bounds-checked and returns [`CkptError::Truncated`] instead
//!   of panicking — corrupt input must never bring a worker down.
//! * [`crc64`] — CRC-64/XZ (ECMA-182 polynomial, reflected), the frame
//!   integrity check. Detects all single-bit flips and all burst errors
//!   up to 64 bits.
//! * [`seal`] / [`open`] — the versioned frame envelope:
//!
//!   ```text
//!   magic: u32 LE | version: u16 LE | body_len: u64 LE | body | crc64: u64 LE
//!   ```
//!
//!   `open` validates magic, CRC (over everything before the trailer) and
//!   version, in that order, so callers can distinguish "not a checkpoint"
//!   ([`CkptError::BadMagic`]), "damaged" ([`CkptError::BadCrc`] /
//!   [`CkptError::Truncated`]) and "from another format revision"
//!   ([`CkptError::BadVersion`]) — each of which the shard supervisor
//!   answers with a cold restart, never a panic.
//!
//! Encoders in the state-owning crates keep byte output deterministic
//! (hash maps are serialized sorted by key), so identical state always
//! seals to identical frames — the property the roundtrip proptests pin.
//!
//! Two higher-level frame codecs live on top of the envelope, here rather
//! than in `darwin-rebalance` so that `darwin-shard` (below rebalance in
//! the crate graph) can use them too:
//!
//! * [`delta`] — [`DeltaFrame`](delta::DeltaFrame): an rsync-style block
//!   diff between two byte images, the O(churn) payload of shard handoffs
//!   and standby replication.
//! * [`replica`] — [`ReplicaFrame`](replica::ReplicaFrame): the role-tagged
//!   envelope a primary shard ships its checkpoint cuts to a hot standby
//!   in (full image to seed, delta thereafter).

pub mod delta;
pub mod replica;

use std::fmt;

/// Why a checkpoint frame or body failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The input ended before the expected data (or a length prefix claims
    /// more bytes than remain).
    Truncated,
    /// The frame does not start with the expected magic number — it is not
    /// a checkpoint of this kind at all.
    BadMagic {
        /// Magic the caller expected.
        expected: u32,
        /// Magic actually found.
        found: u32,
    },
    /// The frame is a valid checkpoint of this kind but from a different
    /// format revision.
    BadVersion {
        /// Version the caller supports.
        expected: u16,
        /// Version actually found.
        found: u16,
    },
    /// The CRC-64 trailer does not match the frame contents (bit rot, torn
    /// write, deliberate corruption).
    BadCrc,
    /// The bytes decoded structurally but violate an invariant of the type
    /// being restored (e.g. a config fingerprint mismatch).
    Malformed(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:#010x}, found {found:#010x}")
            }
            CkptError::BadVersion { expected, found } => {
                write!(f, "bad version: expected {expected}, found {found}")
            }
            CkptError::BadCrc => write!(f, "CRC mismatch"),
            CkptError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` bit-exactly (IEEE-754 bits, little-endian).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an option: a presence byte, then the value if present.
    pub fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
            None => self.u8(0),
        }
    }

    /// Writes a slice as a length prefix followed by each element.
    pub fn seq<T>(&mut self, v: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(v.len());
        for x in v {
            f(self, x);
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless the decoder consumed its input exactly.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CkptError::Malformed(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        usize::try_from(self.u64()?).map_err(|_| CkptError::Malformed("usize overflow".into()))
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Malformed(format!("bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| CkptError::Malformed("invalid UTF-8".into()))
    }

    /// Reads an option written by [`Enc::opt`].
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, CkptError>,
    ) -> Result<Option<T>, CkptError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(CkptError::Malformed(format!("option byte {b}"))),
        }
    }

    /// Reads a sequence written by [`Enc::seq`]. The declared length is
    /// sanity-bounded by the remaining input (every element occupies at
    /// least one byte), so a corrupt length prefix cannot trigger a huge
    /// allocation.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CkptError>,
    ) -> Result<Vec<T>, CkptError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CkptError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

// CRC-64/XZ: ECMA-182 polynomial, reflected, init/xorout = !0.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ CRC64_POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ checksum of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frame header length: magic (4) + version (2) + body length (8).
const HEADER_LEN: usize = 14;
/// CRC trailer length.
const TRAILER_LEN: usize = 8;

/// Seals `body` into a versioned, CRC-guarded frame.
pub fn seal(magic: u32, version: u16, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + TRAILER_LEN);
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Opens a frame sealed by [`seal`], returning the body on success.
/// Validation order: length, magic, CRC, version, body length — so damage
/// and format drift produce the most specific error available.
pub fn open(frame: &[u8], magic: u32, version: u16) -> Result<&[u8], CkptError> {
    if frame.len() < HEADER_LEN + TRAILER_LEN {
        return Err(CkptError::Truncated);
    }
    let found_magic = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
    if found_magic != magic {
        return Err(CkptError::BadMagic { expected: magic, found: found_magic });
    }
    let split = frame.len() - TRAILER_LEN;
    let stored = u64::from_le_bytes(frame[split..].try_into().expect("8 bytes"));
    if crc64(&frame[..split]) != stored {
        return Err(CkptError::BadCrc);
    }
    let found_version = u16::from_le_bytes(frame[4..6].try_into().expect("2 bytes"));
    if found_version != version {
        return Err(CkptError::BadVersion { expected: version, found: found_version });
    }
    let body_len = u64::from_le_bytes(frame[6..14].try_into().expect("8 bytes"));
    if body_len != (split - HEADER_LEN) as u64 {
        return Err(CkptError::Malformed("body length mismatch".into()));
    }
    Ok(&frame[HEADER_LEN..split])
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: u32 = 0xDA12_34B0;
    const VERSION: u16 = 1;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 3);
        enc.usize(123_456);
        enc.f64(-0.125);
        enc.f64(f64::NAN);
        enc.bool(true);
        enc.bool(false);
        enc.bytes(b"hello");
        enc.str("caf\u{e9}");
        enc.opt(Some(&42u64), |e, v| e.u64(*v));
        enc.opt::<u64>(None, |e, v| e.u64(*v));
        enc.seq(&[1u64, 2, 3], |e, v| e.u64(*v));
        let bytes = enc.into_bytes();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.usize().unwrap(), 123_456);
        assert_eq!(dec.f64().unwrap(), -0.125);
        assert!(dec.f64().unwrap().is_nan(), "NaN survives bit-exactly");
        assert!(dec.bool().unwrap());
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.bytes().unwrap(), b"hello");
        assert_eq!(dec.str().unwrap(), "caf\u{e9}");
        assert_eq!(dec.opt(|d| d.u64()).unwrap(), Some(42));
        assert_eq!(dec.opt(|d| d.u64()).unwrap(), None);
        assert_eq!(dec.seq(|d| d.u64()).unwrap(), vec![1, 2, 3]);
        dec.finish().unwrap();
    }

    #[test]
    fn reads_past_end_are_truncated_not_panics() {
        let mut dec = Dec::new(&[1, 2]);
        assert_eq!(dec.u64(), Err(CkptError::Truncated));
        // Failed read consumed nothing.
        assert_eq!(dec.remaining(), 2);
        assert_eq!(dec.u8().unwrap(), 1);
    }

    #[test]
    fn corrupt_length_prefix_is_bounded() {
        let mut enc = Enc::new();
        enc.usize(usize::MAX / 2); // absurd sequence length
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.seq(|d| d.u8()), Err(CkptError::Truncated));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let dec = Dec::new(&[0]);
        assert!(matches!(dec.finish(), Err(CkptError::Malformed(_))));
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ of "123456789" is 0x995DC9BBDF1939FA.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn seal_open_roundtrip() {
        let body = b"checkpoint body".to_vec();
        let frame = seal(MAGIC, VERSION, &body);
        assert_eq!(open(&frame, MAGIC, VERSION).unwrap(), &body[..]);
        // Empty body is fine too.
        let frame = seal(MAGIC, VERSION, &[]);
        assert_eq!(open(&frame, MAGIC, VERSION).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn open_rejects_wrong_magic() {
        let frame = seal(MAGIC, VERSION, b"x");
        assert_eq!(
            open(&frame, MAGIC + 1, VERSION),
            Err(CkptError::BadMagic { expected: MAGIC + 1, found: MAGIC })
        );
    }

    #[test]
    fn open_rejects_wrong_version() {
        let frame = seal(MAGIC, 2, b"x");
        assert_eq!(
            open(&frame, MAGIC, VERSION),
            Err(CkptError::BadVersion { expected: VERSION, found: 2 })
        );
    }

    #[test]
    fn open_rejects_every_single_bit_flip() {
        let frame = seal(MAGIC, VERSION, b"warm recovery frame");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open(&bad, MAGIC, VERSION).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn open_rejects_every_truncation() {
        let frame = seal(MAGIC, VERSION, b"torn write victim");
        for keep in 0..frame.len() {
            assert!(open(&frame[..keep], MAGIC, VERSION).is_err(), "kept {keep} bytes");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const MAGIC: u32 = 0xDA12_34B0;

    proptest! {
        /// Any body roundtrips through seal/open bit-exactly.
        #[test]
        fn any_body_roundtrips(body in proptest::collection::vec(0u8..=255, 0..512)) {
            let frame = seal(MAGIC, 1, &body);
            prop_assert_eq!(open(&frame, MAGIC, 1).unwrap(), &body[..]);
        }

        /// Any single bit flip in a sealed frame is detected.
        #[test]
        fn any_bit_flip_detected(
            body in proptest::collection::vec(0u8..=255, 0..256),
            pos in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let frame = seal(MAGIC, 1, &body);
            let mut bad = frame.clone();
            let byte = ((pos * bad.len() as f64) as usize).min(bad.len() - 1);
            bad[byte] ^= 1 << bit;
            prop_assert!(open(&bad, MAGIC, 1).is_err());
        }

        /// Any truncation of a sealed frame is detected.
        #[test]
        fn any_truncation_detected(
            body in proptest::collection::vec(0u8..=255, 0..256),
            cut in 0.0f64..1.0,
        ) {
            let frame = seal(MAGIC, 1, &body);
            let keep = ((cut * frame.len() as f64) as usize).min(frame.len() - 1);
            prop_assert!(open(&frame[..keep], MAGIC, 1).is_err());
        }

        /// Decoding arbitrary bytes as a frame never panics.
        #[test]
        fn open_never_panics(junk in proptest::collection::vec(0u8..=255, 0..128)) {
            let _ = open(&junk, MAGIC, 1);
        }
    }
}
