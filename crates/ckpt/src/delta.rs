//! Incremental delta frames: O(churn) handoff bandwidth.
//!
//! A handoff that ships a shard's full checkpoint pays O(cache) bytes at
//! cutover. In the intended deployment the destination pre-copies the
//! shard's last *periodic* checkpoint asynchronously, so cutover only needs
//! the difference between that base and the final cut — O(churn since the
//! last boundary). [`DeltaFrame`] is that difference: an rsync-style
//! block-aligned diff of two byte images.
//!
//! ## Frame format (magic `DRBD`, version 1, CRC-64 sealed)
//!
//! | field        | type  | meaning                                     |
//! |--------------|-------|---------------------------------------------|
//! | `base_len`   | `u64` | byte length the base image must have        |
//! | `base_sum`   | `u64` | CRC-64 the base image must hash to          |
//! | `target_len` | `u64` | byte length of the reconstructed image      |
//! | `target_sum` | `u64` | CRC-64 the reconstruction must hash to      |
//! | `ops`        | seq   | `0x01 Copy{offset,len}` \| `0x02 Literal`   |
//!
//! [`DeltaFrame::apply`] refuses the wrong base (checksum mismatch) and
//! refuses its own output if it does not hash to `target_sum` — a delta can
//! fail loudly but never silently mis-restore. Unknown op tags, truncated
//! bodies and bit flips surface as [`CkptError`]s from the sealed-frame
//! layer or as `Malformed` from op decoding; the hostile-corpus proptests
//! (`darwin-rebalance/tests/codec_props.rs`) pin all three.
//!
//! The codec lives here (not in `darwin-rebalance`, where it originated)
//! because both the rebalance handoff path and the shard replication layer
//! need it, and `darwin-shard` sits below `darwin-rebalance` in the crate
//! graph. `darwin_rebalance::delta` re-exports this module unchanged.

use crate::{crc64, open, seal, CkptError, Dec, Enc};

/// Magic for sealed delta frames: `DRBD`.
pub const DELTA_MAGIC: u32 = 0x4452_4244;
/// Current delta frame version.
pub const DELTA_VERSION: u16 = 1;
/// Diff granularity in bytes. Matches differ below this size are not worth
/// a `Copy` op's 17-byte encoding.
const BLOCK: usize = 64;

/// Op tag for a copy-from-base run.
const OP_COPY: u8 = 0x01;
/// Op tag for literal bytes.
const OP_LITERAL: u8 = 0x02;

/// One reconstruction step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DeltaOp {
    /// Copy `len` bytes starting at `offset` in the base image.
    Copy { offset: u64, len: u64 },
    /// Splice these bytes in verbatim.
    Literal(Vec<u8>),
}

/// A checksummed block diff turning one byte image into another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaFrame {
    /// Required base image length.
    pub base_len: u64,
    /// Required base image CRC-64.
    pub base_sum: u64,
    /// Reconstructed image length.
    pub target_len: u64,
    /// Reconstructed image CRC-64.
    pub target_sum: u64,
    ops: Vec<DeltaOp>,
}

/// Weak rolling hash of one block (Adler-style): cheap to slide one byte at
/// a time across the target while scanning for base-block matches.
#[derive(Clone, Copy)]
struct WeakHash {
    a: u32,
    b: u32,
}

impl WeakHash {
    fn of(block: &[u8]) -> Self {
        let mut h = WeakHash { a: 0, b: 0 };
        for (i, &byte) in block.iter().enumerate() {
            h.a = h.a.wrapping_add(byte as u32);
            h.b = h.b.wrapping_add((block.len() - i) as u32 * byte as u32);
        }
        h
    }

    /// Slides the window one byte: drop `out`, append `inn`.
    fn roll(&mut self, out: u8, inn: u8, len: usize) {
        self.a = self.a.wrapping_sub(out as u32).wrapping_add(inn as u32);
        self.b = self.b.wrapping_sub(len as u32 * out as u32).wrapping_add(self.a);
    }

    fn key(&self) -> u64 {
        ((self.b as u64) << 32) | self.a as u64
    }
}

impl DeltaFrame {
    /// Diffs `base → target`. Pure and deterministic: the same pair always
    /// yields the same frame.
    pub fn compute(base: &[u8], target: &[u8]) -> DeltaFrame {
        let mut frame = DeltaFrame {
            base_len: base.len() as u64,
            base_sum: crc64(base),
            target_len: target.len() as u64,
            target_sum: crc64(target),
            ops: Vec::new(),
        };
        if target.is_empty() {
            return frame;
        }
        if base.len() < BLOCK || target.len() < BLOCK {
            frame.ops.push(DeltaOp::Literal(target.to_vec()));
            return frame;
        }
        // Index every base block by weak hash; collisions keep all offsets
        // (verified byte-for-byte before use, so a false positive just
        // costs a comparison).
        let mut index: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
        for (i, block) in base.chunks_exact(BLOCK).enumerate() {
            index.entry(WeakHash::of(block).key()).or_default().push(i * BLOCK);
        }
        let mut pending = Vec::new(); // literal run under construction
        let mut pos = 0usize;
        let mut weak = WeakHash::of(&target[..BLOCK]);
        loop {
            let window = &target[pos..pos + BLOCK];
            let matched = index.get(&weak.key()).and_then(|offsets| {
                offsets.iter().find(|&&off| &base[off..off + BLOCK] == window).copied()
            });
            if let Some(off) = matched {
                if !pending.is_empty() {
                    frame.ops.push(DeltaOp::Literal(std::mem::take(&mut pending)));
                }
                // Coalesce with a preceding copy that this block extends.
                match frame.ops.last_mut() {
                    Some(DeltaOp::Copy { offset, len }) if *offset + *len == off as u64 => {
                        *len += BLOCK as u64;
                    }
                    _ => frame.ops.push(DeltaOp::Copy { offset: off as u64, len: BLOCK as u64 }),
                }
                pos += BLOCK;
                if pos + BLOCK > target.len() {
                    break;
                }
                weak = WeakHash::of(&target[pos..pos + BLOCK]);
            } else {
                pending.push(target[pos]);
                if pos + BLOCK + 1 > target.len() {
                    pos += 1;
                    break;
                }
                weak.roll(target[pos], target[pos + BLOCK], BLOCK);
                pos += 1;
            }
        }
        // Tail shorter than a block: always literal.
        pending.extend_from_slice(&target[pos..]);
        if !pending.is_empty() {
            frame.ops.push(DeltaOp::Literal(pending));
        }
        frame
    }

    /// Reconstructs the target from `base`. Refuses a wrong base up front
    /// (`BadCrc`) and refuses its own output when the reconstruction does
    /// not hash to `target_sum` — corruption is loud, never silent.
    pub fn apply(&self, base: &[u8]) -> Result<Vec<u8>, CkptError> {
        if base.len() as u64 != self.base_len || crc64(base) != self.base_sum {
            return Err(CkptError::BadCrc);
        }
        let mut out = Vec::with_capacity(self.target_len as usize);
        for op in &self.ops {
            match op {
                DeltaOp::Copy { offset, len } => {
                    let start = *offset as usize;
                    let end = start
                        .checked_add(*len as usize)
                        .ok_or_else(|| CkptError::Malformed("copy range overflow".into()))?;
                    if end > base.len() {
                        return Err(CkptError::Malformed(format!(
                            "copy {start}..{end} past base end {}",
                            base.len()
                        )));
                    }
                    out.extend_from_slice(&base[start..end]);
                }
                DeltaOp::Literal(bytes) => out.extend_from_slice(bytes),
            }
        }
        if out.len() as u64 != self.target_len || crc64(&out) != self.target_sum {
            return Err(CkptError::BadCrc);
        }
        Ok(out)
    }

    /// Encoded size of the ops payload — the bandwidth a handoff actually
    /// ships, compared against `target_len` for the O(churn) claim.
    pub fn payload_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Copy { .. } => 17u64, // tag + offset + len
                DeltaOp::Literal(bytes) => 1 + 8 + bytes.len() as u64,
            })
            .sum()
    }

    /// Serializes into a sealed, CRC-guarded frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.base_len);
        e.u64(self.base_sum);
        e.u64(self.target_len);
        e.u64(self.target_sum);
        e.seq(&self.ops, |e, op| match op {
            DeltaOp::Copy { offset, len } => {
                e.u8(OP_COPY);
                e.u64(*offset);
                e.u64(*len);
            }
            DeltaOp::Literal(bytes) => {
                e.u8(OP_LITERAL);
                e.bytes(bytes);
            }
        });
        seal(DELTA_MAGIC, DELTA_VERSION, &e.into_bytes())
    }

    /// Parses a sealed delta frame. Truncated, bit-flipped or
    /// wrong-versioned frames surface as [`CkptError`]s.
    pub fn from_frame(frame: &[u8]) -> Result<DeltaFrame, CkptError> {
        let body = open(frame, DELTA_MAGIC, DELTA_VERSION)?;
        let mut d = Dec::new(body);
        let base_len = d.u64()?;
        let base_sum = d.u64()?;
        let target_len = d.u64()?;
        let target_sum = d.u64()?;
        let ops = d.seq(|d| match d.u8()? {
            OP_COPY => Ok(DeltaOp::Copy { offset: d.u64()?, len: d.u64()? }),
            OP_LITERAL => Ok(DeltaOp::Literal(d.bytes()?.to_vec())),
            tag => Err(CkptError::Malformed(format!("delta op tag {tag:#x}"))),
        })?;
        d.finish()?;
        Ok(DeltaFrame { base_len, base_sum, target_len, target_sum, ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn identical_images_round_trip_tiny() {
        let base = image(8192, 1);
        let delta = DeltaFrame::compute(&base, &base);
        assert_eq!(delta.apply(&base).unwrap(), base);
        assert!(
            delta.payload_bytes() < 64,
            "identity delta ships {} bytes for an 8 KiB image",
            delta.payload_bytes()
        );
    }

    #[test]
    fn small_churn_ships_small_delta() {
        let base = image(64 * 1024, 2);
        let mut target = base.clone();
        // Mutate ~1% of the image in a few scattered runs.
        for start in [100usize, 20_000, 40_000] {
            for b in &mut target[start..start + 200] {
                *b ^= 0x5A;
            }
        }
        target.extend_from_slice(&image(300, 3)); // appended churn
        let delta = DeltaFrame::compute(&base, &target);
        assert_eq!(delta.apply(&base).unwrap(), target);
        assert!(
            delta.payload_bytes() < target.len() as u64 / 10,
            "1% churn delta ships {} of {} bytes",
            delta.payload_bytes(),
            target.len()
        );
    }

    #[test]
    fn wrong_base_is_refused() {
        let base = image(4096, 4);
        let target = image(4096, 5);
        let delta = DeltaFrame::compute(&base, &target);
        let mut wrong = base.clone();
        wrong[17] ^= 1;
        assert_eq!(delta.apply(&wrong), Err(CkptError::BadCrc));
        assert_eq!(delta.apply(&base).unwrap(), target);
    }

    #[test]
    fn frame_round_trips_and_rejects_corruption() {
        let base = image(10_000, 6);
        let target = image(10_000, 7);
        let delta = DeltaFrame::compute(&base, &target);
        let frame = delta.to_frame();
        assert_eq!(DeltaFrame::from_frame(&frame).unwrap(), delta);
        assert!(DeltaFrame::from_frame(&frame[..frame.len() - 3]).is_err());
        let mut flipped = frame.clone();
        flipped[frame.len() / 2] ^= 0x10;
        assert!(DeltaFrame::from_frame(&flipped).is_err());
    }

    #[test]
    fn empty_and_sub_block_images() {
        for (b, t) in [(0usize, 0usize), (0, 10), (10, 0), (10, 20), (200, 3)] {
            let base = image(b, 8);
            let target = image(t, 9);
            let delta = DeltaFrame::compute(&base, &target);
            assert_eq!(delta.apply(&base).unwrap(), target, "base {b} target {t}");
        }
    }
}
