#![warn(missing_docs)]

//! # darwin-baselines
//!
//! The adaptive HOC-admission baselines Darwin is evaluated against (§6
//! "Baselines" and Table 1/2):
//!
//! * **Static experts** — fixed (f, s) thresholds; provided by
//!   [`darwin::runner::run_static`], listed here only for completeness.
//! * **[`AdaptSize`]** — Berger et al. (NSDI'17): probabilistic size-based
//!   admission `P(admit) = exp(−size/c)` with `c` re-tuned periodically by
//!   maximizing a Markov (Che-approximation) model of OHR.
//! * **[`Percentile`]** — re-estimates the empirical frequency/size
//!   distributions every N requests and deploys the expert nearest the 60th
//!   frequency / 90th size percentiles.
//! * **[`HillClimbing`]** — runs two shadow caches at (f ± Δf, s) and
//!   (f, s ± Δs) and moves the main cache to the best performer.
//! * **[`DirectMapping`]** — a neural net mapping traffic features directly
//!   to the best (f, s) — the "more practical approach" §4 describes and
//!   rejects in favour of expert selection.
//!
//! Each baseline exposes `run(trace, cache_config) -> CacheMetrics` so the
//! experiment harness treats them uniformly.

pub mod adaptsize;
pub mod direct;
pub mod hillclimb;
pub mod percentile;

pub use adaptsize::AdaptSize;
pub use direct::DirectMapping;
pub use hillclimb::HillClimbing;
pub use percentile::Percentile;
