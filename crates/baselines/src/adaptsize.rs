//! The AdaptSize baseline (Berger, Sitaraman & Harchol-Balter, NSDI'17).
//!
//! AdaptSize admits an object of size `s` into the HOC with probability
//! `exp(−s/c)` and re-tunes `c` periodically by maximizing a Markov-model
//! estimate of the OHR. The model (§3 of the AdaptSize paper, in its
//! Che-approximation form): an object `i` with request rate `λ_i` and size
//! `s_i` is in the cache with probability
//!
//! ```text
//! π_i(c, T) = p_i·(e^{λ_i T} − 1) / (1 + p_i·(e^{λ_i T} − 1)),
//! p_i = exp(−s_i / c)
//! ```
//!
//! where the characteristic time `T` solves the capacity constraint
//! `Σ_i s_i π_i(c, T) = C` (monotone in `T` ⇒ bisection). The predicted
//! OHR is `Σ_i λ_i π_i / Σ_i λ_i`; `c` is chosen from a log-spaced grid to
//! maximize it.
//!
//! §3.2.1 of the Darwin paper explains why this single-knob, OHR-specific
//! model cannot extend to frequency knobs or hardware-dependent objectives —
//! which is exactly the comparison the experiments reproduce.

use darwin_cache::policy::ProbabilisticSizePolicy;
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer};
use darwin_trace::{ObjectId, Trace};
use std::collections::HashMap;

/// The AdaptSize adaptive baseline.
#[derive(Debug, Clone)]
pub struct AdaptSize {
    /// Re-tuning interval in requests.
    pub window: usize,
    /// Initial size parameter `c` in bytes.
    pub initial_c: f64,
    /// Candidate grid: `c` is searched over `grid_points` log-spaced values
    /// in `[c_min, c_max]`.
    pub c_min: f64,
    /// Upper end of the search range.
    pub c_max: f64,
    /// Number of grid points.
    pub grid_points: usize,
    /// RNG seed for the admission coin flips.
    pub seed: u64,
}

impl AdaptSize {
    /// AdaptSize with a sensible default search range (1 KB – 100 MB).
    pub fn new(window: usize, seed: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            initial_c: 100.0 * 1024.0,
            c_min: 1024.0,
            c_max: 100.0 * 1024.0 * 1024.0,
            grid_points: 24,
            seed,
        }
    }

    /// Runs the baseline over a trace on a fresh server.
    pub fn run(&self, trace: &Trace, cache: &CacheConfig) -> CacheMetrics {
        let mut server = CacheServer::new(cache.clone());
        let mut c = self.initial_c;
        server.set_policy(ProbabilisticSizePolicy::new(c, self.seed));

        let mut stats: HashMap<ObjectId, (u64, u64)> = HashMap::new(); // id -> (count, size)
        let mut window_start_us = trace.requests().first().map(|r| r.timestamp_us).unwrap_or(0);
        let mut seen = 0usize;
        let mut reconfigs = 0u64;

        for r in trace {
            server.process(r);
            let e = stats.entry(r.id).or_insert((0, r.size));
            e.0 += 1;
            seen += 1;
            if seen >= self.window {
                let duration_s = ((r.timestamp_us - window_start_us) as f64 / 1e6).max(1e-6);
                c = self.tune(&stats, duration_s, cache.hoc_bytes as f64);
                reconfigs += 1;
                server.set_policy(ProbabilisticSizePolicy::new(c, self.seed.wrapping_add(reconfigs)));
                stats.clear();
                seen = 0;
                window_start_us = r.timestamp_us;
            }
        }
        server.metrics()
    }

    /// Picks the `c` maximizing the Markov-model OHR for the window's
    /// object statistics.
    pub fn tune(&self, stats: &HashMap<ObjectId, (u64, u64)>, duration_s: f64, capacity: f64) -> f64 {
        if stats.is_empty() {
            return self.initial_c;
        }
        let objects: Vec<(f64, f64)> =
            stats.values().map(|&(count, size)| (count as f64 / duration_s, size as f64)).collect();
        let total_rate: f64 = objects.iter().map(|&(l, _)| l).sum();

        let mut best = (self.initial_c, f64::NEG_INFINITY);
        for g in 0..self.grid_points {
            let frac = g as f64 / (self.grid_points - 1).max(1) as f64;
            let c = self.c_min * (self.c_max / self.c_min).powf(frac);
            let t = solve_characteristic_time(&objects, c, capacity);
            let ohr: f64 = objects.iter().map(|&(l, s)| l * pi_in(l, s, c, t)).sum::<f64>() / total_rate;
            if ohr > best.1 {
                best = (c, ohr);
            }
        }
        best.0
    }
}

/// Steady-state in-cache probability of an object under AdaptSize's Markov
/// model.
fn pi_in(lambda: f64, size: f64, c: f64, t: f64) -> f64 {
    let p_admit = (-size / c).exp();
    // e^{λT} − 1 overflows for hot objects; clamp via the limit π → 1.
    let x = lambda * t;
    if x > 500.0 {
        return if p_admit > 0.0 { 1.0 } else { 0.0 };
    }
    let grow = x.exp_m1();
    let num = p_admit * grow;
    num / (1.0 + num)
}

/// Bisection on the capacity constraint `Σ_i s_i π_i(c, T) = capacity`.
/// Returns a `T` within 0.1 % of the root (or the bracket end).
fn solve_characteristic_time(objects: &[(f64, f64)], c: f64, capacity: f64) -> f64 {
    let occupied = |t: f64| -> f64 { objects.iter().map(|&(l, s)| s * pi_in(l, s, c, t)).sum() };
    // If even a huge T does not fill the cache, everything admitted fits.
    let mut hi = 1e9;
    if occupied(hi) <= capacity {
        return hi;
    }
    let mut lo = 1e-9;
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection: T spans decades
        if occupied(mid) > capacity {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi / lo < 1.001 {
            break;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    #[test]
    fn characteristic_time_fills_capacity() {
        // 100 objects of size 10, rate 1 ⇒ capacity 500 ⇒ half resident.
        let objects: Vec<(f64, f64)> = (0..100).map(|_| (1.0, 10.0)).collect();
        let t = solve_characteristic_time(&objects, 1e12, 500.0);
        let occ: f64 = objects.iter().map(|&(l, s)| s * pi_in(l, s, 1e12, t)).sum();
        assert!((occ - 500.0).abs() / 500.0 < 0.01, "occupancy {occ}");
    }

    #[test]
    fn pi_in_monotone_in_rate_and_size() {
        let t = 10.0;
        assert!(pi_in(2.0, 100.0, 1000.0, t) > pi_in(1.0, 100.0, 1000.0, t));
        assert!(pi_in(1.0, 100.0, 1000.0, t) > pi_in(1.0, 10_000.0, 1000.0, t));
        // Hot-object overflow path.
        assert!((pi_in(1e3, 10.0, 1000.0, 1e3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tune_prefers_small_c_when_large_objects_pollute() {
        // Many tiny popular objects + few huge unpopular ones: optimal c is
        // small enough to keep the huge ones out.
        let mut stats = HashMap::new();
        for i in 0..200u64 {
            stats.insert(i, (50, 10 * 1024)); // popular 10 KB
        }
        for i in 1000..1010u64 {
            stats.insert(i, (1, 5 * 1024 * 1024)); // one-hit 5 MB
        }
        let a = AdaptSize::new(1000, 1);
        let c = a.tune(&stats, 60.0, 1024.0 * 1024.0);
        assert!(c < 5.0 * 1024.0 * 1024.0, "c = {c} keeps the polluters admissible");
    }

    #[test]
    fn run_accounts_all_requests() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 5).generate(15_000);
        let a = AdaptSize::new(5_000, 2);
        let m = a.run(&trace, &CacheConfig::small_test());
        assert_eq!(m.requests as usize, trace.len());
        assert!(m.hoc_ohr() > 0.0, "AdaptSize should achieve some hits");
    }
}
