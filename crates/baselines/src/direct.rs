//! The DirectMapping baseline (§4, evaluated in §6.1).
//!
//! "a more practical approach that maps features of arriving traffic
//! directly to the available knobs of a HOC admission policy (e.g. f or s or
//! jointly predict both) … its OHR performance is poor mainly because there
//! was no way to control the inherent error in the approach's parameter
//! prediction."
//!
//! Implementation: a regression net maps normalized 15-entry features to the
//! best expert's (f, log s), trained on the same offline evaluations Darwin
//! uses; online, every epoch's warm-up features are mapped and snapped to
//! the nearest grid expert, which is then deployed for the rest of the epoch.

use darwin::offline::EvaluatedTrace;
use darwin::{Expert, ExpertGrid};
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer};
use darwin_cluster::Normalizer;
use darwin_features::FeatureExtractor;
use darwin_nn::{Mlp, OutputActivation, TrainConfig};
use darwin_trace::Trace;
use serde::{Deserialize, Serialize};

/// The trained DirectMapping baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirectMapping {
    grid: ExpertGrid,
    normalizer: Normalizer,
    net: Mlp,
    /// (f, ln s) ranges used to normalize the regression targets.
    f_range: (f64, f64),
    ls_range: (f64, f64),
    /// Epoch length: features estimated over the first `warmup` requests,
    /// prediction deployed for the rest of `epoch`.
    pub epoch: usize,
    /// Warm-up length in requests.
    pub warmup: usize,
}

impl DirectMapping {
    /// Trains the mapper on offline evaluations (features → best expert).
    pub fn train(
        grid: ExpertGrid,
        evals: &[EvaluatedTrace],
        epoch: usize,
        warmup: usize,
        train_cfg: &TrainConfig,
        seed: u64,
    ) -> Self {
        assert!(!evals.is_empty(), "training needs evaluations");
        assert!(warmup > 0 && warmup < epoch, "warmup must fit inside the epoch");
        let rows: Vec<Vec<f64>> = evals.iter().map(|e| e.features.values().to_vec()).collect();
        let normalizer = Normalizer::fit(&rows);

        let fs: Vec<f64> = grid.experts().iter().map(|e| e.f() as f64).collect();
        let lss: Vec<f64> = grid.experts().iter().map(|e| (e.s_bytes() as f64).ln()).collect();
        let f_range = (
            fs.iter().cloned().fold(f64::INFINITY, f64::min),
            fs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        let ls_range = (
            lss.iter().cloned().fold(f64::INFINITY, f64::min),
            lss.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );

        let data: Vec<(Vec<f64>, Vec<f64>)> = evals
            .iter()
            .zip(&rows)
            .map(|(ev, row)| {
                let best = grid.get(ev.best_expert());
                let tf = norm_to(best.f() as f64, f_range);
                let ts = norm_to((best.s_bytes() as f64).ln(), ls_range);
                (normalizer.transform(row), vec![tf, ts])
            })
            .collect();

        let mut net = Mlp::new(rows[0].len(), 12, 2, OutputActivation::Sigmoid, seed);
        net.train(&data, train_cfg);
        Self { grid, normalizer, net, f_range, ls_range, epoch, warmup }
    }

    /// Predicts the expert for a raw feature vector (snapped to the grid).
    pub fn predict(&self, features: &darwin_features::FeatureVector) -> Expert {
        let z = self.normalizer.transform(features.values());
        let out = self.net.forward(&z);
        let f = denorm(out[0], self.f_range);
        let ls = denorm(out[1], self.ls_range);
        // Snap to the nearest grid expert in (f, ln s).
        *self
            .grid
            .experts()
            .iter()
            .min_by(|a, b| {
                let da = snap_dist(a, f, ls);
                let db = snap_dist(b, f, ls);
                da.partial_cmp(&db).unwrap()
            })
            .expect("non-empty grid")
    }

    /// Runs the baseline over a trace on a fresh server.
    pub fn run(&self, trace: &Trace, cache: &CacheConfig) -> CacheMetrics {
        let mut server = CacheServer::new(cache.clone());
        server.set_policy(self.grid.get(0).policy);
        let mut fx = FeatureExtractor::paper_default();
        let mut in_epoch = 0usize;
        let mut predicted = false;
        for r in trace {
            server.process(r);
            in_epoch += 1;
            if !predicted {
                fx.observe(r);
                if in_epoch >= self.warmup {
                    let e = self.predict(&fx.features());
                    server.set_policy(e.policy);
                    predicted = true;
                }
            }
            if in_epoch >= self.epoch {
                in_epoch = 0;
                predicted = false;
                fx = FeatureExtractor::paper_default();
            }
        }
        server.metrics()
    }
}

fn norm_to(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if hi <= lo {
        0.5
    } else {
        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
    }
}

fn denorm(v: f64, (lo, hi): (f64, f64)) -> f64 {
    lo + v.clamp(0.0, 1.0) * (hi - lo)
}

fn snap_dist(e: &Expert, f: f64, ls: f64) -> f64 {
    let df = e.f() as f64 - f;
    let dls = (e.s_bytes() as f64).ln() - ls;
    df * df + dls * dls
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin::offline::{OfflineConfig, OfflineTrainer};
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn evals_and_grid() -> (ExpertGrid, Vec<EvaluatedTrace>) {
        let grid = ExpertGrid::new(vec![
            Expert::new(1, 20),
            Expert::new(1, 500),
            Expert::new(6, 20),
            Expert::new(6, 500),
        ]);
        let trainer = OfflineTrainer::new(OfflineConfig {
            grid: grid.clone(),
            hoc_bytes: 2 * 1024 * 1024,
            nn_train: TrainConfig { epochs: 30, ..TrainConfig::default() },
            ..OfflineConfig::default()
        });
        let traces: Vec<Trace> = (0..6)
            .map(|i| {
                TraceGenerator::new(
                    MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 5.0),
                    30 + i as u64,
                )
                .generate(8_000)
            })
            .collect();
        let evals = trainer.evaluate_corpus(&traces);
        (grid, evals)
    }

    #[test]
    fn predicts_grid_experts() {
        let (grid, evals) = evals_and_grid();
        let dm = DirectMapping::train(
            grid.clone(),
            &evals,
            20_000,
            1_000,
            &TrainConfig { epochs: 200, ..TrainConfig::default() },
            1,
        );
        for ev in &evals {
            let e = dm.predict(&ev.features);
            assert!(grid.index_of(&e).is_some(), "prediction not in grid");
        }
    }

    #[test]
    fn run_accounts_all_requests() {
        let (grid, evals) = evals_and_grid();
        let dm = DirectMapping::train(
            grid,
            &evals,
            10_000,
            1_000,
            &TrainConfig { epochs: 100, ..TrainConfig::default() },
            2,
        );
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 9).generate(12_000);
        let m = dm.run(&trace, &CacheConfig::small_test());
        assert_eq!(m.requests as usize, trace.len());
    }

    #[test]
    #[should_panic(expected = "warmup must fit")]
    fn rejects_bad_epoch_shape() {
        let (grid, evals) = evals_and_grid();
        DirectMapping::train(grid, &evals, 100, 100, &TrainConfig::default(), 3);
    }
}
