//! The Percentile baseline (§6):
//!
//! "In N-request windows, we update the empirical distributions of
//! frequencies and sizes of incoming requests. For the next N requests, it
//! deploys the expert (f, s) with f, s closest to the 60th, 90th percentiles
//! (respectively) of the empirical distribution hitherto."

use darwin::{Expert, ExpertGrid};
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer};
use darwin_trace::{ObjectId, Request, Trace};
use std::collections::HashMap;

/// The Percentile adaptive baseline.
#[derive(Debug, Clone)]
pub struct Percentile {
    grid: ExpertGrid,
    /// Window length N in requests.
    pub window: usize,
    /// Frequency percentile (paper: 60).
    pub f_percentile: f64,
    /// Size percentile (paper: 90).
    pub s_percentile: f64,
}

impl Percentile {
    /// Baseline over `grid` with window `n` and the paper's percentiles.
    pub fn new(grid: ExpertGrid, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { grid, window, f_percentile: 60.0, s_percentile: 90.0 }
    }

    /// Tunes the percentile pair on training traces, as the paper does
    /// ("the percentile values are picked to be the best-performing ones
    /// for this window size"): grid-search over candidate (f, s) percentile
    /// pairs, maximizing mean HOC OHR.
    pub fn tuned(grid: ExpertGrid, window: usize, training: &[Trace], cache: &CacheConfig) -> Self {
        assert!(!training.is_empty(), "tuning needs at least one trace");
        let mut best = Self::new(grid.clone(), window);
        let mut best_ohr = f64::NEG_INFINITY;
        for &f_pct in &[40.0, 50.0, 60.0, 70.0, 80.0] {
            for &s_pct in &[70.0, 80.0, 90.0, 95.0] {
                let candidate =
                    Self { grid: grid.clone(), window, f_percentile: f_pct, s_percentile: s_pct };
                let mean_ohr: f64 =
                    training.iter().map(|t| candidate.run(t, cache).hoc_ohr()).sum::<f64>()
                        / training.len() as f64;
                if mean_ohr > best_ohr {
                    best_ohr = mean_ohr;
                    best = candidate;
                }
            }
        }
        best
    }

    /// The expert in the grid nearest to thresholds (f, s) (Euclidean in
    /// (f, log s) space — sizes span orders of magnitude).
    fn nearest_expert(&self, f: f64, s: f64) -> Expert {
        let ls = s.max(1.0).ln();
        *self
            .grid
            .experts()
            .iter()
            .min_by(|a, b| {
                let da = dist(a, f, ls);
                let db = dist(b, f, ls);
                da.partial_cmp(&db).unwrap()
            })
            .expect("non-empty grid")
    }

    /// Chooses the expert for the distribution observed in a window.
    /// `freqs` is the per-request frequency sample (the within-window request
    /// count of each request's object), `sizes` the per-request sizes.
    fn choose(&self, freqs: &mut [u32], sizes: &mut [u64]) -> Expert {
        let f = percentile_u32(freqs, self.f_percentile) as f64;
        let s = percentile_u64(sizes, self.s_percentile) as f64;
        self.nearest_expert(f, s)
    }

    /// Runs the baseline over a trace on a fresh server.
    pub fn run(&self, trace: &Trace, cache: &CacheConfig) -> CacheMetrics {
        let mut server = CacheServer::new(cache.clone());
        // Start from the grid's first expert until the first window closes.
        server.set_policy(self.grid.get(0).policy);

        let mut counts: HashMap<ObjectId, u32> = HashMap::new();
        let mut freqs: Vec<u32> = Vec::with_capacity(self.window);
        let mut sizes: Vec<u64> = Vec::with_capacity(self.window);
        let mut seen = 0usize;

        for r in trace {
            server.process(r);
            let c = counts.entry(r.id).or_insert(0);
            *c += 1;
            freqs.push(*c);
            sizes.push(r.size);
            seen += 1;
            if seen >= self.window {
                let expert = self.choose(&mut freqs, &mut sizes);
                server.set_policy(expert.policy);
                counts.clear();
                freqs.clear();
                sizes.clear();
                seen = 0;
            }
        }
        server.metrics()
    }

    /// Processes one request against an external server (for callers that
    /// own the server, e.g. the testbed). Returns a new expert at window
    /// boundaries.
    pub fn observe(&self, state: &mut PercentileState, req: &Request) -> Option<Expert> {
        let c = state.counts.entry(req.id).or_insert(0);
        *c += 1;
        state.freqs.push(*c);
        state.sizes.push(req.size);
        if state.freqs.len() >= self.window {
            let e = self.choose(&mut state.freqs, &mut state.sizes);
            state.counts.clear();
            state.freqs.clear();
            state.sizes.clear();
            return Some(e);
        }
        None
    }
}

fn dist(e: &Expert, f: f64, ls: f64) -> f64 {
    let df = e.f() as f64 - f;
    let dls = (e.s_bytes() as f64).ln() - ls;
    df * df + dls * dls
}

/// Streaming state for [`Percentile::observe`].
#[derive(Debug, Default, Clone)]
pub struct PercentileState {
    counts: HashMap<ObjectId, u32>,
    freqs: Vec<u32>,
    sizes: Vec<u64>,
}

fn percentile_u32(v: &mut [u32], p: f64) -> u32 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[((p / 100.0) * (v.len() - 1) as f64).round() as usize]
}

fn percentile_u64(v: &mut [u64], p: f64) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[((p / 100.0) * (v.len() - 1) as f64).round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    #[test]
    fn percentile_helpers() {
        let mut v: Vec<u32> = (1..=100).collect();
        assert_eq!(percentile_u32(&mut v, 60.0), 60);
        assert_eq!(percentile_u32(&mut v, 0.0), 1);
        assert_eq!(percentile_u32(&mut v, 100.0), 100);
        assert_eq!(percentile_u32(&mut [], 50.0), 0);
    }

    #[test]
    fn nearest_expert_prefers_close_thresholds() {
        let p = Percentile::new(ExpertGrid::paper_grid(), 1000);
        let e = p.nearest_expert(3.0, 95.0 * 1024.0);
        assert_eq!(e.f(), 3);
        assert_eq!(e.s_bytes(), 100 * 1024);
    }

    #[test]
    fn run_adapts_and_accounts_all_requests() {
        let trace = TraceGenerator::new(
            MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
            1,
        )
        .generate(20_000);
        let p = Percentile::new(ExpertGrid::paper_grid(), 5_000);
        let m = p.run(&trace, &CacheConfig::small_test());
        assert_eq!(m.requests as usize, trace.len());
        assert!(m.hoc_ohr() >= 0.0);
    }

    #[test]
    fn observe_emits_expert_at_window_boundary() {
        let p = Percentile::new(ExpertGrid::paper_grid(), 10);
        let mut st = PercentileState::default();
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 2).generate(25);
        let mut emitted = 0;
        for r in &trace {
            if p.observe(&mut st, r).is_some() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, 2, "two full windows of 10 in 25 requests");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The snapped expert is genuinely the nearest grid point in
        /// (f, ln s) space.
        #[test]
        fn nearest_expert_is_optimal(f in 0.0f64..10.0, s_kb in 1.0f64..4000.0) {
            let p = Percentile::new(ExpertGrid::paper_grid(), 100);
            let s_bytes = s_kb * 1024.0;
            let chosen = p.nearest_expert(f, s_bytes);
            let d_chosen = dist(&chosen, f, s_bytes.ln());
            for e in ExpertGrid::paper_grid().experts() {
                prop_assert!(
                    d_chosen <= dist(e, f, s_bytes.ln()) + 1e-9,
                    "{} closer than chosen {}", e.label(), chosen.label()
                );
            }
        }

        /// Percentile helpers are order statistics: result is an element of
        /// the input and respects percentile monotonicity.
        #[test]
        fn percentile_is_monotone_order_statistic(
            mut v in proptest::collection::vec(0u32..1000, 1..100)
        ) {
            let p30 = percentile_u32(&mut v, 30.0);
            let p70 = percentile_u32(&mut v, 70.0);
            prop_assert!(v.contains(&p30));
            prop_assert!(p30 <= p70);
        }
    }
}
