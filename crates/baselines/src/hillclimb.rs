//! The HillClimbing baseline (§6):
//!
//! "the learner deploys an expert (f, s) in the main cache for N requests
//! and concurrently runs two shadow caches; one each for experts
//! (f + Δf, s), (f, s + Δs). It then updates the main cache with the
//! best-performing expert of the three. When the expert deployed in the main
//! cache does not change, the shadow caches are updated to run (f − Δf, s),
//! (f, s − Δs)."
//!
//! The shadow caches are the approach's memory cost (R4 in §3.2.1) — here
//! they are HOC-only simulators fed the same request stream.

use darwin_cache::{
    CacheConfig, CacheMetrics, CacheServer, EvictionKind, HocSim, Objective, ThresholdPolicy,
};
use darwin_trace::Trace;

/// The HillClimbing adaptive baseline.
#[derive(Debug, Clone)]
pub struct HillClimbing {
    /// Frequency step Δf (paper: 1).
    pub delta_f: u32,
    /// Size step Δs in bytes (paper evaluates Δs ∈ {1 KB, 10 KB}; Table 2
    /// reports Δs ∈ {10 KB, 20 KB} variants).
    pub delta_s: u64,
    /// Epoch length N in requests (paper: 0.5 M).
    pub window: usize,
    /// Starting expert.
    pub start: ThresholdPolicy,
    /// Reward the climber maximizes.
    pub objective: Objective,
}

impl HillClimbing {
    /// Climber with the paper's defaults around a starting expert.
    pub fn new(start: ThresholdPolicy, delta_s: u64, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { delta_f: 1, delta_s, window, start, objective: Objective::HocOhr }
    }

    /// Runs the baseline over a trace on a fresh server.
    pub fn run(&self, trace: &Trace, cache: &CacheConfig) -> CacheMetrics {
        let mut main = CacheServer::new(cache.clone());
        let mut current = self.start;
        main.set_policy(current);

        // Direction of the shadow probes: +1 explores upward, −1 downward.
        let mut direction: i64 = 1;
        let (pf, ps) = self.probe_policies(current, direction);
        // Shadows persist across windows (warm caches, like the main cache);
        // only their policies change between windows.
        let mut shadow_f = HocSim::new(cache.hoc_bytes, EvictionKind::Lru, pf);
        let mut shadow_s = HocSim::new(cache.hoc_bytes, EvictionKind::Lru, ps);

        let mut main_snapshot = main.metrics();
        let mut shadow_f_snapshot = shadow_f.metrics();
        let mut shadow_s_snapshot = shadow_s.metrics();
        let mut seen = 0usize;

        for r in trace {
            main.process(r);
            shadow_f.process(r);
            shadow_s.process(r);
            seen += 1;
            if seen < self.window {
                continue;
            }
            seen = 0;

            let rm = self.objective.reward(&main.metrics().diff(&main_snapshot));
            let rf = self.objective.reward(&shadow_f.metrics().diff(&shadow_f_snapshot));
            let rs = self.objective.reward(&shadow_s.metrics().diff(&shadow_s_snapshot));

            let moved = if rf > rm && rf >= rs {
                current = shadow_f.policy();
                main.set_policy(current);
                true
            } else if rs > rm && rs > rf {
                current = shadow_s.policy();
                main.set_policy(current);
                true
            } else {
                false
            };

            if moved {
                direction = 1; // explore upward again from the new position
            } else {
                direction = -direction; // flip probes (paper: try f−Δf, s−Δs)
            }
            let (pf, ps) = self.probe_policies(current, direction);
            shadow_f.set_policy(pf);
            shadow_s.set_policy(ps);

            main_snapshot = main.metrics();
            shadow_f_snapshot = shadow_f.metrics();
            shadow_s_snapshot = shadow_s.metrics();
        }
        main.metrics()
    }

    /// The two probe policies (f ± Δf, s) and (f, s ± Δs).
    fn probe_policies(
        &self,
        current: ThresholdPolicy,
        direction: i64,
    ) -> (ThresholdPolicy, ThresholdPolicy) {
        let f = if direction > 0 {
            current.freq_threshold.saturating_add(self.delta_f)
        } else {
            current.freq_threshold.saturating_sub(self.delta_f)
        };
        let s = if direction > 0 {
            current.size_threshold.saturating_add(self.delta_s)
        } else {
            current.size_threshold.saturating_sub(self.delta_s).max(1024)
        };
        (
            ThresholdPolicy::new(f, current.size_threshold),
            ThresholdPolicy::new(current.freq_threshold, s),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    #[test]
    fn runs_and_accounts_all_requests() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 1).generate(15_000);
        let hc = HillClimbing::new(ThresholdPolicy::new(4, 50 * 1024), 10 * 1024, 3_000);
        let m = hc.run(&trace, &CacheConfig::small_test());
        assert_eq!(m.requests as usize, trace.len());
    }

    #[test]
    fn climbs_toward_better_expert() {
        // Download traffic strongly prefers permissive thresholds; starting
        // from a strict expert, climbing should improve on staying put.
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 2).generate(40_000);
        let cache = CacheConfig { hoc_bytes: 4 * 1024 * 1024, ..CacheConfig::small_test() };
        let strict = ThresholdPolicy::new(6, 20 * 1024);
        let hc = HillClimbing::new(strict, 20 * 1024, 4_000);
        let climbed = hc.run(&trace, &cache);

        let mut static_server = CacheServer::new(cache);
        static_server.set_policy(strict);
        let stayed = static_server.process_trace(&trace);

        assert!(
            climbed.hoc_ohr() >= stayed.hoc_ohr(),
            "climbing {} < static {}",
            climbed.hoc_ohr(),
            stayed.hoc_ohr()
        );
    }

    #[test]
    fn size_threshold_never_collapses_to_zero() {
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 3).generate(12_000);
        // Start at the minimum size; downward probes must clamp at 1 KB.
        let hc = HillClimbing::new(ThresholdPolicy::new(2, 1024), 10 * 1024, 2_000);
        let m = hc.run(&trace, &CacheConfig::small_test());
        assert_eq!(m.requests as usize, trace.len());
    }
}
