//! Hot-standby replication state for one shard.
//!
//! A [`StandbySlot`] is the in-process stand-in for a standby cache node:
//! the primary's worker *feeds* it a [`ReplicaFrame`] at every checkpoint
//! cut, and the slot plays both ends of the replication channel — it seals
//! the envelope exactly as a primary would put it on the wire, then decodes,
//! address-checks and applies it exactly as a remote standby would. The
//! first cut (and every re-seed after a promotion or a detected loss) ships
//! the full checkpoint image; steady-state cuts ship a
//! [`DeltaFrame`] against the frame the
//! standby already holds, so replication costs O(churn) bytes per
//! checkpoint window. The standby therefore always trails the primary by at
//! most one checkpoint window — the lag bound the failover contract quotes.
//!
//! When the shard's restart budget is exhausted, the fleet asks
//! [`ready`](StandbySlot::ready) and, on a
//! [`Promote`](crate::supervisor::SupervisorVerdict::Promote) verdict,
//! [`take_for_promotion`](StandbySlot::take_for_promotion) hands the last
//! applied frame over: the fleet installs it as the shard's newest restore
//! candidate and the respawned worker warm-restores it through the same
//! validated path every restart uses — which is why a promoted shard
//! answers bitwise-identically to an unfailed run from the checkpoint
//! boundary. Taking the frame empties the slot, so the next cut re-seeds a
//! fresh standby (full image) in the background.
//!
//! Every failure mode is detected and surfaced, never silent: a feed whose
//! envelope fails decoding, addressing or checkpoint validation marks the
//! standby *lost* ([`FeedOutcome::Lost`]); the next feed replaces it with a
//! fresh full seed ([`FeedOutcome::Replaced`]). A scripted
//! [`CorruptStandby`](crate::fault::FaultKind::CorruptStandby) fault drives
//! the same path deterministically via [`poison`](StandbySlot::poison).

use crate::ckpt::ShardCheckpoint;
use darwin_ckpt::delta::DeltaFrame;
use darwin_ckpt::replica::{ReplicaError, ReplicaFrame, ReplicaPayload, ReplicaRole};
use std::sync::Mutex;

/// What one replication feed did to the standby.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// The standby held no base: a full image was shipped and applied
    /// (first cut, or the background re-seed after a promotion).
    Seeded {
        /// Payload bytes the envelope shipped.
        shipped_bytes: u64,
    },
    /// Steady state: a delta against the standby's held frame was shipped
    /// and applied.
    Applied {
        /// Payload bytes the envelope shipped (O(churn), not O(cache)).
        shipped_bytes: u64,
        /// Sequence distance the delta covered (`seq - base_seq`) — bounded
        /// by one checkpoint window.
        lag: u64,
    },
    /// The standby had been lost (poisoned, or a previous feed failed
    /// validation); this feed detected the loss and seeded a fresh standby
    /// with a full image.
    Replaced {
        /// Payload bytes the replacement seed shipped.
        shipped_bytes: u64,
    },
    /// This feed's envelope failed decoding, addressing or checkpoint
    /// validation: the standby is now lost (nothing was applied). The next
    /// feed will replace it.
    Lost,
}

/// The standby's applied state: the last checkpoint frame it reconstructed
/// and the boundary it covers.
#[derive(Debug, Default)]
struct StandbyState {
    /// Last applied, fully validated checkpoint frame.
    frame: Option<Vec<u8>>,
    /// Request-sequence boundary of `frame`.
    seq: u64,
    /// True once the standby is known-bad: poisoned by a scripted fault or
    /// failed a feed's validation. A lost standby never serves a promotion.
    lost: bool,
}

/// One shard's hot standby, shared between the shard's worker (feeder) and
/// the fleet core (promotion at settlement).
#[derive(Debug)]
pub struct StandbySlot {
    shard: usize,
    state: Mutex<StandbyState>,
}

impl StandbySlot {
    /// An empty (unseeded) standby for `shard`.
    pub fn new(shard: usize) -> Self {
        Self { shard, state: Mutex::new(StandbyState::default()) }
    }

    /// Shard this standby replicates.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Feeds the checkpoint cut at `seq` (the sealed
    /// [`ShardCheckpoint`] frame bytes) through the replication channel:
    /// seals a role-tagged [`ReplicaFrame`] on the primary side, then
    /// decodes, address-checks, resolves and re-validates it on the standby
    /// side before storing. The loopback is deliberate — the bytes that
    /// reach the standby's state are exactly the bytes that survived the
    /// wire format's gauntlet, so a corrupted or misrouted envelope can
    /// fail loudly but never silently mis-apply.
    pub fn feed(&self, generation: u32, seq: u64, frame: &[u8]) -> FeedOutcome {
        let mut st = self.state.lock().expect("standby slot poisoned");
        let was_lost = std::mem::take(&mut st.lost);
        if was_lost {
            st.frame = None;
        }
        // Primary side: delta against the standby's held frame when it has
        // one, full image otherwise.
        let (payload, lag) = match &st.frame {
            Some(base) => {
                let delta = DeltaFrame::compute(base, frame);
                (
                    ReplicaPayload::Delta { base_seq: st.seq, frame: delta.to_frame() },
                    seq.saturating_sub(st.seq),
                )
            }
            None => (ReplicaPayload::Full(frame.to_vec()), 0),
        };
        let envelope =
            ReplicaFrame { shard: self.shard, generation, role: ReplicaRole::Primary, seq, payload };
        let wire = envelope.to_frame();
        // Standby side: full decode + apply gate + checkpoint re-validation.
        let applied = ReplicaFrame::from_frame(&wire)
            .map_err(ReplicaError::from)
            .and_then(|env| {
                let shipped = env.shipped_bytes();
                env.resolve(self.shard, generation, st.frame.as_deref()).map(|img| (img, shipped))
            })
            .ok()
            .filter(|(img, _)| {
                ShardCheckpoint::from_frame(img)
                    .map(|c| c.shard == self.shard && c.seq == seq)
                    .unwrap_or(false)
            });
        match applied {
            Some((image, shipped_bytes)) => {
                let seeded = st.frame.is_none();
                st.frame = Some(image);
                st.seq = seq;
                if was_lost {
                    FeedOutcome::Replaced { shipped_bytes }
                } else if seeded {
                    FeedOutcome::Seeded { shipped_bytes }
                } else {
                    FeedOutcome::Applied { shipped_bytes, lag }
                }
            }
            None => {
                st.frame = None;
                st.lost = true;
                FeedOutcome::Lost
            }
        }
    }

    /// True when the standby holds a validated frame and is not lost — the
    /// question the supervisor's
    /// [`on_worker_death_with_standby`](crate::supervisor::Supervisor::on_worker_death_with_standby)
    /// asks at settlement.
    pub fn ready(&self) -> bool {
        let st = self.state.lock().expect("standby slot poisoned");
        st.frame.is_some() && !st.lost
    }

    /// Request-sequence boundary of the standby's applied frame, if any.
    pub fn applied_seq(&self) -> Option<u64> {
        let st = self.state.lock().expect("standby slot poisoned");
        st.frame.as_ref().map(|_| st.seq)
    }

    /// Hands the applied frame over for a failover promotion and empties
    /// the slot (the next feed re-seeds a fresh standby). Returns `None`
    /// when the standby is lost or unseeded — the caller must then bury the
    /// shard exactly as an unreplicated fleet would.
    pub fn take_for_promotion(&self) -> Option<(Vec<u8>, u64)> {
        let mut st = self.state.lock().expect("standby slot poisoned");
        if st.lost {
            return None;
        }
        let frame = st.frame.take()?;
        let seq = st.seq;
        *st = StandbyState::default();
        Some((frame, seq))
    }

    /// Deterministic fault injection: discards the applied frame and marks
    /// the standby lost, as if the standby process had died. The loss is
    /// detected and journaled at the next feed (which also re-seeds); a
    /// budget-exhausting death before then falls back to burial.
    pub fn poison(&self) {
        let mut st = self.state.lock().expect("standby slot poisoned");
        st.frame = None;
        st.lost = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_cache::ThresholdPolicy;

    fn ckpt_frame(shard: usize, seq: u64, fill: u8) -> Vec<u8> {
        ShardCheckpoint {
            shard,
            seq,
            policy: ThresholdPolicy::new(2, 64 * 1024),
            cache: vec![fill; 4096],
            driver: vec![fill ^ 0xFF; 128],
            restarts: 1,
            budget_marks: vec![seq / 2],
        }
        .to_frame()
    }

    #[test]
    fn seed_then_deltas_stay_within_one_window() {
        let slot = StandbySlot::new(0);
        assert!(!slot.ready());
        assert_eq!(slot.applied_seq(), None);

        let f1 = ckpt_frame(0, 1_000, 0xAA);
        match slot.feed(0, 1_000, &f1) {
            FeedOutcome::Seeded { shipped_bytes } => {
                assert_eq!(shipped_bytes, f1.len() as u64, "first feed ships the full image");
            }
            other => panic!("expected Seeded, got {other:?}"),
        }
        assert!(slot.ready());
        assert_eq!(slot.applied_seq(), Some(1_000));

        // A lightly changed next cut ships O(churn), and the lag equals one
        // checkpoint window.
        let f2 = ckpt_frame(0, 2_000, 0xAA);
        match slot.feed(0, 2_000, &f2) {
            FeedOutcome::Applied { shipped_bytes, lag } => {
                assert_eq!(lag, 1_000);
                assert!(
                    shipped_bytes < f2.len() as u64 / 2,
                    "delta ({shipped_bytes}B) must undercut the full image ({}B)",
                    f2.len()
                );
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        // The applied frame is bitwise the primary's cut.
        let (frame, seq) = slot.take_for_promotion().expect("ready standby");
        assert_eq!(seq, 2_000);
        assert_eq!(frame, f2);
        // Taking empties the slot: the next feed is a fresh seed.
        assert!(!slot.ready());
        assert!(matches!(slot.feed(0, 3_000, &ckpt_frame(0, 3_000, 1)), FeedOutcome::Seeded { .. }));
    }

    #[test]
    fn poison_is_detected_then_replaced() {
        let slot = StandbySlot::new(2);
        slot.feed(0, 500, &ckpt_frame(2, 500, 7));
        assert!(slot.ready());
        slot.poison();
        assert!(!slot.ready());
        assert_eq!(slot.take_for_promotion(), None, "a lost standby never promotes");
        // The next feed detects the loss and seeds a replacement.
        match slot.feed(0, 1_000, &ckpt_frame(2, 1_000, 8)) {
            FeedOutcome::Replaced { .. } => {}
            other => panic!("expected Replaced, got {other:?}"),
        }
        assert!(slot.ready());
        assert_eq!(slot.applied_seq(), Some(1_000));
    }

    #[test]
    fn invalid_feed_loses_the_standby_never_applies() {
        let slot = StandbySlot::new(1);
        // A frame that is not a valid checkpoint for shard 1 (wrong shard
        // inside the sealed image) must not be applied.
        let wrong_shard = ckpt_frame(0, 500, 3);
        assert_eq!(slot.feed(0, 500, &wrong_shard), FeedOutcome::Lost);
        assert!(!slot.ready());
        // Garbage bytes: same story.
        let slot = StandbySlot::new(1);
        assert_eq!(slot.feed(0, 500, b"not a checkpoint"), FeedOutcome::Lost);
        assert!(!slot.ready());
        assert_eq!(slot.take_for_promotion(), None);
    }

    #[test]
    fn wrong_seq_checkpoint_is_refused() {
        // The envelope says seq 900 but the image was cut at 500: the
        // standby's re-validation refuses the mismatch.
        let slot = StandbySlot::new(0);
        assert_eq!(slot.feed(0, 900, &ckpt_frame(0, 500, 3)), FeedOutcome::Lost);
        assert!(!slot.ready());
    }
}
