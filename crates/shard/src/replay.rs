//! Deterministic replay: the sequential half of the fleet-equivalence
//! contract.
//!
//! Because a [`Router`] is a pure function of `(id, shards)` and each
//! shard's SPSC queue preserves submission order, shard `s` of a fleet
//! processes exactly [`partition`]`(trace, router, shards)[s]`, request for
//! request, with nothing else touching its state. [`run_partition`] executes
//! that same per-shard loop single-threaded, so
//! [`run_sequential`] reproduces — bitwise, including per-shard metrics,
//! final occupancy and every controller decision — what the threaded fleet
//! computes. `tests/equivalence.rs` holds the two sides against each other
//! at 1, 2 and 8 shards.
//!
//! Batched ingest does not weaken the invariant: delivering a staged
//! per-shard run with one `push_batch` publishes the run's items in staging
//! order, and staging order is submission order, so the shard still consumes
//! exactly its partition in partition order however large the runs are
//! (`tests/batched_ingest.rs` proptests this, including with concurrent
//! producers over disjoint shard groups).
//!
//! The replay side is also the measurement instrument for scale-out
//! projections: the wall time of the slowest partition bounds the fleet's
//! serving time on one-core-per-shard hardware (see the `shard` bench
//! experiment).

use crate::router::Router;
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer};
use darwin_testbed::AdmissionDriver;
use darwin_trace::{Request, Trace};

/// Splits `trace` into the per-shard sub-traces a fleet with this `router`
/// would deliver: sub-trace `s` holds, in original order, exactly the
/// requests whose IDs route to shard `s`.
pub fn partition(trace: &Trace, router: &dyn Router, shards: usize) -> Vec<Trace> {
    assert!(shards > 0, "at least one shard");
    let mut parts: Vec<Vec<Request>> = vec![Vec::new(); shards];
    for req in trace.iter() {
        parts[router.route(req.id, shards)].push(*req);
    }
    parts.into_iter().map(Trace::from_sorted).collect()
}

/// What one sequential single-shard run produced — the same fields a fleet's
/// [`ShardOutcome`](crate::fleet::ShardOutcome) carries for that shard.
#[derive(Debug)]
pub struct ShardRun<D> {
    /// Final cumulative cache metrics.
    pub cache: CacheMetrics,
    /// Requests processed.
    pub processed: u64,
    /// Final HOC occupancy, bytes.
    pub hoc_used_bytes: u64,
    /// Final DC occupancy, bytes.
    pub dc_used_bytes: u64,
    /// Label of the policy deployed at the end of the run.
    pub policy: String,
    /// The admission driver, returned for post-mortem inspection (switch
    /// histories of Darwin controllers, in particular).
    pub driver: D,
}

/// Runs one shard's partition sequentially: the exact per-request loop of
/// the fleet's worker thread (`fleet::worker`), minus the queue.
pub fn run_partition<D: AdmissionDriver>(
    cache: CacheConfig,
    mut driver: D,
    part: &Trace,
) -> ShardRun<D> {
    let mut server = CacheServer::new(cache);
    server.set_policy(driver.initial_policy());
    let mut processed = 0u64;
    for req in part.iter() {
        server.process(req);
        processed += 1;
        if let Some(policy) = driver.observe(req, &server.metrics()) {
            server.set_policy(policy);
        }
    }
    ShardRun {
        cache: server.metrics(),
        processed,
        hoc_used_bytes: server.hoc_used_bytes(),
        dc_used_bytes: server.dc_used_bytes(),
        policy: server.policy_label(),
        driver,
    }
}

/// Replays `trace` as N sequential single-shard runs: partitions it with
/// `router` and runs each shard's sub-trace through [`run_partition`] with
/// the driver `factory(s)` builds for it. The returned vector, indexed by
/// shard, is the ground truth the threaded fleet must match bitwise.
pub fn run_sequential<D: AdmissionDriver>(
    shards: usize,
    cache: CacheConfig,
    router: &dyn Router,
    mut factory: impl FnMut(usize) -> D,
    trace: &Trace,
) -> Vec<ShardRun<D>> {
    partition(trace, router, shards)
        .iter()
        .enumerate()
        .map(|(s, part)| run_partition(cache.clone(), factory(s), part))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HashRouter, ModuloRouter};
    use darwin_cache::ThresholdPolicy;
    use darwin_testbed::StaticDriver;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn trace(n: usize, seed: u64) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
    }

    #[test]
    fn partition_covers_every_request_in_order() {
        let t = trace(5_000, 1);
        for shards in [1usize, 2, 3, 8] {
            let parts = partition(&t, &HashRouter, shards);
            assert_eq!(parts.len(), shards);
            assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), t.len());
            for (s, p) in parts.iter().enumerate() {
                // Each sub-trace keeps submission (= timestamp) order and
                // contains only requests routed to shard s.
                assert!(p.requests().windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
                assert!(p.iter().all(|r| HashRouter.route(r.id, shards) == s));
            }
        }
    }

    #[test]
    fn one_shard_partition_is_the_trace() {
        let t = trace(2_000, 2);
        let parts = partition(&t, &ModuloRouter, 1);
        assert_eq!(parts[0], t);
    }

    #[test]
    fn run_partition_matches_direct_server_run() {
        let t = trace(10_000, 7);
        let run = run_partition(
            CacheConfig::small_test(),
            StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
            &t,
        );
        let mut server = CacheServer::new(CacheConfig::small_test());
        server.set_policy(ThresholdPolicy::new(1, 100 * 1024));
        let m = server.process_trace(&t);
        assert_eq!(run.cache, m);
        assert_eq!(run.processed, t.len() as u64);
        assert_eq!(run.hoc_used_bytes, server.hoc_used_bytes());
        assert_eq!(run.dc_used_bytes, server.dc_used_bytes());
        assert_eq!(run.policy, "f1s100");
    }

    #[test]
    fn sequential_runs_cover_the_trace() {
        let t = trace(8_000, 3);
        let runs = run_sequential(
            4,
            CacheConfig::small_test(),
            &HashRouter,
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
            &t,
        );
        assert_eq!(runs.iter().map(|r| r.processed).sum::<u64>(), 8_000);
        let total = CacheMetrics::merge_all(runs.iter().map(|r| &r.cache));
        assert_eq!(total.requests, 8_000);
        assert_eq!(total.hoc_hits + total.dc_hits + total.origin_fetches, 8_000);
    }
}
