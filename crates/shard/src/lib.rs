#![warn(missing_docs)]

//! # darwin-shard
//!
//! The sharded concurrent serving layer: a hash-partitioned fleet of HOC
//! cache servers with per-shard Darwin controllers.
//!
//! The paper deploys Darwin inside a real proxy where "the learning logic is
//! not in the critical path of cache processing" (§5); production CDNs scale
//! that proxy by hash-partitioning the object space across independent cache
//! shards. This crate reproduces that shape:
//!
//! ```text
//!                       ┌─────────────────────────── ShardedFleet ───────┐
//!                       │  ┌─ SPSC queue 0 ─┐   ┌─ worker thread 0 ────┐ │
//!  submit(req) ─ Router ┼─▶│ bounded,       │──▶│ CacheServer (HOC+DC) │ │
//!        │              │  │ backpressure   │   │ + AdmissionDriver    │ │
//!        │              │  └────────────────┘   │   (Darwin ctrl #0)   │ │
//!        │              │          ⋮            └──────────┬───────────┘ │
//!        │              │  ┌────────────────┐   ┌──────────▼───────────┐ │
//!        └──────────────┼─▶│ SPSC queue N−1 │──▶│ worker N−1 / ctrl N−1│ │
//!                       │  └────────────────┘   └──────────┬───────────┘ │
//!                       │                         FleetMetrics (agg)     │
//!                       └────────────────────────────────────────────────┘
//! ```
//!
//! * [`router`] — pure `(id, shards) → shard` placement ([`HashRouter`] by
//!   default; the [`Router`] trait is the seam for locality-aware routing).
//! * [`queue`] — bounded SPSC queues with blocking or drop-with-counter
//!   backpressure and occupancy gauges.
//! * [`fleet`] — [`ShardedFleet`]: one worker thread, cache server, queue
//!   and [`AdmissionDriver`](darwin_testbed::AdmissionDriver) per shard
//!   (with `DarwinDriver` drivers that is one Darwin controller per shard,
//!   each learning its own sub-workload).
//! * [`metrics`] — [`FleetMetrics`]: per-shard and fleet-wide OHR / BMR /
//!   disk-write aggregation, queue depth and backpressure counters, restart
//!   and degraded-mode state, periodic snapshots.
//! * [`supervisor`] — per-shard restart policy: a [`Supervisor`] grants cold
//!   restarts against a sliding-window [`RestartBudget`] and marks shards
//!   permanently dead once it is spent (the fleet then answers their
//!   requests `Unavailable` — degraded mode, not an outage).
//! * [`fault`] — deterministic chaos scripting: a [`FaultPlan`] keys panics,
//!   delays, queue-full stalls and checkpoint corruption off per-shard
//!   request sequence numbers, so fault runs reproduce bit-for-bit (no wall
//!   clock anywhere).
//! * [`standby`] — hot-standby replication: a per-shard [`StandbySlot`] fed
//!   a role-tagged replica frame (full image, then O(churn) deltas) at every
//!   checkpoint cut. When a shard's restart budget is exhausted the standby
//!   is *promoted* — its last applied frame is installed and the worker
//!   warm-restarts from it, bitwise-identical to an unfailed run from the
//!   checkpoint boundary — instead of burying the shard
//!   (`tests/failover.rs`).
//! * [`ckpt`] — warm-restart checkpoints: a versioned, CRC-64-guarded
//!   [`ShardCheckpoint`] frame (cache image + driver state + deployed
//!   policy) taken at request-sequence boundaries into a double-buffered
//!   [`CheckpointSlot`] with optional atomic-rename disk spill. A respawned
//!   worker restores the latest valid frame (warm restart) and falls back
//!   cold when none validates.
//! * [`replay`] — the deterministic sequential side of the equivalence
//!   contract: an N-shard fleet over a hash-partitioned trace is bitwise
//!   identical to N sequential single-shard runs (`tests/equivalence.rs`
//!   enforces this at 1, 2 and 8 shards).
//!
//! Observability rides along via [`darwin_obs`]: each shard's cell carries
//! serve / queue-wait / checkpoint-pause latency histograms and a bounded
//! journal of typed events (deaths, restart verdicts, warm/cold restores,
//! expert switches, drift, faults, checkpoint cuts, switching-cost windows),
//! all stamped with request sequence numbers so seeded runs journal
//! identically (`tests/journal_determinism.rs`).

pub mod ckpt;
pub mod fault;
pub mod fleet;
pub mod metrics;
pub mod queue;
pub mod replay;
pub mod router;
pub mod standby;
pub mod supervisor;

pub use ckpt::{CheckpointSlot, ShardCheckpoint, CKPT_MAGIC, CKPT_VERSION};
pub use darwin_obs::{Event, EventKind, JournalSnapshot, LatencySnapshot};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use fleet::{
    Backpressure, Envelope, FleetBoot, FleetConfig, FleetIngest, FleetProducer, FleetReport,
    ShardOutcome, ShardedFleet, Verdict,
};
pub use metrics::{
    FleetMetrics, GatewaySnapshot, GenerationSummary, MetricsHandle, ShardCell, ShardPhase,
    ShardSnapshot,
};
pub use queue::{channel, Consumer, Producer, QueueGauges};
pub use replay::{partition, run_partition, run_sequential, ShardRun};
pub use router::{HashRouter, ModuloRouter, Router};
pub use standby::{FeedOutcome, StandbySlot};
pub use supervisor::{RestartBudget, Supervisor, SupervisorVerdict};
