//! Bounded SPSC request queues with explicit backpressure.
//!
//! Each shard worker is fed by exactly one of these: the fleet's router
//! thread is the single producer, the shard's worker thread the single
//! consumer (enforced by move semantics — neither endpoint is `Clone`).
//! Capacity is fixed at construction; when the queue fills, the producer
//! either *blocks* until the worker drains (lossless backpressure, the
//! replay/determinism mode) or *drops* the overflow while counting it (the
//! load-shedding mode a production front-end would run).
//!
//! Batch operations (`push_all` / `pop_batch`) move many items under one
//! lock acquisition, so per-request synchronization cost amortizes away at
//! fleet throughput. Depth and high-water gauges are published through
//! [`QueueGauges`] for the fleet metrics aggregator.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Live occupancy gauges of one queue, readable from any thread.
#[derive(Debug, Default)]
pub struct QueueGauges {
    depth: AtomicUsize,
    high_water: AtomicUsize,
}

impl QueueGauges {
    /// Items currently enqueued.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Maximum depth ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    fn set_depth(&self, d: usize) {
        self.depth.store(d, Ordering::Relaxed);
        self.high_water.fetch_max(d, Ordering::Relaxed);
    }
}

struct Inner<T> {
    buf: VecDeque<T>,
    producer_closed: bool,
    consumer_closed: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    gauges: Arc<QueueGauges>,
}

/// Creates a bounded SPSC queue of `capacity` items.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "queue capacity must be positive");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buf: VecDeque::with_capacity(capacity.min(64 * 1024)),
            producer_closed: false,
            consumer_closed: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        gauges: Arc::new(QueueGauges::default()),
    });
    (Producer { shared: Arc::clone(&shared) }, Consumer { shared })
}

/// The sending endpoint. Dropping it closes the queue; the consumer drains
/// what remains and then observes end-of-stream.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving endpoint. Dropping it makes subsequent pushes fail fast
/// (the items are returned/dropped, never silently lost in a dead queue).
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Producer<T> {
    /// The queue's occupancy gauges.
    pub fn gauges(&self) -> Arc<QueueGauges> {
        Arc::clone(&self.shared.gauges)
    }

    /// Blocking push of every item in `batch` (drained front-to-back,
    /// preserving order). Blocks while the queue is full. Returns the number
    /// of items *not* delivered because the consumer disappeared (0 on
    /// success).
    pub fn push_all(&self, batch: &mut Vec<T>) -> usize {
        let mut undelivered = 0usize;
        let mut inner = self.shared.inner.lock().expect("queue poisoned");
        let mut iter = batch.drain(..);
        'outer: loop {
            let Some(item) = iter.next() else { break };
            loop {
                if inner.consumer_closed {
                    undelivered = 1 + iter.count();
                    break 'outer;
                }
                if inner.buf.len() < self.shared.capacity {
                    inner.buf.push_back(item);
                    self.shared.gauges.set_depth(inner.buf.len());
                    self.shared.not_empty.notify_one();
                    break;
                }
                inner = self.shared.not_full.wait(inner).expect("queue poisoned");
            }
        }
        undelivered
    }

    /// True once the consumer endpoint is gone (worker thread exited or
    /// panicked): subsequent pushes will fail fast. This is the supervisor's
    /// death-detection signal on the `DropNewest` path, where a failed push
    /// is otherwise indistinguishable from ordinary overflow.
    pub fn is_closed(&self) -> bool {
        self.shared.inner.lock().expect("queue poisoned").consumer_closed
    }

    /// Non-blocking push: items that fit are enqueued in order, the overflow
    /// is dropped. Returns the number of dropped items (also counting every
    /// item when the consumer is gone).
    pub fn try_push_all(&self, batch: &mut Vec<T>) -> usize {
        let mut inner = self.shared.inner.lock().expect("queue poisoned");
        if inner.consumer_closed {
            let n = batch.len();
            batch.clear();
            return n;
        }
        let space = self.shared.capacity - inner.buf.len();
        let deliver = batch.len().min(space);
        let dropped = batch.len() - deliver;
        for item in batch.drain(..deliver) {
            inner.buf.push_back(item);
        }
        batch.clear();
        if deliver > 0 {
            self.shared.gauges.set_depth(inner.buf.len());
            self.shared.not_empty.notify_one();
        }
        dropped
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("queue poisoned");
        inner.producer_closed = true;
        self.shared.not_empty.notify_one();
    }
}

impl<T> Consumer<T> {
    /// The queue's occupancy gauges.
    pub fn gauges(&self) -> Arc<QueueGauges> {
        Arc::clone(&self.shared.gauges)
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// True once the producer endpoint has been dropped (end of stream —
    /// possibly with items still buffered).
    pub fn is_producer_closed(&self) -> bool {
        self.shared.inner.lock().expect("queue poisoned").producer_closed
    }

    /// Closes the queue from the consumer side and destroys everything still
    /// buffered, returning how many items that was. A panicking shard worker
    /// calls this from its unwind handler so in-flight envelopes are answered
    /// (their destructors file `Dropped` verdicts) *and counted*; afterwards
    /// every producer push fails fast, which is what the supervisor's
    /// organic-death detection keys on.
    pub fn close(&self) -> usize {
        let mut inner = self.shared.inner.lock().expect("queue poisoned");
        inner.consumer_closed = true;
        let stranded: VecDeque<T> = std::mem::take(&mut inner.buf);
        self.shared.gauges.set_depth(0);
        drop(inner);
        self.shared.not_full.notify_one();
        let n = stranded.len();
        drop(stranded);
        n
    }

    /// Blocks until at least one item is available (or the producer closed),
    /// then moves up to `max` items into `out` preserving order. Returns
    /// false when the stream is exhausted (producer closed and queue empty).
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> bool {
        let mut inner = self.shared.inner.lock().expect("queue poisoned");
        while inner.buf.is_empty() {
            if inner.producer_closed {
                return false;
            }
            inner = self.shared.not_empty.wait(inner).expect("queue poisoned");
        }
        let take = inner.buf.len().min(max.max(1));
        out.extend(inner.buf.drain(..take));
        self.shared.gauges.set_depth(inner.buf.len());
        self.shared.not_full.notify_one();
        true
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("queue poisoned");
        inner.consumer_closed = true;
        // A consumer that dies with items still buffered (a panicking shard
        // worker) would otherwise strand them in the channel until the
        // producer side is torn down. Drain them now — outside the lock — so
        // item destructors run promptly; gateway envelopes, for example,
        // answer their pending request with a `Dropped` verdict from `Drop`.
        let stranded: VecDeque<T> = std::mem::take(&mut inner.buf);
        self.shared.gauges.set_depth(0);
        drop(inner);
        self.shared.not_full.notify_one();
        drop(stranded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved_across_batches() {
        let (tx, rx) = channel::<u32>(128);
        let mut batch: Vec<u32> = (0..100).collect();
        assert_eq!(tx.push_all(&mut batch), 0);
        assert!(batch.is_empty());
        drop(tx);
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.pop_batch(&mut buf, 7) {
            got.append(&mut buf);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_push_drops_overflow_and_counts_it() {
        let (tx, rx) = channel::<u32>(4);
        let mut batch: Vec<u32> = (0..10).collect();
        let dropped = tx.try_push_all(&mut batch);
        assert_eq!(dropped, 6, "only 4 fit");
        assert_eq!(rx.gauges().depth(), 4);
        assert_eq!(rx.gauges().high_water(), 4);
        // The 4 oldest survive (drop-newest policy).
        let mut buf = Vec::new();
        assert!(rx.pop_batch(&mut buf, 10));
        assert_eq!(buf, vec![0, 1, 2, 3]);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let (tx, rx) = channel::<u64>(8);
        let producer = std::thread::spawn(move || {
            let mut total = 0usize;
            for chunk in 0..50u64 {
                let mut batch: Vec<u64> = (chunk * 10..chunk * 10 + 10).collect();
                total += batch.len();
                assert_eq!(tx.push_all(&mut batch), 0);
            }
            total
        });
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.pop_batch(&mut buf, 16) {
            got.append(&mut buf);
        }
        assert_eq!(producer.join().unwrap(), 500);
        assert_eq!(got.len(), 500);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved under blocking");
        assert!(rx.gauges().high_water() <= 8, "capacity bound respected");
    }

    #[test]
    fn consumer_drop_fails_pushes_fast() {
        let (tx, rx) = channel::<u32>(2);
        drop(rx);
        let mut batch = vec![1, 2, 3];
        assert_eq!(tx.push_all(&mut batch), 3, "all undelivered");
        let mut batch = vec![4, 5];
        assert_eq!(tx.try_push_all(&mut batch), 2);
    }

    #[test]
    fn producer_drop_ends_stream_after_drain() {
        let (tx, rx) = channel::<u32>(8);
        let mut batch = vec![1, 2];
        tx.push_all(&mut batch);
        drop(tx);
        let mut buf = Vec::new();
        assert!(rx.pop_batch(&mut buf, 10));
        assert_eq!(buf, vec![1, 2]);
        assert!(!rx.pop_batch(&mut buf, 10), "closed and empty ⇒ end of stream");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = channel::<u32>(0);
    }

    #[test]
    fn close_counts_and_destroys_buffered_items() {
        let (tx, rx) = channel::<u32>(8);
        let mut batch = vec![1, 2, 3];
        assert_eq!(tx.push_all(&mut batch), 0);
        assert!(!tx.is_closed());
        assert_eq!(rx.capacity(), 8);
        assert!(!rx.is_producer_closed());
        assert_eq!(rx.close(), 3, "all buffered items destroyed and counted");
        assert_eq!(rx.gauges().depth(), 0);
        assert!(tx.is_closed());
        let mut batch = vec![4];
        assert_eq!(tx.push_all(&mut batch), 1, "pushes fail fast after close");
        drop(tx);
        assert!(rx.is_producer_closed());
    }

    #[test]
    fn consumer_drop_runs_destructors_of_buffered_items() {
        // A dead consumer (panicked worker) must not strand buffered items:
        // their destructors run at consumer drop, not at producer teardown.
        let flag = Arc::new(AtomicUsize::new(0));
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = channel::<Probe>(8);
        let mut batch = vec![Probe(Arc::clone(&flag)), Probe(Arc::clone(&flag))];
        assert_eq!(tx.push_all(&mut batch), 0);
        assert_eq!(flag.load(Ordering::SeqCst), 0, "buffered items are alive");
        drop(rx);
        assert_eq!(flag.load(Ordering::SeqCst), 2, "consumer drop released them");
        assert_eq!(tx.gauges().depth(), 0);
    }
}
