//! Bounded SPSC request queues with explicit backpressure.
//!
//! Each shard worker is fed by exactly one of these: a single producer
//! endpoint (serialized by the fleet's per-shard lane lock) and the shard's
//! worker thread as the single consumer (enforced by move semantics —
//! neither endpoint is `Clone`). Capacity is fixed at construction; when the
//! queue fills, the producer either *blocks* until the worker drains
//! (lossless backpressure, the replay/determinism mode) or *drops* the
//! overflow while counting it (the load-shedding mode a production
//! front-end would run).
//!
//! The queue is a lock-free ring on the hot path: items live in a
//! fixed-size slot array, the producer and consumer each own a monotonic
//! index, and the two indices are padded onto separate cache lines so a
//! pushing gateway connection and a draining shard worker never false-share.
//! Batch operations ([`Producer::push_batch`] / [`Consumer::pop_batch`])
//! publish a whole run of items with **one** release-store of the index and
//! **one** gauge update, so per-request synchronization cost amortizes away
//! at fleet throughput. Blocking is hybrid: the fast path never touches a
//! lock, and a would-be sleeper parks on a condvar behind a Dekker-style
//! waiting flag (seq-cst fences pair the flag with the index publish, so a
//! wakeup can never be lost).
//!
//! Depth and high-water gauges are published through [`QueueGauges`] for the
//! fleet metrics aggregator. Gauge updates are *relative*
//! (`fetch_add`/`fetch_sub`), never absolute stores: the producer adds
//! before publishing its tail and the consumer subtracts before publishing
//! its head, which keeps the counter within `[0, capacity]` and means a
//! concurrent pop can never overwrite (and thereby hide) a depth peak
//! before `fetch_max` records it.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Pads (and aligns) a value to its own 128-byte cache-line pair, so the
/// producer's tail index and the consumer's head index never share a line
/// (128 covers adjacent-line prefetching on current x86).
#[repr(align(128))]
struct CachePadded<T>(T);

/// Live occupancy gauges of one queue, readable from any thread.
#[derive(Debug, Default)]
pub struct QueueGauges {
    depth: AtomicUsize,
    high_water: AtomicUsize,
}

impl QueueGauges {
    /// Items currently enqueued.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Maximum depth ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Producer side: `n` items entering the queue. The returned sum is
    /// exact at this instant (no read-modify-write gap), so the high-water
    /// mark can never miss a peak.
    fn add_depth(&self, n: usize) {
        let now = self.depth.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Consumer side: `n` items leaving the queue.
    fn sub_depth(&self, n: usize) {
        self.depth.fetch_sub(n, Ordering::Relaxed);
    }
}

/// The shared ring. `head`/`tail` are monotonic; the slot for index `i` is
/// `i & mask` (the slot array is the capacity rounded up to a power of two,
/// while *logical* occupancy is bounded by the exact `capacity`).
struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    capacity: usize,
    /// Consumer's pop index (next slot to read). Written only by the
    /// consumer, with `Release`; read by the producer with `Acquire`.
    head: CachePadded<AtomicUsize>,
    /// Producer's push index (next slot to write). Written only by the
    /// producer, with `Release`; read by the consumer with `Acquire`.
    tail: CachePadded<AtomicUsize>,
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    /// Hybrid-blocking support: sleepers park here; the fast path never
    /// touches it.
    sleep: Mutex<()>,
    not_full: Condvar,
    not_empty: Condvar,
    producer_waiting: AtomicBool,
    consumer_waiting: AtomicBool,
    gauges: Arc<QueueGauges>,
}

// SAFETY: the slot array is a hand-rolled SPSC channel. Items are only ever
// accessed by the endpoint that currently owns their index range (producer:
// [tail, head+capacity); consumer: [head, tail)), with ownership transferred
// by the Release/Acquire index publications below.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// SAFETY: caller owns slot `index` (see the Send/Sync note).
    unsafe fn write_slot(&self, index: usize, item: T) {
        (*self.slots[index & self.mask].get()).write(item);
    }

    /// SAFETY: caller owns slot `index` and it holds an initialized item.
    unsafe fn read_slot(&self, index: usize) -> T {
        (*self.slots[index & self.mask].get()).assume_init_read()
    }

    fn occupancy(&self, tail: usize, head: usize) -> usize {
        tail.wrapping_sub(head)
    }

    /// Wakes a parked consumer, if any. Callers publish their state change
    /// (tail store or close flag) *before* this; the seq-cst fence pairs
    /// with the one in [`Ring::wait_not_empty`] so either the sleeper's
    /// re-check sees the new state or this load sees its waiting flag —
    /// both missing (the lost-wakeup interleaving) is the store-buffering
    /// outcome seq-cst fences forbid.
    fn wake_consumer(&self) {
        fence(Ordering::SeqCst);
        if self.consumer_waiting.load(Ordering::Relaxed) {
            // Acquiring the sleep lock serializes with the sleeper between
            // its flag store and its `wait`, so the notify cannot land in
            // that window and vanish.
            drop(self.sleep.lock().expect("queue sleep lock poisoned"));
            self.not_empty.notify_all();
        }
    }

    /// Wakes a parked producer, if any (same protocol as
    /// [`Ring::wake_consumer`], against [`Ring::wait_not_full`]).
    fn wake_producer(&self) {
        fence(Ordering::SeqCst);
        if self.producer_waiting.load(Ordering::Relaxed) {
            drop(self.sleep.lock().expect("queue sleep lock poisoned"));
            self.not_full.notify_all();
        }
    }

    /// Parks the producer until the queue may have space (or the consumer
    /// closed). Spurious returns are fine — the caller re-checks.
    fn wait_not_full(&self) {
        let guard = self.sleep.lock().expect("queue sleep lock poisoned");
        self.producer_waiting.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if self.occupancy(tail, head) >= self.capacity && !self.consumer_closed.load(Ordering::Acquire) {
            drop(self.not_full.wait(guard).expect("queue sleep lock poisoned"));
        } else {
            drop(guard);
        }
        self.producer_waiting.store(false, Ordering::Relaxed);
    }

    /// Parks the consumer until the queue may have items (or the producer
    /// closed). Spurious returns are fine — the caller re-checks.
    fn wait_not_empty(&self) {
        let guard = self.sleep.lock().expect("queue sleep lock poisoned");
        self.consumer_waiting.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if self.occupancy(tail, head) == 0 && !self.producer_closed.load(Ordering::Acquire) {
            drop(self.not_empty.wait(guard).expect("queue sleep lock poisoned"));
        } else {
            drop(guard);
        }
        self.consumer_waiting.store(false, Ordering::Relaxed);
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (`&mut self` proves exclusivity): destroy
        // whatever is still buffered — e.g. items a producer raced into the
        // ring after the consumer's close-drain. Their destructors answer
        // any envelopes riding inside.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let n = self.occupancy(tail, head);
        for k in 0..n {
            drop(unsafe { self.read_slot(head.wrapping_add(k)) });
        }
        if n > 0 {
            self.gauges.sub_depth(n);
        }
    }
}

/// Creates a bounded SPSC queue of `capacity` items.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "queue capacity must be positive");
    let slots = capacity.next_power_of_two();
    let ring = Arc::new(Ring {
        slots: (0..slots).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        mask: slots - 1,
        capacity,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        sleep: Mutex::new(()),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        producer_waiting: AtomicBool::new(false),
        consumer_waiting: AtomicBool::new(false),
        gauges: Arc::new(QueueGauges::default()),
    });
    (Producer { ring: Arc::clone(&ring) }, Consumer { ring })
}

/// The sending endpoint. Dropping it closes the queue; the consumer drains
/// what remains and then observes end-of-stream.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// The receiving endpoint. Dropping it makes subsequent pushes fail fast
/// (the items are returned/dropped, never silently lost in a dead queue).
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Producer<T> {
    /// The queue's occupancy gauges.
    pub fn gauges(&self) -> Arc<QueueGauges> {
        Arc::clone(&self.ring.gauges)
    }

    /// Blocking push of every item in `batch` (drained front-to-back,
    /// preserving order). Each run of items that fits is published with a
    /// single tail store; the call blocks while the queue is full. Returns
    /// the number of items *not* delivered because the consumer disappeared
    /// (0 on success); the undelivered remainder is destroyed.
    pub fn push_batch(&self, batch: &mut Vec<T>) -> usize {
        let ring = &*self.ring;
        let total = batch.len();
        let mut delivered = 0usize;
        let mut iter = batch.drain(..);
        while delivered < total {
            if ring.consumer_closed.load(Ordering::Acquire) {
                break;
            }
            let tail = ring.tail.0.load(Ordering::Relaxed);
            let head = ring.head.0.load(Ordering::Acquire);
            let free = ring.capacity - ring.occupancy(tail, head);
            if free == 0 {
                ring.wait_not_full();
                continue;
            }
            let run = free.min(total - delivered);
            for k in 0..run {
                let item = iter.next().expect("drain yields every remaining item");
                unsafe { ring.write_slot(tail.wrapping_add(k), item) };
            }
            // Gauge *before* the tail publish (and the consumer subtracts
            // before its head publish): the producer's free-space check can
            // only observe head values whose subtraction already landed, so
            // the depth counter stays within [0, capacity].
            ring.gauges.add_depth(run);
            ring.tail.0.store(tail.wrapping_add(run), Ordering::Release);
            ring.wake_consumer();
            delivered += run;
        }
        // `iter`'s drop destroys the undelivered remainder (consumer gone).
        total - delivered
    }

    /// Non-blocking push: the items that fit are enqueued in order with one
    /// tail store, the overflow is dropped. Returns the number of dropped
    /// items (also counting every item when the consumer is gone).
    pub fn try_push_batch(&self, batch: &mut Vec<T>) -> usize {
        let ring = &*self.ring;
        let total = batch.len();
        if ring.consumer_closed.load(Ordering::Acquire) {
            batch.clear();
            return total;
        }
        let tail = ring.tail.0.load(Ordering::Relaxed);
        let head = ring.head.0.load(Ordering::Acquire);
        let free = ring.capacity - ring.occupancy(tail, head);
        let deliver = total.min(free);
        {
            let mut iter = batch.drain(..);
            for k in 0..deliver {
                let item = iter.next().expect("drain yields every remaining item");
                unsafe { ring.write_slot(tail.wrapping_add(k), item) };
            }
            // The drain's drop destroys the shed overflow.
        }
        if deliver > 0 {
            ring.gauges.add_depth(deliver);
            ring.tail.0.store(tail.wrapping_add(deliver), Ordering::Release);
            ring.wake_consumer();
        }
        total - deliver
    }

    /// True once the consumer endpoint is gone (worker thread exited or
    /// panicked): subsequent pushes will fail fast. This is the supervisor's
    /// death-detection signal on the `DropNewest` path, where a failed push
    /// is otherwise indistinguishable from ordinary overflow.
    pub fn is_closed(&self) -> bool {
        self.ring.consumer_closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.producer_closed.store(true, Ordering::Release);
        self.ring.wake_consumer();
    }
}

impl<T> Consumer<T> {
    /// The queue's occupancy gauges.
    pub fn gauges(&self) -> Arc<QueueGauges> {
        Arc::clone(&self.ring.gauges)
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity
    }

    /// True once the producer endpoint has been dropped (end of stream —
    /// possibly with items still buffered).
    pub fn is_producer_closed(&self) -> bool {
        self.ring.producer_closed.load(Ordering::Acquire)
    }

    /// Closes the queue from the consumer side and destroys everything still
    /// buffered, returning how many items that was. A panicking shard worker
    /// calls this from its unwind handler so in-flight envelopes are answered
    /// (their destructors file `Dropped` verdicts) *and counted*; afterwards
    /// every producer push fails fast, which is what the supervisor's
    /// organic-death detection keys on. (An item a producer races in after
    /// the drain below is destroyed at ring teardown instead.)
    pub fn close(&self) -> usize {
        let ring = &*self.ring;
        ring.consumer_closed.store(true, Ordering::Release);
        let mut destroyed = 0usize;
        loop {
            let head = ring.head.0.load(Ordering::Relaxed);
            let tail = ring.tail.0.load(Ordering::Acquire);
            let n = ring.occupancy(tail, head);
            if n == 0 {
                break;
            }
            for k in 0..n {
                drop(unsafe { ring.read_slot(head.wrapping_add(k)) });
            }
            ring.gauges.sub_depth(n);
            ring.head.0.store(head.wrapping_add(n), Ordering::Release);
            destroyed += n;
        }
        ring.wake_producer();
        destroyed
    }

    /// Blocks until at least one item is available (or the producer closed),
    /// then moves up to `max` items into `out` preserving order. Returns
    /// false when the stream is exhausted (producer closed and queue empty).
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> bool {
        let ring = &*self.ring;
        loop {
            let head = ring.head.0.load(Ordering::Relaxed);
            let tail = ring.tail.0.load(Ordering::Acquire);
            let avail = ring.occupancy(tail, head);
            if avail == 0 {
                if ring.producer_closed.load(Ordering::Acquire) {
                    // The close flag is set after the final tail publish;
                    // re-load the tail now so the last items are never
                    // missed.
                    if ring.occupancy(ring.tail.0.load(Ordering::Acquire), head) == 0 {
                        return false;
                    }
                    continue;
                }
                ring.wait_not_empty();
                continue;
            }
            let take = avail.min(max.max(1));
            out.reserve(take);
            for k in 0..take {
                out.push(unsafe { ring.read_slot(head.wrapping_add(k)) });
            }
            // Subtract before the head publish — see `push_batch` for why
            // this ordering bounds the depth gauge.
            ring.gauges.sub_depth(take);
            ring.head.0.store(head.wrapping_add(take), Ordering::Release);
            ring.wake_producer();
            return true;
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // A consumer that dies with items still buffered (a panicking shard
        // worker) must not strand them until producer teardown: drain them
        // now so item destructors run promptly; gateway envelopes, for
        // example, answer their pending request with a `Dropped` verdict
        // from `Drop`.
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved_across_batches() {
        let (tx, rx) = channel::<u32>(128);
        let mut batch: Vec<u32> = (0..100).collect();
        assert_eq!(tx.push_batch(&mut batch), 0);
        assert!(batch.is_empty());
        drop(tx);
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.pop_batch(&mut buf, 7) {
            got.append(&mut buf);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_push_drops_overflow_and_counts_it() {
        let (tx, rx) = channel::<u32>(4);
        let mut batch: Vec<u32> = (0..10).collect();
        let dropped = tx.try_push_batch(&mut batch);
        assert_eq!(dropped, 6, "only 4 fit");
        assert_eq!(rx.gauges().depth(), 4);
        assert_eq!(rx.gauges().high_water(), 4);
        // The 4 oldest survive (drop-newest policy).
        let mut buf = Vec::new();
        assert!(rx.pop_batch(&mut buf, 10));
        assert_eq!(buf, vec![0, 1, 2, 3]);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let (tx, rx) = channel::<u64>(8);
        let producer = std::thread::spawn(move || {
            let mut total = 0usize;
            for chunk in 0..50u64 {
                let mut batch: Vec<u64> = (chunk * 10..chunk * 10 + 10).collect();
                total += batch.len();
                assert_eq!(tx.push_batch(&mut batch), 0);
            }
            total
        });
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.pop_batch(&mut buf, 16) {
            got.append(&mut buf);
        }
        assert_eq!(producer.join().unwrap(), 500);
        assert_eq!(got.len(), 500);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved under blocking");
        assert!(rx.gauges().high_water() <= 8, "capacity bound respected");
    }

    #[test]
    fn consumer_drop_fails_pushes_fast() {
        let (tx, rx) = channel::<u32>(2);
        drop(rx);
        let mut batch = vec![1, 2, 3];
        assert_eq!(tx.push_batch(&mut batch), 3, "all undelivered");
        let mut batch = vec![4, 5];
        assert_eq!(tx.try_push_batch(&mut batch), 2);
    }

    #[test]
    fn producer_drop_ends_stream_after_drain() {
        let (tx, rx) = channel::<u32>(8);
        let mut batch = vec![1, 2];
        tx.push_batch(&mut batch);
        drop(tx);
        let mut buf = Vec::new();
        assert!(rx.pop_batch(&mut buf, 10));
        assert_eq!(buf, vec![1, 2]);
        assert!(!rx.pop_batch(&mut buf, 10), "closed and empty ⇒ end of stream");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = channel::<u32>(0);
    }

    #[test]
    fn close_counts_and_destroys_buffered_items() {
        let (tx, rx) = channel::<u32>(8);
        let mut batch = vec![1, 2, 3];
        assert_eq!(tx.push_batch(&mut batch), 0);
        assert!(!tx.is_closed());
        assert_eq!(rx.capacity(), 8);
        assert!(!rx.is_producer_closed());
        assert_eq!(rx.close(), 3, "all buffered items destroyed and counted");
        assert_eq!(rx.gauges().depth(), 0);
        assert!(tx.is_closed());
        let mut batch = vec![4];
        assert_eq!(tx.push_batch(&mut batch), 1, "pushes fail fast after close");
        drop(tx);
        assert!(rx.is_producer_closed());
    }

    #[test]
    fn consumer_drop_runs_destructors_of_buffered_items() {
        // A dead consumer (panicked worker) must not strand buffered items:
        // their destructors run at consumer drop, not at producer teardown.
        let flag = Arc::new(AtomicUsize::new(0));
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = channel::<Probe>(8);
        let mut batch = vec![Probe(Arc::clone(&flag)), Probe(Arc::clone(&flag))];
        assert_eq!(tx.push_batch(&mut batch), 0);
        assert_eq!(flag.load(Ordering::SeqCst), 0, "buffered items are alive");
        drop(rx);
        assert_eq!(flag.load(Ordering::SeqCst), 2, "consumer drop released them");
        assert_eq!(tx.gauges().depth(), 0);
    }

    #[test]
    fn exact_capacity_is_enforced_for_non_power_of_two() {
        // The slot array rounds up to a power of two internally, but the
        // *logical* capacity stays exact: a 6-slot queue holds 6, not 8.
        let (tx, rx) = channel::<u32>(6);
        let mut batch: Vec<u32> = (0..10).collect();
        assert_eq!(tx.try_push_batch(&mut batch), 4, "exactly 6 fit");
        assert_eq!(rx.gauges().depth(), 6);
        assert_eq!(rx.capacity(), 6);
        let mut buf = Vec::new();
        assert!(rx.pop_batch(&mut buf, 10));
        assert_eq!(buf, (0..6).collect::<Vec<_>>());
    }

    /// Regression for the gauge race: with absolute `store` + `fetch_max`
    /// updates from both endpoints, a pop-side store of a *stale* low depth
    /// could overwrite a concurrent producer's higher depth before
    /// `fetch_max` recorded it. Relative updates make the first full-queue
    /// push observable forever: the peak can never be missed.
    #[test]
    fn concurrent_gauge_updates_never_miss_the_peak() {
        for _ in 0..50 {
            let (tx, rx) = channel::<u64>(4);
            let gauges = rx.gauges();
            let producer = std::thread::spawn(move || {
                // The first chunk lands on an empty queue, so the very first
                // add_depth reaches exactly 4 — deterministically.
                let mut batch: Vec<u64> = (0..4).collect();
                assert_eq!(tx.push_batch(&mut batch), 0);
                for chunk in 1..200u64 {
                    let mut batch: Vec<u64> = (chunk * 4..chunk * 4 + 4).collect();
                    assert_eq!(tx.push_batch(&mut batch), 0);
                }
            });
            let mut got = 0usize;
            let mut buf = Vec::new();
            while rx.pop_batch(&mut buf, 3) {
                got += buf.len();
                buf.clear();
            }
            producer.join().unwrap();
            assert_eq!(got, 800);
            assert_eq!(gauges.depth(), 0, "all adds matched by subs");
            assert_eq!(gauges.high_water(), 4, "the full-queue peak was recorded, exactly once");
            assert!(gauges.high_water() <= 4, "depth never exceeds capacity");
        }
    }

    #[test]
    fn depth_gauge_tracks_partial_drains() {
        let (tx, rx) = channel::<u32>(8);
        let mut batch: Vec<u32> = (0..5).collect();
        assert_eq!(tx.push_batch(&mut batch), 0);
        assert_eq!(rx.gauges().depth(), 5);
        let mut buf = Vec::new();
        assert!(rx.pop_batch(&mut buf, 2));
        assert_eq!(rx.gauges().depth(), 3);
        assert!(rx.pop_batch(&mut buf, 10));
        assert_eq!(rx.gauges().depth(), 0);
        assert_eq!(rx.gauges().high_water(), 5);
    }
}
