//! Shard-worker supervision: restart policy and per-shard health tracking.
//!
//! A [`Supervisor`] sits (logically) above one shard worker. When the worker
//! dies — an organic panic detected by a failed queue push, or a scripted
//! [`FaultKind::Panic`](crate::fault::FaultKind) — the fleet asks the
//! supervisor what to do. The answer is governed by a [`RestartBudget`]:
//! up to `max_restarts` cold restarts within any sliding window of
//! `window_requests` *fleet submissions* (request counts, not wall clock, so
//! chaos runs stay deterministic). Inside the budget the worker is respawned
//! with a fresh `CacheServer` and a fresh admission driver — a cold restart,
//! exactly what a production cache node does after a crash: the learned
//! state is gone, the shard re-warms. Beyond the budget the shard is marked
//! **permanently dead** and every later request routed to it is answered
//! `Unavailable` immediately (degraded mode) instead of queueing into a
//! crash loop.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How many cold restarts a shard is allowed before it is declared dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartBudget {
    /// Maximum restarts tolerated within one window. 0 means the first panic
    /// kills the shard permanently.
    pub max_restarts: u32,
    /// Sliding-window length, counted in fleet-wide submitted requests (a
    /// deterministic clock). Restarts older than this no longer count
    /// against the budget.
    pub window_requests: u64,
}

impl Default for RestartBudget {
    fn default() -> Self {
        Self { max_restarts: 3, window_requests: 100_000 }
    }
}

impl RestartBudget {
    /// A budget of `max_restarts` over the default window.
    pub fn with_max_restarts(max_restarts: u32) -> Self {
        Self { max_restarts, ..Self::default() }
    }
}

/// What the fleet should do with a shard whose worker just died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// Within budget: cold-restart the worker (fresh server, fresh driver).
    Respawn,
    /// Budget exhausted: mark the shard permanently dead; answer everything
    /// routed to it `Unavailable`.
    Bury,
}

/// Per-shard supervision state: the restart history against its budget.
#[derive(Debug, Clone)]
pub struct Supervisor {
    budget: RestartBudget,
    /// Fleet submission counts at which past restarts happened (only those
    /// still inside the window are retained).
    marks: VecDeque<u64>,
    restarts: u32,
    dead: bool,
}

impl Supervisor {
    /// A supervisor enforcing `budget`.
    pub fn new(budget: RestartBudget) -> Self {
        Self { budget, marks: VecDeque::new(), restarts: 0, dead: false }
    }

    /// Records a worker death observed at fleet submission count `now` and
    /// decides between respawn and burial. Idempotent once dead.
    pub fn on_worker_death(&mut self, now: u64) -> SupervisorVerdict {
        if self.dead {
            return SupervisorVerdict::Bury;
        }
        let horizon = now.saturating_sub(self.budget.window_requests);
        while self.marks.front().is_some_and(|&m| m < horizon) {
            self.marks.pop_front();
        }
        if (self.marks.len() as u64) < u64::from(self.budget.max_restarts) {
            self.marks.push_back(now);
            self.restarts += 1;
            SupervisorVerdict::Respawn
        } else {
            self.dead = true;
            SupervisorVerdict::Bury
        }
    }

    /// Cold restarts granted so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// The budget this supervisor enforces.
    pub fn budget(&self) -> &RestartBudget {
        &self.budget
    }

    /// True once the shard has been declared permanently dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respawns_within_budget_then_buries() {
        let mut sup = Supervisor::new(RestartBudget { max_restarts: 2, window_requests: 1_000 });
        assert_eq!(sup.on_worker_death(10), SupervisorVerdict::Respawn);
        assert_eq!(sup.on_worker_death(20), SupervisorVerdict::Respawn);
        assert_eq!(sup.restarts(), 2);
        assert!(!sup.is_dead());
        assert_eq!(sup.on_worker_death(30), SupervisorVerdict::Bury);
        assert!(sup.is_dead());
        assert_eq!(sup.restarts(), 2, "burial is not a restart");
        // Idempotent once dead, regardless of how far the clock moves.
        assert_eq!(sup.on_worker_death(1_000_000), SupervisorVerdict::Bury);
    }

    #[test]
    fn window_expiry_refills_the_budget() {
        let mut sup = Supervisor::new(RestartBudget { max_restarts: 1, window_requests: 100 });
        assert_eq!(sup.on_worker_death(0), SupervisorVerdict::Respawn);
        // Second death 200 submissions later: the first mark fell out of the
        // window, so the budget has refilled.
        assert_eq!(sup.on_worker_death(200), SupervisorVerdict::Respawn);
        assert_eq!(sup.restarts(), 2);
        // A third death inside the second mark's window exhausts it.
        assert_eq!(sup.on_worker_death(250), SupervisorVerdict::Bury);
    }

    #[test]
    fn zero_budget_buries_immediately() {
        let mut sup = Supervisor::new(RestartBudget::with_max_restarts(0));
        assert_eq!(sup.on_worker_death(5), SupervisorVerdict::Bury);
        assert!(sup.is_dead());
        assert_eq!(sup.restarts(), 0);
    }
}
