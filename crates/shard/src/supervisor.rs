//! Shard-worker supervision: restart policy and per-shard health tracking.
//!
//! A [`Supervisor`] sits (logically) above one shard worker. When the worker
//! dies — an organic panic detected by a failed queue push, or a scripted
//! [`FaultKind::Panic`](crate::fault::FaultKind) — the fleet asks the
//! supervisor what to do. The answer is governed by a [`RestartBudget`]:
//! up to `max_restarts` cold restarts within any sliding window of
//! `window_requests` *fleet submissions* (request counts, not wall clock, so
//! chaos runs stay deterministic). Inside the budget the worker is respawned
//! with a fresh `CacheServer` and a fresh admission driver — a cold restart,
//! exactly what a production cache node does after a crash: the learned
//! state is gone, the shard re-warms. Beyond the budget the shard is marked
//! **permanently dead** and every later request routed to it is answered
//! `Unavailable` immediately (degraded mode) instead of queueing into a
//! crash loop.
//!
//! When the shard runs with a hot standby (see
//! [`StandbySlot`](crate::standby::StandbySlot)), exhausting the budget no
//! longer has to bury the shard: the fleet asks
//! [`Supervisor::on_worker_death_with_standby`] instead, and a ready standby
//! turns the `Bury` into a [`SupervisorVerdict::Promote`] — the replica's
//! last applied frame is installed and the worker warm-restarts from it.
//! Promotion does **not** refill the restart budget: the window marks stay
//! in place, so a crash-looping shard keeps paying for every death and is
//! buried the moment it dies without a ready standby.
//!
//! Budget state (`restarts` plus the in-window marks) travels inside every
//! [`ShardCheckpoint`](crate::ckpt::ShardCheckpoint) so a warm boot or
//! restore cannot launder a crash-looper's history back to zero.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How many cold restarts a shard is allowed before it is declared dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartBudget {
    /// Maximum restarts tolerated within one window. 0 means the first panic
    /// kills the shard permanently.
    pub max_restarts: u32,
    /// Sliding-window length, counted in fleet-wide submitted requests (a
    /// deterministic clock). Restarts older than this no longer count
    /// against the budget.
    pub window_requests: u64,
}

impl Default for RestartBudget {
    fn default() -> Self {
        Self { max_restarts: 3, window_requests: 100_000 }
    }
}

impl RestartBudget {
    /// A budget of `max_restarts` over the default window.
    pub fn with_max_restarts(max_restarts: u32) -> Self {
        Self { max_restarts, ..Self::default() }
    }
}

/// What the fleet should do with a shard whose worker just died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// Within budget: cold-restart the worker (fresh server, fresh driver).
    Respawn,
    /// Budget exhausted: mark the shard permanently dead; answer everything
    /// routed to it `Unavailable`.
    Bury,
    /// Budget exhausted but a hot standby is ready: install the standby's
    /// frame and warm-restart the worker from it instead of burying. The
    /// budget is *not* refilled — the next death must present a fresh
    /// standby or the shard is buried.
    Promote,
}

/// Per-shard supervision state: the restart history against its budget.
#[derive(Debug, Clone)]
pub struct Supervisor {
    budget: RestartBudget,
    /// Fleet submission counts at which past restarts happened (only those
    /// still inside the window are retained).
    marks: VecDeque<u64>,
    restarts: u32,
    promotions: u32,
    dead: bool,
}

impl Supervisor {
    /// A supervisor enforcing `budget`.
    pub fn new(budget: RestartBudget) -> Self {
        Self { budget, marks: VecDeque::new(), restarts: 0, promotions: 0, dead: false }
    }

    /// A supervisor reconstituted from checkpointed budget state: `restarts`
    /// granted so far and the submission counts of the still-in-window
    /// restarts. Used on warm boot / restore so a crash-looping shard cannot
    /// reset its budget by riding through a checkpoint (satellite of the
    /// replication layer). Marks are kept sorted; callers pass them as they
    /// came out of the frame.
    pub fn with_state(budget: RestartBudget, restarts: u32, marks: &[u64]) -> Self {
        let mut marks: Vec<u64> = marks.to_vec();
        marks.sort_unstable();
        Self { budget, marks: marks.into(), restarts, promotions: 0, dead: false }
    }

    /// Records a worker death observed at fleet submission count `now` and
    /// decides between respawn and burial. Idempotent once dead.
    pub fn on_worker_death(&mut self, now: u64) -> SupervisorVerdict {
        self.on_worker_death_with_standby(now, false)
    }

    /// Like [`on_worker_death`](Self::on_worker_death), but aware of a hot
    /// standby. Within budget the answer is the usual `Respawn` (the budget
    /// is consumed first — promotion is the *past-budget* escape hatch, not
    /// a cheaper restart). Past the budget, a ready standby yields
    /// `Promote` without marking the shard dead; without one the shard is
    /// buried exactly as before.
    pub fn on_worker_death_with_standby(&mut self, now: u64, standby_ready: bool) -> SupervisorVerdict {
        if self.dead {
            return SupervisorVerdict::Bury;
        }
        let horizon = now.saturating_sub(self.budget.window_requests);
        while self.marks.front().is_some_and(|&m| m < horizon) {
            self.marks.pop_front();
        }
        if (self.marks.len() as u64) < u64::from(self.budget.max_restarts) {
            self.marks.push_back(now);
            self.restarts += 1;
            SupervisorVerdict::Respawn
        } else if standby_ready {
            self.promotions += 1;
            SupervisorVerdict::Promote
        } else {
            self.dead = true;
            SupervisorVerdict::Bury
        }
    }

    /// Cold restarts granted so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Standby promotions granted so far (past-budget deaths answered by a
    /// ready replica instead of burial).
    pub fn promotions(&self) -> u32 {
        self.promotions
    }

    /// The submission counts of restarts still inside the sliding window,
    /// oldest first — the budget state a checkpoint must carry.
    pub fn marks(&self) -> Vec<u64> {
        self.marks.iter().copied().collect()
    }

    /// The budget this supervisor enforces.
    pub fn budget(&self) -> &RestartBudget {
        &self.budget
    }

    /// True once the shard has been declared permanently dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respawns_within_budget_then_buries() {
        let mut sup = Supervisor::new(RestartBudget { max_restarts: 2, window_requests: 1_000 });
        assert_eq!(sup.on_worker_death(10), SupervisorVerdict::Respawn);
        assert_eq!(sup.on_worker_death(20), SupervisorVerdict::Respawn);
        assert_eq!(sup.restarts(), 2);
        assert!(!sup.is_dead());
        assert_eq!(sup.on_worker_death(30), SupervisorVerdict::Bury);
        assert!(sup.is_dead());
        assert_eq!(sup.restarts(), 2, "burial is not a restart");
        // Idempotent once dead, regardless of how far the clock moves.
        assert_eq!(sup.on_worker_death(1_000_000), SupervisorVerdict::Bury);
    }

    #[test]
    fn window_expiry_refills_the_budget() {
        let mut sup = Supervisor::new(RestartBudget { max_restarts: 1, window_requests: 100 });
        assert_eq!(sup.on_worker_death(0), SupervisorVerdict::Respawn);
        // Second death 200 submissions later: the first mark fell out of the
        // window, so the budget has refilled.
        assert_eq!(sup.on_worker_death(200), SupervisorVerdict::Respawn);
        assert_eq!(sup.restarts(), 2);
        // A third death inside the second mark's window exhausts it.
        assert_eq!(sup.on_worker_death(250), SupervisorVerdict::Bury);
    }

    #[test]
    fn zero_budget_buries_immediately() {
        let mut sup = Supervisor::new(RestartBudget::with_max_restarts(0));
        assert_eq!(sup.on_worker_death(5), SupervisorVerdict::Bury);
        assert!(sup.is_dead());
        assert_eq!(sup.restarts(), 0);
    }

    #[test]
    fn ready_standby_turns_burial_into_promotion() {
        let mut sup = Supervisor::new(RestartBudget { max_restarts: 1, window_requests: 1_000 });
        // Budget consumed first: standby readiness does not make restarts cheaper.
        assert_eq!(sup.on_worker_death_with_standby(10, true), SupervisorVerdict::Respawn);
        // Past the budget: a ready standby promotes instead of burying.
        assert_eq!(sup.on_worker_death_with_standby(20, true), SupervisorVerdict::Promote);
        assert!(!sup.is_dead());
        assert_eq!(sup.promotions(), 1);
        assert_eq!(sup.restarts(), 1, "promotion is not a budgeted restart");
        // Promotion did not refill the budget: the next death with no
        // standby is the burial we would have had all along.
        assert_eq!(sup.on_worker_death_with_standby(30, false), SupervisorVerdict::Bury);
        assert!(sup.is_dead());
        // Once dead, a standby cannot resurrect the shard.
        assert_eq!(sup.on_worker_death_with_standby(40, true), SupervisorVerdict::Bury);
        assert_eq!(sup.promotions(), 1);
    }

    #[test]
    fn zero_budget_with_standby_promotes_every_death() {
        let mut sup = Supervisor::new(RestartBudget::with_max_restarts(0));
        assert_eq!(sup.on_worker_death_with_standby(5, true), SupervisorVerdict::Promote);
        assert_eq!(sup.on_worker_death_with_standby(6, true), SupervisorVerdict::Promote);
        assert!(!sup.is_dead());
        assert_eq!(sup.promotions(), 2);
        assert_eq!(sup.restarts(), 0);
    }

    #[test]
    fn reconstituted_state_keeps_the_budget_spent() {
        let mut sup = Supervisor::new(RestartBudget { max_restarts: 2, window_requests: 1_000 });
        assert_eq!(sup.on_worker_death(100), SupervisorVerdict::Respawn);
        assert_eq!(sup.on_worker_death(200), SupervisorVerdict::Respawn);
        let (restarts, marks) = (sup.restarts(), sup.marks());
        assert_eq!(marks, vec![100, 200]);

        // A warm-booted supervisor carrying that state buries on the next
        // in-window death — no budget laundering through the checkpoint.
        let mut warm = Supervisor::with_state(*sup.budget(), restarts, &marks);
        assert_eq!(warm.restarts(), 2);
        assert_eq!(warm.on_worker_death(300), SupervisorVerdict::Bury);

        // But window expiry still works after reconstitution.
        let mut later = Supervisor::with_state(*sup.budget(), restarts, &marks);
        assert_eq!(later.on_worker_death(5_000), SupervisorVerdict::Respawn);
        assert_eq!(later.restarts(), 3);
    }
}
