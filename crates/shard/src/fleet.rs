//! The sharded fleet: N cache servers on N worker threads, supervised.
//!
//! [`ShardedFleet`] hash-partitions the object space across `shards`
//! independent [`CacheServer`]s, each owned by a dedicated worker thread and
//! each driven by its *own* [`AdmissionDriver`] — with [`DarwinDriver`]
//! drivers this is one Darwin controller per shard, learning that shard's
//! sub-workload (the paper's per-server deployment model, §5).
//!
//! # Ingest pipeline
//!
//! Requests reach a shard through a two-stage pipeline: submitters *stage*
//! envelopes into per-shard runs, then *deliver* each run with a single
//! [`push_batch`](crate::queue::Producer::push_batch) onto the shard's SPSC
//! ring — one index publication and one gauge update per run, however many
//! requests it carries. Two ingest fronts exist:
//!
//! * the fleet's own single-submitter API ([`ShardedFleet::submit`] /
//!   [`submit_trace`](ShardedFleet::submit_trace)), which preserves the
//!   bitwise determinism contract below, and
//! * [`FleetIngest`], a cloneable handle that mints one [`FleetProducer`]
//!   per gateway connection. Producers stage and flush independently;
//!   delivery into any one shard is serialized by that shard's *lane* lock,
//!   so N connections contend per shard instead of through one global
//!   router loop.
//!
//! # Determinism contract
//!
//! The router is a pure function of `(id, shards)`, so shard `s` sees
//! exactly the subsequence of the submitted stream whose IDs route to `s`,
//! *in submission order* — the SPSC queue preserves order and nothing else
//! touches the shard's state. Thread scheduling can change timing but never
//! ordering, so under [`Backpressure::Block`] a fleet replay is bitwise
//! identical (metrics, deployed-expert sequence, final cache occupancy) to
//! running each shard's filtered trace sequentially. `replay.rs` exposes
//! both sides of this equation and `tests/equivalence.rs` enforces it.
//! Multi-producer ingest keeps the per-shard FIFO *within* each producer
//! (each flush is one atomic run); the interleaving *between* producers is
//! scheduling-dependent, exactly as concurrent connections always were.
//!
//! # Supervision
//!
//! A shard worker that panics — organically (a bug in a driver or the
//! server) or on a scripted [`FaultPlan`] event — no longer takes the fleet
//! down. The fleet detects the death at the next delivery to that shard
//! (a failed push on the Block path, a closed-consumer probe on the
//! DropNewest path) and consults the shard's [`Supervisor`]:
//!
//! * **Within the [`RestartBudget`]** the worker is cold-restarted: fresh
//!   `CacheServer`, fresh driver from the factory, fresh queue. Learned
//!   state is gone and the shard re-warms — exactly what a production cache
//!   node does after a crash. The restart is counted in [`FleetMetrics`].
//! * **Beyond the budget** the shard is permanently dead: every later
//!   request routed to it is answered immediately via
//!   [`Envelope::unavailable`] (degraded mode) instead of queueing into a
//!   crash loop.
//! * **With a hot standby** ([`FleetConfig::replicas`] > 0) a past-budget
//!   death *promotes* instead of burying: the standby's last applied
//!   checkpoint frame is installed as the newest restore candidate and the
//!   worker warm-restarts from it, so the shard keeps serving and nothing
//!   is answered `Unavailable`. A lost standby (a scripted
//!   [`FaultKind::CorruptStandby`], or a feed that failed validation) falls
//!   back to burial — detected and journaled, never silent.
//!
//! Requests in flight at the moment of death (staged, queued, or popped but
//! not yet completed) are answered `Dropped` through their envelope `Drop`
//! impls and counted, so the conservation law **submitted = processed +
//! dropped + unavailable** holds exactly over any run, faulty or not
//! (`tests/chaos.rs` proptests it). Scripted panics are additionally
//! *synchronized* on the single-submitter path: the submitter joins the
//! doomed worker right after submitting the fatal request, which pins the
//! processed / dropped / restart boundary and makes chaos runs under
//! `Block` reproducible bit-for-bit. [`finish`](ShardedFleet::finish) never
//! panics on a dead shard — it reports per-shard `restarts` / `dead` flags
//! instead.
//!
//! Worker threads wrap their serving loop in
//! [`darwin_parallel::inline_sweeps`], so a per-shard Darwin controller that
//! sweeps experts at an epoch boundary runs those sweeps inline instead of
//! stacking `DARWIN_THREADS`-wide pools `shards` times over.
//!
//! [`DarwinDriver`]: darwin_testbed::DarwinDriver

use crate::ckpt::{CheckpointSlot, ShardCheckpoint};
use crate::fault::{FaultKind, FaultPlan, ShardFaultCursor};
use crate::metrics::{FleetMetrics, MetricsHandle, ShardCell, ShardPhase};
use crate::queue::{channel, Consumer, Producer, QueueGauges};
use crate::router::Router;
use crate::standby::{FeedOutcome, StandbySlot};
use crate::supervisor::{RestartBudget, Supervisor, SupervisorVerdict};
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer, RequestOutcome};
use darwin_obs::{EventKind, SwitchCostTracker};
use darwin_testbed::{AdmissionDriver, ControlEvent};
use darwin_trace::{Request, Trace};
use serde::{Deserialize, Serialize};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What one request's trip through its shard produced: where it was served
/// from and whether the admission policy promoted it into the HOC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Shard that served the request.
    pub shard: usize,
    /// Where the request was served from.
    pub outcome: RequestOutcome,
    /// True if this request's object was written into the HOC (the expert's
    /// admission decision fired).
    pub admitted: bool,
}

/// A queue item: a request plus whatever completion state rides along with
/// it through the shard queue.
///
/// The fleet routes on [`Envelope::request`] and, once the shard worker has
/// processed the request, hands the envelope its [`Verdict`] via
/// [`Envelope::complete`]. A plain [`Request`] is the trivial envelope
/// (completion is a no-op) — in-process replay uses that; the network
/// gateway wraps requests in envelopes that deliver the verdict back to the
/// originating connection.
///
/// Implementations that must report *something* even when the envelope never
/// reaches a worker (dropped under [`Backpressure::DropNewest`], stranded by
/// a worker crash) should do so in their `Drop` impl: the queue simply drops
/// shed envelopes.
pub trait Envelope: Send + 'static {
    /// The request to route and process.
    fn request(&self) -> &Request;
    /// Called on the shard worker thread after the request was processed.
    fn complete(self, verdict: Verdict);
    /// Called on the submitting thread when the request's shard is
    /// permanently dead (degraded mode): the request will never be
    /// processed. The default just drops the envelope — override to report
    /// a distinct `Unavailable` answer (the gateway does).
    fn unavailable(self)
    where
        Self: Sized,
    {
        drop(self);
    }
    /// Called on the submitting thread when the request was shed under
    /// overload control (its shard's queue was over the watermark): the
    /// request will not be processed now, but the client may retry after a
    /// backoff keyed to `retry_after` (0–7, larger means more overloaded).
    /// The default just drops the envelope — override to report a distinct
    /// `Busy` answer (the gateway does).
    fn shed(self, retry_after: u8)
    where
        Self: Sized,
    {
        let _ = retry_after;
        drop(self);
    }
}

impl Envelope for Request {
    fn request(&self) -> &Request {
        self
    }
    fn complete(self, _verdict: Verdict) {}
}

/// What happens when a shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backpressure {
    /// Submission blocks until the shard drains (lossless — required for the
    /// determinism/replay contract).
    Block,
    /// The overflow is dropped and counted (load shedding, as a production
    /// front-end under overload would do).
    DropNewest,
}

/// Fleet parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of shards (= worker threads = cache servers = controllers).
    pub shards: usize,
    /// Per-shard queue capacity, in requests.
    pub queue_capacity: usize,
    /// Submission/drain batch size (bounds a staged per-shard run; one queue
    /// operation publishes the whole run).
    pub batch: usize,
    /// Full-queue behaviour.
    pub backpressure: Backpressure,
    /// Record a [`FleetMetrics`] snapshot every this many submitted requests
    /// (`None` disables periodic snapshots; a final one is always taken).
    pub snapshot_every: Option<u64>,
    /// Restart budget enforced per shard by its [`Supervisor`].
    #[serde(default)]
    pub restart_budget: RestartBudget,
    /// Take a warm-restart checkpoint of each shard every this many
    /// per-shard requests (`None` disables checkpointing; every restart is
    /// then cold). Boundaries are request-sequence numbers, never wall
    /// clock, so checkpoint contents are deterministic.
    #[serde(default)]
    pub checkpoint_every: Option<u64>,
    /// Queue-depth watermark for overload shedding (`None` disables it).
    /// While a shard's queue depth is at or above the watermark,
    /// [`FleetProducer`]s answer that shard's requests `Busy` (via
    /// [`Envelope::shed`]) instead of delivering them; shedding stops once
    /// the queue drains to half the watermark (hysteresis). Shed requests
    /// count as both `submitted` and `shed`, extending the conservation
    /// ledger to `processed + dropped + unavailable + shed == submitted`.
    #[serde(default)]
    pub shed_watermark: Option<usize>,
    /// Hot standbys per shard (0 disables replication; any nonzero value
    /// runs one in-process [`StandbySlot`] per shard). The primary feeds the
    /// standby at every checkpoint cut ([`FleetConfig::checkpoint_every`]
    /// must be set for the standby to ever seed), and a shard whose restart
    /// budget is exhausted *promotes* the standby's last applied frame
    /// instead of being buried — the shard keeps serving and answers nothing
    /// `Unavailable`.
    #[serde(default)]
    pub replicas: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 4096,
            batch: 256,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: RestartBudget::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        }
    }
}

impl FleetConfig {
    /// A fleet of `shards` shards with the remaining defaults.
    pub fn with_shards(shards: usize) -> Self {
        Self { shards, ..Self::default() }
    }
}

/// How a fleet comes up: cold (the historical default), warm from each
/// shard's spill file in `checkpoint_dir` (cross-process warm boot), or warm
/// from explicit per-shard seed frames (an elastic-resize handoff).
///
/// Warm boots are *validated per shard*: a seed or spill frame that fails
/// CRC/decode/shard-index checks makes exactly that shard boot detected-cold
/// (its spill file is then cleared) while the rest of the fleet boots warm.
/// A shard's spill file is never removed before its restore attempt
/// resolves.
#[derive(Debug, Clone, Default)]
pub struct FleetBoot {
    /// Spill directory for checkpoint frames (created if missing). With
    /// `warm_boot` unset, stale spill files for this fleet's shards are
    /// cleared up front — the historical cold-boot semantics deterministic
    /// reruns rely on.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Attempt to restore each shard at startup instead of clearing the
    /// spill directory.
    pub warm_boot: bool,
    /// Per-shard seed frames ([`ShardCheckpoint::to_frame`] bytes), indexed
    /// by shard; `None` entries (or a short vector) leave the shard to its
    /// spill file or a cold start. Only read when `warm_boot` is set.
    pub seeds: Vec<Option<Vec<u8>>>,
    /// Router generation the fleet serves under (0 is the boot generation;
    /// the elastic rebalancer increments it per resize).
    pub generation: u32,
    /// True when the seeds came from a live in-process resize handoff
    /// rather than a process restart — selects the journal flavour of
    /// [`EventKind::HandoffRestore`], and makes missing seeds boot cold
    /// instead of falling back to (stale, pre-resize) spill files.
    pub handoff: bool,
}

impl FleetBoot {
    /// Warm boot from `dir`'s spill files (the gateway's `--checkpoint-dir`
    /// default).
    pub fn warm_from(dir: std::path::PathBuf) -> Self {
        Self { checkpoint_dir: Some(dir), warm_boot: true, ..Self::default() }
    }
}

/// Everything one shard produced, returned by [`ShardedFleet::finish`]. The
/// driver comes back too, so callers can pull switch histories out of
/// per-shard Darwin controllers.
#[derive(Debug)]
pub struct ShardOutcome<D> {
    /// Shard index.
    pub shard: usize,
    /// Final cumulative cache metrics, summed over every incarnation of the
    /// shard's server (restarts start from a cold cache but keep counting).
    pub cache: CacheMetrics,
    /// Requests the worker(s) fully processed, across incarnations.
    pub processed: u64,
    /// Requests dropped: shed at the queue under
    /// [`Backpressure::DropNewest`], or in flight when a worker died.
    pub dropped: u64,
    /// Requests answered `Unavailable` because the shard was permanently
    /// dead when they were submitted.
    pub unavailable: u64,
    /// Requests answered `Busy` because the shard's queue was over its shed
    /// watermark when they were submitted (overload control).
    pub shed: u64,
    /// Restarts the supervisor granted this shard (warm and cold together).
    pub restarts: u32,
    /// Restarts that resumed warm from a valid checkpoint.
    pub warm_restarts: u32,
    /// Past-budget deaths answered by promoting the hot standby's frame
    /// instead of burying the shard (each is also counted in `restarts` and
    /// `warm_restarts`: the promoted worker restores warm).
    pub failovers: u32,
    /// True if the shard's worker was dead when the fleet finished (restart
    /// budget exhausted, or a terminal panic at end-of-stream).
    pub dead: bool,
    /// Queue high-water mark over the run (max across incarnations).
    pub queue_high_water: usize,
    /// Final HOC occupancy, bytes (0 for a dead shard — the server was lost
    /// in the crash).
    pub hoc_used_bytes: u64,
    /// Final DC occupancy, bytes (0 for a dead shard).
    pub dc_used_bytes: u64,
    /// The shard's admission driver, returned for post-mortem inspection.
    /// `None` for a dead shard: the driver unwound with the worker.
    pub driver: Option<D>,
}

/// Result of a completed fleet run.
#[derive(Debug)]
pub struct FleetReport<D> {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardOutcome<D>>,
    /// Periodic snapshots ([`FleetConfig::snapshot_every`]) plus a final one.
    pub snapshots: Vec<FleetMetrics>,
    /// Label of the router that partitioned the stream.
    pub router: String,
}

impl<D> FleetReport<D> {
    /// Fleet-wide cache metrics (counter-wise sum over shards).
    pub fn fleet_cache(&self) -> CacheMetrics {
        CacheMetrics::merge_all(self.shards.iter().map(|s| &s.cache))
    }

    /// Requests processed across the fleet.
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Requests dropped across the fleet.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Requests answered `Unavailable` across the fleet.
    pub fn total_unavailable(&self) -> u64 {
        self.shards.iter().map(|s| s.unavailable).sum()
    }

    /// Requests shed `Busy` at shard watermarks across the fleet.
    pub fn total_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Restarts granted across the fleet (warm and cold together).
    pub fn total_restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Restarts that resumed warm from a checkpoint, across the fleet.
    pub fn total_warm_restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.warm_restarts).sum()
    }

    /// Standby promotions (failovers) across the fleet.
    pub fn total_failovers(&self) -> u32 {
        self.shards.iter().map(|s| s.failovers).sum()
    }

    /// Restarts that fell back cold, across the fleet.
    pub fn total_cold_restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.restarts.saturating_sub(s.warm_restarts)).sum()
    }

    /// Shards that were dead at finish.
    pub fn dead_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.dead).count()
    }
}

struct WorkerResult<D> {
    hoc_used_bytes: u64,
    dc_used_bytes: u64,
    driver: D,
}

/// How a shard worker thread ended. Workers catch their own unwinds, so
/// `JoinHandle::join` always succeeds and the fleet inspects this instead.
enum WorkerExit<D> {
    /// Clean end-of-stream exit.
    Completed(WorkerResult<D>),
    /// The worker panicked; server and driver unwound with it. In-flight
    /// envelopes were released (their `Drop` impls filed verdicts) by the
    /// consumer endpoint's destructor.
    Panicked,
}

/// The mutable half of one shard's ingest lane. Every delivery into the
/// shard — from the fleet's own submitter or from any [`FleetProducer`] —
/// happens under this lock, which is what serializes producers per shard
/// (instead of per fleet) and makes death settlement race-free.
struct LaneState<D, E> {
    /// `None` once the shard is dead (burying drops the producer).
    producer: Option<Producer<E>>,
    /// The current incarnation's worker, `None` once buried.
    handle: Option<JoinHandle<WorkerExit<D>>>,
    supervisor: Supervisor,
    /// Envelopes handed into this lane across all producers and
    /// incarnations (delivered to the queue, shed at it, or cleared from a
    /// stage at a death) — the per-shard request index of the *next*
    /// delivery, and the shard-side term of the conservation arithmetic.
    delivered: u64,
}

/// One shard's runtime state inside the core.
struct ShardState<D, E> {
    lane: Mutex<LaneState<D, E>>,
    cell: Arc<ShardCell>,
    /// The shard's checkpoint mailbox (allocated even when checkpointing is
    /// off: an empty slot just makes every restart cold).
    slot: Arc<CheckpointSlot>,
    /// The shard's hot standby ([`FleetConfig::replicas`] > 0), fed by the
    /// worker at every checkpoint cut and consulted at death settlement.
    standby: Option<Arc<StandbySlot>>,
}

/// The shared heart of a fleet: configuration, router, per-shard lanes.
/// [`ShardedFleet`] owns one behind an `Arc`; every [`FleetProducer`] holds
/// the same `Arc` and delivers through the lane locks.
struct FleetCore<D, E> {
    cfg: FleetConfig,
    cache: CacheConfig,
    router: Arc<dyn Router>,
    /// Builds shard drivers; behind a lock because respawns may be triggered
    /// from any producer's thread.
    factory: Mutex<Box<dyn FnMut(usize) -> D + Send>>,
    fault: FaultPlan,
    /// Fleet-wide submission clock for the supervisors' sliding restart
    /// windows (maintained by whichever ingest front is in use).
    total_submitted: AtomicU64,
    /// True when initial incarnations should attempt a restore (warm boot
    /// or resize handoff) instead of starting cold.
    warm_boot: bool,
    /// Journal flavour of a boot restore: handoff (in-process resize) vs
    /// warm boot (cross-process spill).
    boot_handoff: bool,
    /// Target shard count of a requested drain-for-handoff final cut;
    /// `u64::MAX` means no cut was requested. Workers read it at
    /// end-of-stream and cut a final [`ShardCheckpoint`] at the exact drain
    /// boundary when set.
    cut_target: Arc<AtomicU64>,
    shards: Vec<ShardState<D, E>>,
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> FleetCore<D, E> {
    /// Delivers a staged run into shard `s`'s queue (one `push_batch`).
    /// `now` feeds the supervisor's restart window if the delivery detects a
    /// death. Returns true when a worker death was detected and settled.
    fn deliver(&self, s: usize, batch: &mut Vec<E>, now: u64) -> bool {
        if batch.is_empty() {
            return false;
        }
        let shard = &self.shards[s];
        let mut lane = shard.lane.lock().expect("shard lane poisoned");
        if lane.producer.is_none() {
            // Buried shard. The single-submitter path diverts before staging
            // and clears stages at settlement, so only a multi-producer
            // flush racing the burial lands here: answer it Unavailable,
            // exactly as a post-burial submission would have been.
            shard.cell.add_unavailable(batch.len() as u64);
            for env in batch.drain(..) {
                env.unavailable();
            }
            return false;
        }
        lane.delivered += batch.len() as u64;
        let producer = lane.producer.as_ref().expect("checked above");
        let died = match self.cfg.backpressure {
            Backpressure::Block => {
                // `push_batch` destroys-and-counts the remainder if the
                // consumer vanished mid-delivery; a nonzero return is the
                // Block path's death signal.
                let wait = Instant::now();
                let died = producer.push_batch(batch) > 0;
                shard.cell.obs().queue_wait.record_duration(wait.elapsed());
                died
            }
            Backpressure::DropNewest => {
                let shed = producer.try_push_batch(batch);
                shard.cell.add_dropped(shed as u64);
                producer.is_closed()
            }
        };
        if died {
            self.settle(s, &mut lane, now);
        }
        died
    }

    /// Joins a dead (or doomed) worker, settles the accounting, and asks the
    /// shard's supervisor for a restart or a burial. Caller holds the lane.
    fn settle(&self, s: usize, lane: &mut LaneState<D, E>, now: u64) {
        let shard = &self.shards[s];
        // Hang up first so a worker stalled in a scripted QueueFull wait (or
        // a doomed-but-alive worker draining toward its scripted panic)
        // observes end-of-stream and terminates.
        lane.producer = None;
        let handle = lane.handle.take().expect("dying shard had no worker");
        let exit = handle.join().unwrap_or(WorkerExit::Panicked);
        // `Completed` here means the worker won a race against the death
        // signal (possible only under DropNewest shedding of a scripted
        // fatal request); treat it as the scripted death it stands in for.
        drop(exit);
        let cell = &shard.cell;
        // Every envelope handed into the lane ends processed, counted
        // dropped (queue shedding), or destroyed unanswered in the crash —
        // its Drop impl answered the client. The difference is exactly that
        // unanswered in-flight tail; count it so the conservation law holds.
        let answered = cell.processed_total() + cell.dropped();
        cell.add_dropped(lane.delivered.saturating_sub(answered));
        cell.fold_incarnation();
        // Journal stamps use the shard's processed count — deterministic
        // under Block (scripted panics are submission-synchronized).
        let seq = cell.processed_total();
        let budget_max = lane.supervisor.budget().max_restarts;
        cell.obs().journal.record(seq, EventKind::WorkerDeath);
        let standby_ready = shard.standby.as_ref().is_some_and(|st| st.ready());
        match lane.supervisor.on_worker_death_with_standby(now, standby_ready) {
            SupervisorVerdict::Respawn => {
                cell.record_restart();
                cell.obs().journal.record(
                    seq,
                    EventKind::RestartGranted { restarts_used: lane.supervisor.restarts(), budget_max },
                );
                self.spawn(s, lane, lane.delivered, true);
            }
            SupervisorVerdict::Promote => {
                match shard.standby.as_ref().and_then(|st| st.take_for_promotion()) {
                    Some((frame, checkpoint_seq)) => {
                        // Install the standby's frame as the newest restore
                        // candidate (`store` writes the disk spill first,
                        // then flips the active buffer, so the promoted
                        // frame wins even after a scripted corruption
                        // damaged every prior candidate), then warm-restart
                        // through the same validated restore path every
                        // respawn uses — which is what makes a promoted
                        // shard bitwise-identical to an unfailed run from
                        // the checkpoint boundary.
                        shard.slot.store(frame);
                        cell.record_restart();
                        cell.record_failover();
                        cell.obs().journal.record(
                            seq,
                            EventKind::Failover {
                                checkpoint_seq,
                                restarts_used: lane.supervisor.restarts(),
                                budget_max,
                            },
                        );
                        self.spawn(s, lane, lane.delivered, true);
                    }
                    None => {
                        // The standby was lost between the readiness check
                        // and the take: bury exactly as an unreplicated
                        // fleet would.
                        cell.obs().journal.record(
                            seq,
                            EventKind::RestartDenied {
                                restarts_used: lane.supervisor.restarts(),
                                budget_max,
                            },
                        );
                        cell.mark_dead();
                    }
                }
            }
            SupervisorVerdict::Bury => {
                cell.obs().journal.record(
                    seq,
                    EventKind::RestartDenied { restarts_used: lane.supervisor.restarts(), budget_max },
                );
                cell.mark_dead();
            }
        }
    }

    /// Spawns shard `s`'s worker whose first request has per-shard index
    /// `from` (0 for the initial incarnation). A `respawn`ed worker first
    /// tries to restore the shard's latest checkpoint (warm restart); the
    /// initial incarnation always starts cold. Caller holds the lane.
    fn spawn(&self, s: usize, lane: &mut LaneState<D, E>, from: u64, respawn: bool) {
        let shard = &self.shards[s];
        let (tx, rx) = channel::<E>(self.cfg.queue_capacity);
        shard.cell.set_gauges(tx.gauges());
        let driver = {
            let mut factory = self.factory.lock().expect("driver factory poisoned");
            (*factory)(s)
        };
        let ctx = WorkerCtx {
            shard: s,
            rx,
            cell: Arc::clone(&shard.cell),
            cache: self.cache.clone(),
            driver,
            batch: self.cfg.batch,
            start: from,
            faults: ShardFaultCursor::for_shard(&self.fault, s, from),
            slot: Arc::clone(&shard.slot),
            checkpoint_every: self.cfg.checkpoint_every,
            respawn,
            boot: !respawn && self.warm_boot,
            boot_handoff: self.boot_handoff,
            cut_target: Arc::clone(&self.cut_target),
            standby: shard.standby.as_ref().map(Arc::clone),
            generation: shard.cell.generation(),
            budget_restarts: lane.supervisor.restarts(),
            budget_marks: lane.supervisor.marks(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("shard-{s}"))
            .spawn(move || worker(ctx))
            .expect("spawn shard worker");
        lane.producer = Some(tx);
        lane.handle = Some(handle);
    }
}

/// A running fleet. Submit requests (or any [`Envelope`] around them), then
/// [`finish`](Self::finish) to join the workers and collect the report.
pub struct ShardedFleet<D: AdmissionDriver + Send + 'static, E: Envelope = Request> {
    core: Arc<FleetCore<D, E>>,
    /// Per-shard scripted panic indices (sorted) and a cursor into each —
    /// the submitter-side half of the scripted-panic synchronization.
    panic_at: Vec<Vec<u64>>,
    next_panic: Vec<usize>,
    staged: Vec<Vec<E>>,
    submitted: u64,
    per_shard_submitted: Vec<u64>,
    snapshots: Vec<FleetMetrics>,
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> ShardedFleet<D, E> {
    /// Spawns the fleet: one worker thread, cache server, queue and driver
    /// per shard. `factory(s)` builds shard `s`'s driver — it is retained
    /// so the supervisor can build fresh drivers for cold restarts.
    pub fn new(
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        factory: impl FnMut(usize) -> D + Send + 'static,
    ) -> Self {
        Self::with_fault_plan(cfg, cache, router, factory, FaultPlan::default())
    }

    /// [`new`](Self::new) plus a scripted [`FaultPlan`] threaded into the
    /// shard workers. The empty plan is the identity: it leaves the fleet
    /// bitwise identical to one built without a plan. Intended for chaos
    /// tests and benches; production paths pass no plan.
    pub fn with_fault_plan(
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        factory: impl FnMut(usize) -> D + Send + 'static,
        fault: FaultPlan,
    ) -> Self {
        Self::with_recovery(cfg, cache, router, factory, fault, None)
    }

    /// [`with_fault_plan`](Self::with_fault_plan) plus an optional on-disk
    /// spill directory for warm-restart checkpoints. When `checkpoint_dir`
    /// is given, each shard's latest checkpoint frame is also written to
    /// `dir/shard-{s}.ckpt` (temp-file + atomic rename); stale spill files
    /// for this fleet's shards are removed up front so a reused directory
    /// never resurrects a previous run's state (cold-boot semantics —
    /// deterministic reruns rely on them). To *restore* from the spill
    /// files instead, boot through [`with_boot`](Self::with_boot) with
    /// [`FleetBoot::warm_boot`] set.
    pub fn with_recovery(
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        factory: impl FnMut(usize) -> D + Send + 'static,
        fault: FaultPlan,
        checkpoint_dir: Option<std::path::PathBuf>,
    ) -> Self {
        Self::with_boot(
            cfg,
            cache,
            router,
            factory,
            fault,
            FleetBoot { checkpoint_dir, ..FleetBoot::default() },
        )
    }

    /// The full-control constructor: [`with_recovery`](Self::with_recovery)
    /// semantics plus the warm-boot/handoff behaviour described on
    /// [`FleetBoot`]. With `boot.warm_boot` set, each shard's initial
    /// incarnation attempts a restore — from its validated seed frame if
    /// one is given, else from its spill file — and falls back
    /// detected-cold per shard on any validation failure.
    pub fn with_boot(
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        factory: impl FnMut(usize) -> D + Send + 'static,
        fault: FaultPlan,
        boot: FleetBoot,
    ) -> Self {
        assert!(cfg.shards > 0, "fleet needs at least one shard");
        assert!(cfg.batch > 0, "batch size must be positive");
        if let Some(dir) = &boot.checkpoint_dir {
            let _ = std::fs::create_dir_all(dir);
            if !boot.warm_boot {
                crate::ckpt::clear_spill_dir(dir, cfg.shards);
            }
        }
        let panic_at = fault.panic_indices(cfg.shards);
        let core = Arc::new(FleetCore {
            cache,
            router: Arc::from(router),
            factory: Mutex::new(Box::new(factory)),
            fault,
            total_submitted: AtomicU64::new(0),
            warm_boot: boot.warm_boot,
            boot_handoff: boot.handoff,
            cut_target: Arc::new(AtomicU64::new(u64::MAX)),
            shards: (0..cfg.shards)
                .map(|s| ShardState {
                    lane: Mutex::new(LaneState {
                        producer: None,
                        handle: None,
                        supervisor: Supervisor::new(cfg.restart_budget),
                        delivered: 0,
                    }),
                    cell: Arc::new(ShardCell::new(s, Arc::new(QueueGauges::default()))),
                    slot: Arc::new(CheckpointSlot::new(s, boot.checkpoint_dir.clone())),
                    standby: (cfg.replicas > 0).then(|| Arc::new(StandbySlot::new(s))),
                })
                .collect(),
            cfg,
        });
        if boot.warm_boot {
            for (s, shard) in core.shards.iter().enumerate() {
                match boot.seeds.get(s).and_then(|o| o.as_ref()) {
                    Some(frame) => {
                        // A seed only enters the slot once it decodes as
                        // this shard's checkpoint — a corrupted or
                        // misrouted transfer never silently mis-restores.
                        let valid =
                            ShardCheckpoint::from_frame(frame).map(|c| c.shard == s).unwrap_or(false);
                        if valid {
                            shard.slot.store(frame.clone());
                        } else {
                            shard.slot.clear_disk();
                        }
                    }
                    // A handoff boot with no seed for this shard must come
                    // up cold: any spill file on disk predates the resize.
                    None if boot.handoff => shard.slot.clear_disk(),
                    // Process warm boot: the spill file itself is the seed;
                    // the worker validates it during its restore attempt.
                    None => {}
                }
            }
        }
        for (s, shard) in core.shards.iter().enumerate() {
            shard.cell.set_generation(boot.generation);
            let mut lane = shard.lane.lock().expect("shard lane poisoned");
            if boot.warm_boot {
                // Reconstitute the supervisor's budget state from the frame
                // the shard is about to restore, so a crash-looping shard
                // cannot launder its restart history through a warm boot.
                // The marks' submission clock restarted at 0; `with_state`
                // keeps them conservatively until they age out of the new
                // clock's window.
                let carried = shard.slot.candidates().into_iter().find_map(|frame| {
                    ShardCheckpoint::from_frame(&frame)
                        .ok()
                        .filter(|c| c.shard == s)
                        .map(|c| (c.restarts, c.budget_marks))
                });
                if let Some((restarts, marks)) = carried {
                    lane.supervisor = Supervisor::with_state(core.cfg.restart_budget, restarts, &marks);
                }
            }
            core.spawn(s, &mut lane, 0, false);
        }
        Self {
            staged: (0..core.cfg.shards).map(|_| Vec::with_capacity(core.cfg.batch)).collect(),
            panic_at,
            next_panic: vec![0; core.cfg.shards],
            submitted: 0,
            per_shard_submitted: vec![0; core.cfg.shards],
            snapshots: Vec::new(),
            core,
        }
    }

    /// Routes one envelope to its shard. Under [`Backpressure::Block`] this
    /// may block when the shard's queue is full. Requests routed to a dead
    /// shard are answered immediately via [`Envelope::unavailable`].
    pub fn submit(&mut self, env: E) {
        let s = self.core.router.route(env.request().id, self.core.cfg.shards);
        let idx = self.per_shard_submitted[s];
        self.per_shard_submitted[s] = idx + 1;
        if self.core.shards[s].cell.is_dead() {
            self.core.shards[s].cell.add_unavailable(1);
            env.unavailable();
        } else {
            self.staged[s].push(env);
            let scripted = self.next_panic[s] < self.panic_at[s].len()
                && self.panic_at[s][self.next_panic[s]] == idx;
            if scripted {
                // Deliver everything up to and including the fatal request,
                // then join the doomed worker: it dies popping exactly this
                // request, so the restart boundary is deterministic.
                let handled = self.flush_shard(s);
                if !handled {
                    self.handle_worker_death(s);
                }
            } else if self.staged[s].len() >= self.core.cfg.batch {
                self.flush_shard(s);
            }
        }
        self.submitted += 1;
        if let Some(every) = self.core.cfg.snapshot_every {
            if self.submitted.is_multiple_of(every) {
                let snap = self.metrics();
                self.snapshots.push(snap);
            }
        }
    }

    /// Pushes all staged batches to their shards.
    pub fn flush(&mut self) {
        for s in 0..self.core.cfg.shards {
            self.flush_shard(s);
        }
    }

    /// Delivers shard `s`'s staged batch. Returns true if a worker death was
    /// detected (and settled) during delivery.
    fn flush_shard(&mut self, s: usize) -> bool {
        if self.staged[s].is_empty() {
            return false;
        }
        let died = self.core.deliver(s, &mut self.staged[s], self.submitted);
        if died {
            self.sync_panic_cursor(s);
        }
        died
    }

    /// Settles a worker death detected outside a delivery (the scripted-sync
    /// path, when the fatal push itself succeeded).
    fn handle_worker_death(&mut self, s: usize) {
        // Anything still staged never reached the queue; count it into the
        // lane and release it (Drop impls answer it) — the settlement
        // arithmetic turns it into an exact dropped count.
        let stranded = self.staged[s].len() as u64;
        self.staged[s].clear();
        {
            let mut lane = self.core.shards[s].lane.lock().expect("shard lane poisoned");
            lane.delivered += stranded;
            self.core.settle(s, &mut lane, self.submitted);
        }
        self.sync_panic_cursor(s);
    }

    /// Advances the scripted-panic cursor past indices the dead incarnation
    /// never reached (they fall inside the dropped range).
    fn sync_panic_cursor(&mut self, s: usize) {
        let from = self.per_shard_submitted[s];
        while self.next_panic[s] < self.panic_at[s].len() && self.panic_at[s][self.next_panic[s]] < from
        {
            self.next_panic[s] += 1;
        }
    }

    /// Requests submitted so far (including any later dropped or answered
    /// `Unavailable`).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Shards currently marked permanently dead.
    pub fn dead_shards(&self) -> usize {
        self.core.shards.iter().filter(|sh| sh.cell.is_dead()).count()
    }

    /// Live fleet-wide metrics, assembled from the shard cells. Mid-run this
    /// is a *recent* view (workers publish once per request); after
    /// [`finish`](Self::finish) the final snapshot is exact.
    pub fn metrics(&self) -> FleetMetrics {
        self.metrics_handle().snapshot()
    }

    /// A cloneable, non-blocking handle onto the fleet's metrics. Snapshots
    /// taken through the handle never touch the submission path or the shard
    /// queues (the cells are lock-per-cell mailboxes), so a monitoring
    /// thread — or a gateway `STATS` frame — can read the fleet while a
    /// submitter is blocked on backpressure. The handle stays valid after
    /// [`finish`](Self::finish); it then reports each shard's final
    /// published state.
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle::new(self.core.shards.iter().map(|sh| Arc::clone(&sh.cell)).collect())
    }

    /// A cloneable multi-producer ingest handle onto this fleet. Each
    /// [`FleetProducer`] minted from it stages and flushes independently;
    /// per-shard delivery is serialized by the shard's lane. Producer
    /// traffic bypasses this fleet's snapshot cadence and scripted-panic
    /// synchronization (scripted faults still fire in the workers).
    ///
    /// All producers must be dropped (or flushed) before
    /// [`finish`](Self::finish) for their envelopes to be answered by the
    /// run they rode in.
    pub fn ingest(&self) -> FleetIngest<D, E> {
        FleetIngest { core: Arc::clone(&self.core) }
    }

    /// Snapshots recorded so far.
    pub fn snapshots(&self) -> &[FleetMetrics] {
        &self.snapshots
    }

    /// The shards' checkpoint mailboxes, in shard order. A rebalancer reads
    /// the final-cut frames out of these after
    /// [`finish_with_cut`](Self::finish_with_cut) returns.
    pub fn checkpoint_slots(&self) -> Vec<Arc<CheckpointSlot>> {
        self.core.shards.iter().map(|sh| Arc::clone(&sh.slot)).collect()
    }

    /// Asks every shard to cut a final [`ShardCheckpoint`] at its
    /// end-of-stream request-sequence boundary (during the next
    /// [`finish`](Self::finish)) and marks the shards as draining. The cut
    /// lands in each shard's [`CheckpointSlot`] — including its disk spill
    /// when a checkpoint directory is configured — so a successor fleet can
    /// restore it warm. `target_shards` is journaled with the
    /// [`EventKind::DrainStart`] event.
    pub fn request_final_cut(&self, target_shards: usize) {
        self.core.cut_target.store(target_shards as u64, Ordering::Release);
        for shard in &self.core.shards {
            shard.cell.set_phase(ShardPhase::Draining);
        }
    }

    /// [`request_final_cut`](Self::request_final_cut) followed by
    /// [`finish`](Self::finish): drains the fleet and leaves each shard's
    /// final-cut checkpoint in its slot (and spill file, when configured).
    pub fn finish_with_cut(self, target_shards: usize) -> FleetReport<D> {
        self.request_final_cut(target_shards);
        self.finish()
    }

    /// Flushes staged work, closes the queues, joins every worker and
    /// returns the final report (with the surviving drivers inside).
    ///
    /// Never panics on a dead worker: a shard that died with no flush left
    /// to observe it is folded in here, reported as `dead` with its
    /// unanswered tail counted `dropped`.
    pub fn finish(mut self) -> FleetReport<D> {
        self.flush();
        // End-of-stream for every live shard first, so the workers drain in
        // parallel while we join them in order.
        for shard in &self.core.shards {
            shard.lane.lock().expect("shard lane poisoned").producer = None;
        }
        let mut shards = Vec::with_capacity(self.core.cfg.shards);
        for (s, shard) in self.core.shards.iter().enumerate() {
            let mut lane = shard.lane.lock().expect("shard lane poisoned");
            let exit = lane.handle.take().map(|h| h.join().unwrap_or(WorkerExit::Panicked));
            let (driver, hoc_used_bytes, dc_used_bytes) = match exit {
                Some(WorkerExit::Completed(r)) => (Some(r.driver), r.hoc_used_bytes, r.dc_used_bytes),
                Some(WorkerExit::Panicked) => {
                    // Terminal panic at end-of-stream: no later flush could
                    // observe it, so settle the death here. No respawn — the
                    // stream is over, there is nothing left to serve.
                    let answered = shard.cell.processed_total() + shard.cell.dropped();
                    shard.cell.add_dropped(lane.delivered.saturating_sub(answered));
                    shard.cell.fold_incarnation();
                    shard.cell.mark_dead();
                    shard
                        .cell
                        .obs()
                        .journal
                        .record(shard.cell.processed_total(), EventKind::WorkerDeath);
                    (None, 0, 0)
                }
                None => (None, 0, 0), // buried earlier
            };
            let snap = shard.cell.snapshot();
            shards.push(ShardOutcome {
                shard: s,
                cache: snap.cache,
                processed: snap.processed,
                dropped: snap.dropped,
                unavailable: snap.unavailable,
                shed: snap.shed,
                restarts: snap.restarts,
                warm_restarts: snap.warm_restarts,
                failovers: snap.failovers,
                dead: snap.dead,
                queue_high_water: snap.queue_high_water,
                hoc_used_bytes,
                dc_used_bytes,
                driver,
            });
        }
        let mut snapshots = std::mem::take(&mut self.snapshots);
        snapshots.push(self.metrics_handle().snapshot());
        FleetReport { shards, snapshots, router: self.core.router.label() }
    }
}

impl<D: AdmissionDriver + Send + 'static> ShardedFleet<D, Request> {
    /// Submits every request of `trace` in order.
    pub fn submit_trace(&mut self, trace: &Trace) {
        for req in trace.iter() {
            self.submit(*req);
        }
    }
}

/// A cloneable handle that mints [`FleetProducer`]s — the multi-producer
/// ingest front. One producer per gateway connection (or per load-generator
/// thread) lets N submitters route and stage concurrently; only the final
/// per-shard `push_batch` serializes, per shard, on that shard's lane.
pub struct FleetIngest<D: AdmissionDriver + Send + 'static, E: Envelope> {
    core: Arc<FleetCore<D, E>>,
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> Clone for FleetIngest<D, E> {
    fn clone(&self) -> Self {
        Self { core: Arc::clone(&self.core) }
    }
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> FleetIngest<D, E> {
    /// Number of shards behind this ingest front.
    pub fn shards(&self) -> usize {
        self.core.cfg.shards
    }

    /// Mints an independent producer with its own staging buffers.
    pub fn producer(&self) -> FleetProducer<D, E> {
        FleetProducer {
            staged: (0..self.core.cfg.shards).map(|_| Vec::with_capacity(self.core.cfg.batch)).collect(),
            core: Arc::clone(&self.core),
        }
    }
}

/// One submitter's private staging front onto a shared fleet.
///
/// `submit` stages envelopes into per-shard runs and flushes a run when it
/// reaches the fleet's batch size; [`submit_frame`](Self::submit_frame)
/// routes a whole decoded frame in one pass and then delivers every touched
/// shard's run with a single queue operation each. Within one producer,
/// per-shard order is the submission order (the determinism the equivalence
/// suite relies on); across producers the interleaving is
/// scheduling-dependent, like any set of concurrent connections.
///
/// Dropping the producer flushes whatever is still staged, so envelopes are
/// never stranded in a torn-down connection's buffers.
pub struct FleetProducer<D: AdmissionDriver + Send + 'static, E: Envelope> {
    core: Arc<FleetCore<D, E>>,
    staged: Vec<Vec<E>>,
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> FleetProducer<D, E> {
    /// Routes and stages one envelope; flushes its shard's run when it fills
    /// to the fleet batch size.
    pub fn submit(&mut self, env: E) {
        self.core.total_submitted.fetch_add(1, Ordering::Relaxed);
        let s = self.core.router.route(env.request().id, self.core.cfg.shards);
        self.staged[s].push(env);
        if self.staged[s].len() >= self.core.cfg.batch {
            self.flush_shard(s);
        }
    }

    /// Routes an entire frame (any iterator of envelopes) into per-shard
    /// runs, then delivers every touched shard's run with one queue
    /// operation each. This is the gateway's per-`GET`-frame path: the
    /// client is waiting on the frame's verdicts, so the runs flush
    /// immediately instead of pooling toward the batch threshold.
    pub fn submit_frame(&mut self, envs: impl IntoIterator<Item = E>) {
        let mut n = 0u64;
        for env in envs {
            let s = self.core.router.route(env.request().id, self.core.cfg.shards);
            self.staged[s].push(env);
            n += 1;
        }
        if n > 0 {
            self.core.total_submitted.fetch_add(n, Ordering::Relaxed);
        }
        self.flush();
    }

    /// Delivers every staged run to its shard.
    pub fn flush(&mut self) {
        for s in 0..self.staged.len() {
            self.flush_shard(s);
        }
    }

    fn flush_shard(&mut self, s: usize) {
        if self.staged[s].is_empty() {
            return;
        }
        let cell = &self.core.shards[s].cell;
        if cell.is_dead() {
            // Degraded mode: answer without touching the lane.
            cell.add_unavailable(self.staged[s].len() as u64);
            for env in self.staged[s].drain(..) {
                env.unavailable();
            }
            return;
        }
        if let Some(watermark) = self.core.cfg.shed_watermark {
            if cell.shed_decision(watermark) {
                // Overload: answer Busy without blocking on the full queue.
                // The retry hint scales with how far past the watermark the
                // queue is — deeper backlog, longer client backoff.
                let hint = (cell.queue_depth() / watermark.max(1)).min(7) as u8;
                cell.add_shed(self.staged[s].len() as u64);
                for env in self.staged[s].drain(..) {
                    env.shed(hint.max(1));
                }
                return;
            }
        }
        let now = self.core.total_submitted.load(Ordering::Relaxed);
        self.core.deliver(s, &mut self.staged[s], now);
    }
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> Drop for FleetProducer<D, E> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Everything one worker incarnation needs, bundled for the thread spawn.
struct WorkerCtx<D, E> {
    shard: usize,
    rx: Consumer<E>,
    cell: Arc<ShardCell>,
    cache: CacheConfig,
    driver: D,
    batch: usize,
    /// Per-shard index of the first request this incarnation pops.
    start: u64,
    faults: ShardFaultCursor,
    /// The shard's checkpoint mailbox (writer side; restore source on
    /// respawn).
    slot: Arc<CheckpointSlot>,
    /// Checkpoint cadence in per-shard requests (`None`: never checkpoint).
    checkpoint_every: Option<u64>,
    /// True when this incarnation replaces a dead one and should attempt a
    /// warm restore.
    respawn: bool,
    /// True when this is the shard's *first* incarnation in a warm-booting
    /// fleet and it should attempt a restore from the slot (seeded frame or
    /// spill file) before serving.
    boot: bool,
    /// True when a boot-time restore stems from a live handoff (resize)
    /// rather than a cross-process warm boot; controls the journal flavour.
    boot_handoff: bool,
    /// Requested final-cut target shard count; `u64::MAX` means no cut.
    cut_target: Arc<AtomicU64>,
    /// The shard's hot standby, fed at every checkpoint cut (`None` when the
    /// fleet runs without replicas).
    standby: Option<Arc<StandbySlot>>,
    /// Router generation, stamped into every replica envelope.
    generation: u32,
    /// Supervisor budget state snapshotted at spawn (it is constant for the
    /// lifetime of one incarnation), carried inside every checkpoint this
    /// incarnation cuts so warm boots cannot launder restart history.
    budget_restarts: u32,
    /// In-window restart marks at spawn (see `budget_restarts`).
    budget_marks: Vec<u64>,
}

/// Feeds one checkpoint cut to the shard's standby and folds the outcome
/// into the cell's replication metrics and the journal. Loss is detected and
/// journaled here — a failed or poisoned standby is never silent: the next
/// feed records [`EventKind::StandbyLost`] and (when the feed itself
/// succeeded) re-seeds a fresh standby with a full image.
fn feed_standby(standby: &StandbySlot, cell: &ShardCell, generation: u32, seq: u64, frame: &[u8]) {
    match standby.feed(generation, seq, frame) {
        FeedOutcome::Seeded { shipped_bytes } => {
            cell.record_replica(seq, shipped_bytes);
            cell.obs().journal.record(seq, EventKind::ReplicaSeeded { checkpoint_seq: seq });
        }
        FeedOutcome::Applied { shipped_bytes, lag } => {
            cell.record_replica(seq, shipped_bytes);
            cell.obs().journal.record(seq, EventKind::ReplicaLag { checkpoint_seq: seq, lag });
        }
        FeedOutcome::Replaced { shipped_bytes } => {
            cell.record_standby_lost();
            cell.obs().journal.record(seq, EventKind::StandbyLost { checkpoint_seq: seq });
            cell.record_replica(seq, shipped_bytes);
            cell.obs().journal.record(seq, EventKind::ReplicaSeeded { checkpoint_seq: seq });
        }
        FeedOutcome::Lost => {
            cell.record_standby_lost();
            cell.obs().journal.record(seq, EventKind::StandbyLost { checkpoint_seq: seq });
        }
    }
}

/// Attempts a warm restore from the slot's best candidate. Returns the
/// restored server, the policy deployed at the checkpoint boundary, the
/// metrics base the incarnation must subtract before publishing (its
/// pre-existing history, already folded into the cell by the supervisor),
/// and the journal facts: which candidate validated (0 = active buffer,
/// 1 = previous buffer, 2 = disk spill) and the restored sequence number.
#[allow(clippy::type_complexity)]
fn try_restore<D: AdmissionDriver>(
    shard: usize,
    slot: &CheckpointSlot,
    cache: &CacheConfig,
    driver: &mut D,
) -> Option<(CacheServer, darwin_cache::ThresholdPolicy, CacheMetrics, u8, u64)> {
    for (candidate, frame) in slot.candidates().into_iter().enumerate() {
        let Ok(ckpt) = ShardCheckpoint::from_frame(&frame) else { continue };
        if ckpt.shard != shard {
            continue;
        }
        let Ok(server) = CacheServer::restore_state(cache.clone(), &ckpt.cache) else { continue };
        if !driver.load_state(&ckpt.driver) {
            continue;
        }
        let base = server.metrics();
        return Some((server, ckpt.policy, base, candidate as u8, ckpt.seq));
    }
    None
}

/// Stable journal label for a scripted fault. Part of the deterministic
/// journal contract: integers and fixed strings only.
fn fault_label(kind: &FaultKind) -> String {
    match kind {
        FaultKind::Panic => "panic".into(),
        FaultKind::Delay { spins } => format!("delay({spins})"),
        FaultKind::QueueFull => "queue-full".into(),
        FaultKind::CorruptCheckpoint { torn: true } => "corrupt-ckpt(torn)".into(),
        FaultKind::CorruptCheckpoint { torn: false } => "corrupt-ckpt(zeroed)".into(),
        FaultKind::CorruptStandby => "corrupt-standby".into(),
    }
}

/// The per-shard serving loop. Identical, request for request, to the
/// sequential loop in `replay::run_partition` — that symmetry is the
/// equivalence proof's other half. Each processed envelope is completed with
/// its [`Verdict`] before the driver observes the request.
///
/// The whole loop runs under `catch_unwind`: a panic (organic or scripted)
/// drops the in-hand envelope, the drain buffer and the consumer endpoint —
/// each of which answers its envelopes via `Drop` — and the worker reports
/// [`WorkerExit::Panicked`] instead of poisoning `join()`.
fn worker<D: AdmissionDriver, E: Envelope>(ctx: WorkerCtx<D, E>) -> WorkerExit<D> {
    let WorkerCtx {
        shard,
        rx,
        cell,
        cache,
        mut driver,
        batch,
        start,
        mut faults,
        slot,
        checkpoint_every,
        respawn,
        boot,
        boot_handoff,
        cut_target,
        standby,
        generation,
        budget_restarts,
        budget_marks,
    } = ctx;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        darwin_parallel::inline_sweeps(|| {
            // Respawned incarnations try the shard's checkpoint candidates
            // first (warm restart); first incarnations of a warm-booting
            // fleet do the same against their seeded/spilled frame (warm
            // boot). Validation failure of every candidate — or no
            // checkpoint at all — falls back to the cold path. The restored
            // metrics become this incarnation's publication *base*: the
            // cell already holds the shard's whole pre-death history
            // (folded by the supervisor), so the incarnation must publish
            // only its increments or restored counters would double-count.
            let attempt = respawn || boot;
            let had_candidates = attempt && !slot.candidates().is_empty();
            let (mut server, mut current_policy, base) =
                match attempt.then(|| try_restore(shard, &slot, &cache, &mut driver)).flatten() {
                    Some((server, policy, base, candidate, checkpoint_seq)) => {
                        if respawn {
                            cell.record_warm_restart();
                            cell.obs()
                                .journal
                                .record(start, EventKind::RestoreWarm { candidate, checkpoint_seq });
                        } else {
                            cell.record_warm_boot();
                            cell.obs().journal.record(
                                start,
                                EventKind::HandoffRestore { checkpoint_seq, warm_boot: !boot_handoff },
                            );
                        }
                        (server, policy, base)
                    }
                    None => {
                        // A failed boot attempt detects cold: drop the
                        // invalid spill so a later restart can't retry it.
                        if boot && !respawn {
                            slot.clear_disk();
                        }
                        if respawn || had_candidates {
                            cell.obs().journal.record(start, EventKind::RestoreCold);
                        }
                        (CacheServer::new(cache), driver.initial_policy(), CacheMetrics::default())
                    }
                };
            server.set_policy(current_policy);
            let mut processed = 0u64;
            let mut switch_cost = SwitchCostTracker::default();
            let mut buf: Vec<E> = Vec::with_capacity(batch);
            let gauges = rx.gauges();
            while rx.pop_batch(&mut buf, batch) {
                for env in buf.drain(..) {
                    while let Some(kind) = faults.take(start + processed) {
                        cell.obs().journal.record(
                            start + processed,
                            EventKind::FaultInjected { fault: fault_label(&kind) },
                        );
                        match kind {
                            FaultKind::Panic => panic!(
                                "scripted fault: shard {shard} dies at per-shard request {}",
                                start + processed
                            ),
                            FaultKind::Delay { spins } => {
                                for _ in 0..spins {
                                    std::hint::spin_loop();
                                }
                            }
                            // Stall until the input queue is packed solid
                            // (or the stream ended): a manufactured
                            // backpressure episode.
                            FaultKind::QueueFull => {
                                while gauges.depth() < rx.capacity() && !rx.is_producer_closed() {
                                    std::thread::yield_now();
                                }
                            }
                            FaultKind::CorruptCheckpoint { torn } => slot.corrupt(torn),
                            // The standby process "dies": its applied frame
                            // is discarded. Detected and journaled at the
                            // next feed; a budget-exhausting death before
                            // then falls back to burial.
                            FaultKind::CorruptStandby => {
                                if let Some(st) = &standby {
                                    st.poison();
                                }
                            }
                        }
                    }
                    let req = *env.request();
                    let writes_before = server.metrics().hoc_writes;
                    let served = Instant::now();
                    let outcome = server.process(&req);
                    cell.obs().serve.record_duration(served.elapsed());
                    processed += 1;
                    // The *raw* cumulative metrics drive the driver and the
                    // admission indicator — they are part of the determinism
                    // contract. Only the published copy is re-based.
                    let metrics = server.metrics();
                    env.complete(Verdict {
                        shard,
                        outcome,
                        admitted: metrics.hoc_writes > writes_before,
                    });
                    // Per-request publication keeps the cell exact at any
                    // crash point — the conservation law depends on it.
                    cell.publish_request(metrics.diff(&base), processed);
                    if let Some(policy) = driver.observe(&req, &metrics) {
                        current_policy = policy;
                        server.set_policy(policy);
                    }
                    let seq = start + processed;
                    // Feed the switching-cost tracker, then journal any
                    // control-plane decisions this request triggered. Both
                    // are pure functions of the request stream, so the
                    // journal stays byte-reproducible under a seed.
                    if let Some(done) = switch_cost.observe(outcome != RequestOutcome::OriginFetch, seq)
                    {
                        cell.obs().journal.record(done.seq, done.kind);
                    }
                    for ev in driver.drain_events() {
                        match ev {
                            ControlEvent::Switch { from, to, round, posterior } => {
                                if let Some(done) = switch_cost.on_switch(seq, to as u32) {
                                    cell.obs().journal.record(done.seq, done.kind);
                                }
                                cell.obs().journal.record(
                                    seq,
                                    EventKind::ExpertSwitch {
                                        from: Some(from as u32),
                                        to: to as u32,
                                        round: round as u32,
                                        posterior,
                                    },
                                );
                            }
                            ControlEvent::Drift { restarts } => {
                                cell.obs()
                                    .journal
                                    .record(seq, EventKind::DriftDetected { restarts: restarts as u32 });
                            }
                        }
                    }
                    // Checkpoint exactly at configured request-sequence
                    // boundaries, after the driver observed the request —
                    // the same cut a paused sequential run would make.
                    if let Some(every) = checkpoint_every {
                        if every > 0 && seq.is_multiple_of(every) {
                            if let Some(dstate) = driver.save_state() {
                                let pause = Instant::now();
                                let ckpt = ShardCheckpoint {
                                    shard,
                                    seq,
                                    policy: current_policy,
                                    cache: server.save_state(),
                                    driver: dstate,
                                    restarts: budget_restarts,
                                    budget_marks: budget_marks.clone(),
                                };
                                let frame = ckpt.to_frame();
                                slot.store(frame.clone());
                                cell.obs().ckpt_pause.record_duration(pause.elapsed());
                                cell.record_checkpoint(seq);
                                cell.obs()
                                    .journal
                                    .record(seq, EventKind::CheckpointCut { checkpoint_seq: seq });
                                if let Some(st) = &standby {
                                    feed_standby(st, &cell, generation, seq, &frame);
                                }
                            }
                        }
                    }
                }
                cell.publish(server.metrics().diff(&base), processed, server.policy_label());
            }
            cell.publish(server.metrics().diff(&base), processed, server.policy_label());
            if let Some(done) = switch_cost.finish(start + processed) {
                cell.obs().journal.record(done.seq, done.kind);
            }
            // Final cut for a live handoff: the producer side has closed the
            // queue, so `start + processed` is the exact request-sequence
            // boundary every shard cuts at — the same cut a paused
            // sequential run would make. Journaled here (not by the
            // resizer) because only the worker knows the boundary.
            let target = cut_target.load(Ordering::Acquire);
            if target != u64::MAX {
                if let Some(dstate) = driver.save_state() {
                    let seq = start + processed;
                    cell.obs()
                        .journal
                        .record(seq, EventKind::DrainStart { target_shards: target as u32 });
                    let ckpt = ShardCheckpoint {
                        shard,
                        seq,
                        policy: current_policy,
                        cache: server.save_state(),
                        driver: dstate,
                        restarts: budget_restarts,
                        budget_marks: budget_marks.clone(),
                    };
                    let frame = ckpt.to_frame();
                    slot.store(frame.clone());
                    cell.record_checkpoint(seq);
                    cell.obs().journal.record(seq, EventKind::HandoffCut { checkpoint_seq: seq });
                    if let Some(st) = &standby {
                        feed_standby(st, &cell, generation, seq, &frame);
                    }
                }
            }
            WorkerResult {
                hoc_used_bytes: server.hoc_used_bytes(),
                dc_used_bytes: server.dc_used_bytes(),
                driver,
            }
        })
    }));
    match outcome {
        Ok(result) => WorkerExit::Completed(result),
        Err(_) => WorkerExit::Panicked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use crate::router::{HashRouter, ModuloRouter};
    use darwin_cache::ThresholdPolicy;
    use darwin_testbed::StaticDriver;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn trace(n: usize, seed: u64) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
    }

    fn static_fleet(cfg: FleetConfig) -> ShardedFleet<StaticDriver> {
        ShardedFleet::new(cfg, CacheConfig::small_test(), Box::new(HashRouter), |_| {
            StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024))
        })
    }

    #[test]
    fn fleet_processes_every_request_under_block() {
        let t = trace(20_000, 3);
        let mut fleet = static_fleet(FleetConfig {
            shards: 4,
            queue_capacity: 64,
            batch: 16,
            backpressure: Backpressure::Block,
            snapshot_every: Some(5_000),
            restart_budget: RestartBudget::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        });
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(report.total_processed(), 20_000);
        assert_eq!(report.total_dropped(), 0);
        assert_eq!(report.total_unavailable(), 0);
        assert_eq!(report.total_restarts(), 0);
        assert_eq!(report.dead_shards(), 0);
        assert_eq!(report.fleet_cache().requests, 20_000);
        // Periodic snapshots at 5k/10k/15k/20k plus the final one.
        assert_eq!(report.snapshots.len(), 5);
        let last = report.snapshots.last().unwrap();
        assert_eq!(last.total_processed(), 20_000);
        assert_eq!(last.fleet_cache(), report.fleet_cache());
        for s in &report.shards {
            assert!(s.queue_high_water <= 64, "capacity bound violated");
            assert!(!s.driver.as_ref().expect("healthy shard keeps its driver").label().is_empty());
        }
    }

    #[test]
    fn drop_newest_accounts_for_every_request() {
        // A tiny queue with a huge batch guarantees overflow: whatever is
        // not processed must be counted as dropped.
        let t = trace(30_000, 9);
        let mut fleet = static_fleet(FleetConfig {
            shards: 2,
            queue_capacity: 8,
            batch: 512,
            backpressure: Backpressure::DropNewest,
            snapshot_every: None,
            restart_budget: RestartBudget::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        });
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(
            report.total_processed() + report.total_dropped(),
            30_000,
            "processed + dropped must cover every submission"
        );
        assert_eq!(report.fleet_cache().requests, report.total_processed());
    }

    /// Envelope that records its verdict into a shared log.
    struct VerdictProbe {
        req: Request,
        out: Arc<std::sync::Mutex<Vec<Verdict>>>,
    }

    impl Envelope for VerdictProbe {
        fn request(&self) -> &Request {
            &self.req
        }
        fn complete(self, verdict: Verdict) {
            self.out.lock().unwrap().push(verdict);
        }
    }

    #[test]
    fn envelopes_receive_verdicts_matching_metrics() {
        let t = trace(10_000, 11);
        let verdicts: Arc<std::sync::Mutex<Vec<Verdict>>> = Arc::default();
        let mut fleet: ShardedFleet<StaticDriver, VerdictProbe> = ShardedFleet::new(
            FleetConfig::with_shards(2),
            CacheConfig::small_test(),
            Box::new(HashRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
        );
        for req in t.iter() {
            fleet.submit(VerdictProbe { req: *req, out: Arc::clone(&verdicts) });
        }
        let report = fleet.finish();
        let v = verdicts.lock().unwrap();
        assert_eq!(v.len(), 10_000, "every envelope completed exactly once");
        let cache = report.fleet_cache();
        use darwin_cache::RequestOutcome::*;
        assert_eq!(v.iter().filter(|x| x.outcome == HocHit).count() as u64, cache.hoc_hits);
        assert_eq!(v.iter().filter(|x| x.outcome == DcHit).count() as u64, cache.dc_hits);
        assert_eq!(v.iter().filter(|x| x.outcome == OriginFetch).count() as u64, cache.origin_fetches);
        assert_eq!(v.iter().filter(|x| x.admitted).count() as u64, cache.hoc_writes);
        assert!(v.iter().all(|x| x.shard < 2));
    }

    #[test]
    fn shards_partition_the_object_space() {
        let t = trace(10_000, 5);
        let mut fleet = ShardedFleet::new(
            FleetConfig::with_shards(4),
            CacheConfig::small_test(),
            Box::new(ModuloRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
        );
        fleet.submit_trace(&t);
        let report = fleet.finish();
        // Every shard saw work (modulo over dense generator IDs), and the
        // shard request counts sum to the trace.
        assert_eq!(report.shards.iter().map(|s| s.cache.requests).sum::<u64>(), 10_000);
        assert!(report.shards.iter().all(|s| s.cache.requests > 0));
        assert_eq!(report.router, "modulo");
    }

    #[test]
    fn scripted_panic_restarts_the_shard_and_conserves_answers() {
        let t = trace(12_000, 21);
        let plan = FaultPlan::new(vec![FaultEvent { shard: 0, at: 100, kind: FaultKind::Panic }]);
        let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
            FleetConfig { shards: 2, batch: 32, ..FleetConfig::default() },
            CacheConfig::small_test(),
            Box::new(HashRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
            plan,
        );
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(report.total_restarts(), 1, "one scripted death, one restart");
        assert_eq!(report.dead_shards(), 0);
        assert_eq!(
            report.total_processed() + report.total_dropped() + report.total_unavailable(),
            12_000,
            "conservation across the restart"
        );
        let s0 = &report.shards[0];
        assert_eq!(s0.dropped, 1, "exactly the fatal request dropped");
        assert!(s0.driver.is_some(), "respawned shard has a (fresh) driver");
        assert_eq!(s0.restarts, 1);
        assert_eq!(report.fleet_cache().requests, report.total_processed());
    }

    #[test]
    fn exhausted_budget_buries_the_shard_and_degrades() {
        let t = trace(10_000, 33);
        let plan = FaultPlan::new(vec![FaultEvent { shard: 0, at: 50, kind: FaultKind::Panic }]);
        let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
            FleetConfig {
                shards: 2,
                restart_budget: RestartBudget::with_max_restarts(0),
                ..FleetConfig::default()
            },
            CacheConfig::small_test(),
            Box::new(HashRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
            plan,
        );
        fleet.submit_trace(&t);
        assert_eq!(fleet.dead_shards(), 1);
        let report = fleet.finish();
        let s0 = &report.shards[0];
        assert!(s0.dead, "zero budget: first panic is fatal");
        assert_eq!(s0.restarts, 0);
        assert!(s0.driver.is_none(), "dead shard's driver unwound with it");
        assert_eq!(s0.processed, 50, "requests before the fault were served");
        assert_eq!(s0.dropped, 1, "the fatal request");
        assert!(s0.unavailable > 0, "later arrivals answered Unavailable");
        assert_eq!(
            report.total_processed() + report.total_dropped() + report.total_unavailable(),
            10_000,
            "conservation with a dead shard"
        );
        // Shard 1 was untouched.
        assert!(!report.shards[1].dead);
        assert_eq!(report.shards[1].dropped + report.shards[1].unavailable, 0);
    }

    #[test]
    fn boundary_panic_with_checkpointing_restarts_warm() {
        let t = trace(12_000, 21);
        // Panic exactly at a checkpoint boundary: the respawn restores the
        // checkpoint taken at seq 1_000 (covering requests [0, 1_000)).
        let plan = FaultPlan::new(vec![FaultEvent { shard: 0, at: 1_000, kind: FaultKind::Panic }]);
        let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
            FleetConfig { shards: 2, batch: 32, checkpoint_every: Some(500), ..FleetConfig::default() },
            CacheConfig::small_test(),
            Box::new(HashRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
            plan,
        );
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(report.total_restarts(), 1);
        assert_eq!(report.total_warm_restarts(), 1, "boundary kill must restore warm");
        assert_eq!(report.total_cold_restarts(), 0);
        assert_eq!(report.shards[0].dropped, 1, "exactly the fatal request dropped");
        assert_eq!(
            report.total_processed() + report.total_dropped() + report.total_unavailable(),
            12_000,
            "conservation across the warm restart"
        );
        assert_eq!(report.fleet_cache().requests, report.total_processed());
        // The final snapshot carries the checkpoint gauges.
        let last = report.snapshots.last().unwrap();
        assert!(last.shards[0].checkpoint_seq.is_some());
        assert_eq!(last.total_warm_restarts() + last.total_cold_restarts(), last.total_restarts());
    }

    #[test]
    fn corrupt_checkpoint_forces_detected_cold_fallback() {
        let t = trace(12_000, 21);
        for &torn in &[true, false] {
            // Corrupt every checkpoint candidate right before the panic at
            // the same index (corruption sorts before the death).
            let plan = FaultPlan::new(vec![
                FaultEvent { shard: 0, at: 1_000, kind: FaultKind::CorruptCheckpoint { torn } },
                FaultEvent { shard: 0, at: 1_000, kind: FaultKind::Panic },
            ]);
            let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
                FleetConfig {
                    shards: 2,
                    batch: 32,
                    checkpoint_every: Some(500),
                    ..FleetConfig::default()
                },
                CacheConfig::small_test(),
                Box::new(HashRouter),
                |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
                plan,
            );
            fleet.submit_trace(&t);
            let report = fleet.finish();
            assert_eq!(report.total_restarts(), 1, "torn={torn}");
            assert_eq!(
                report.total_warm_restarts(),
                0,
                "torn={torn}: corruption must be detected, restart must go cold"
            );
            assert_eq!(report.total_cold_restarts(), 1, "torn={torn}");
            assert_eq!(
                report.total_processed() + report.total_dropped() + report.total_unavailable(),
                12_000,
                "torn={torn}: conservation across the cold fallback"
            );
        }
    }

    #[test]
    fn delay_and_queue_full_faults_do_not_change_results() {
        let t = trace(8_000, 44);
        let run = |plan: FaultPlan| {
            let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
                FleetConfig { shards: 2, queue_capacity: 32, batch: 8, ..FleetConfig::default() },
                CacheConfig::small_test(),
                Box::new(HashRouter),
                |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
                plan,
            );
            fleet.submit_trace(&t);
            fleet.finish()
        };
        let clean = run(FaultPlan::default());
        let slowed = run(FaultPlan::new(vec![
            FaultEvent { shard: 0, at: 40, kind: FaultKind::Delay { spins: 2_000 } },
            FaultEvent { shard: 1, at: 10, kind: FaultKind::QueueFull },
            FaultEvent { shard: 1, at: 11, kind: FaultKind::Delay { spins: 100 } },
        ]));
        assert_eq!(clean.fleet_cache(), slowed.fleet_cache(), "stalls never alter state");
        assert_eq!(slowed.total_restarts(), 0);
        assert_eq!(slowed.total_dropped(), 0);
        for (a, b) in clean.shards.iter().zip(slowed.shards.iter()) {
            assert_eq!(a.cache, b.cache);
            assert_eq!(a.processed, b.processed);
        }
    }

    #[test]
    fn multi_producer_ingest_conserves_and_matches_single_submitter_totals() {
        // Four producer threads split one trace; every request must be
        // answered exactly once and the fleet-wide totals must balance.
        let t = trace(24_000, 61);
        let fleet = static_fleet(FleetConfig {
            shards: 4,
            queue_capacity: 128,
            batch: 32,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: RestartBudget::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        });
        let ingest = fleet.ingest();
        std::thread::scope(|scope| {
            for chunk in t.requests().chunks(6_000) {
                let mut producer = ingest.producer();
                scope.spawn(move || {
                    for frame in chunk.chunks(64) {
                        producer.submit_frame(frame.iter().copied());
                    }
                });
            }
        });
        let report = fleet.finish();
        assert_eq!(report.total_processed(), 24_000);
        assert_eq!(report.total_dropped(), 0);
        assert_eq!(report.total_unavailable(), 0);
        assert_eq!(report.fleet_cache().requests, 24_000);
        // Partitioning is router-determined, so per-shard request counts are
        // interleaving-independent even with 4 concurrent producers.
        let seq = crate::replay::partition(&t, &HashRouter, 4);
        for (outcome, part) in report.shards.iter().zip(&seq) {
            assert_eq!(outcome.cache.requests, part.len() as u64, "shard {}", outcome.shard);
        }
    }

    #[test]
    fn producer_drop_flushes_staged_work() {
        let t = trace(1_000, 13);
        let fleet = static_fleet(FleetConfig {
            shards: 2,
            queue_capacity: 4096,
            batch: 100_000, // never reaches the flush threshold on its own
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: RestartBudget::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        });
        {
            let mut producer = fleet.ingest().producer();
            for req in t.iter() {
                producer.submit(*req);
            }
            // No explicit flush: the drop must deliver the staged runs.
        }
        let report = fleet.finish();
        assert_eq!(report.total_processed(), 1_000);
    }
}
