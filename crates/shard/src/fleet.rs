//! The sharded fleet: N cache servers on N worker threads.
//!
//! [`ShardedFleet`] hash-partitions the object space across `shards`
//! independent [`CacheServer`]s, each owned by a dedicated worker thread and
//! each driven by its *own* [`AdmissionDriver`] — with [`DarwinDriver`]
//! drivers this is one Darwin controller per shard, learning that shard's
//! sub-workload (the paper's per-server deployment model, §5).
//!
//! # Determinism contract
//!
//! The router is a pure function of `(id, shards)`, so shard `s` sees
//! exactly the subsequence of the submitted stream whose IDs route to `s`,
//! *in submission order* — the SPSC queue preserves order and nothing else
//! touches the shard's state. Thread scheduling can change timing but never
//! ordering, so under [`Backpressure::Block`] a fleet replay is bitwise
//! identical (metrics, deployed-expert sequence, final cache occupancy) to
//! running each shard's filtered trace sequentially. `replay.rs` exposes
//! both sides of this equation and `tests/equivalence.rs` enforces it.
//!
//! Worker threads wrap their serving loop in
//! [`darwin_parallel::inline_sweeps`], so a per-shard Darwin controller that
//! sweeps experts at an epoch boundary runs those sweeps inline instead of
//! stacking `DARWIN_THREADS`-wide pools `shards` times over.
//!
//! [`DarwinDriver`]: darwin_testbed::DarwinDriver

use crate::metrics::{FleetMetrics, MetricsHandle, ShardCell};
use crate::queue::{channel, Producer};
use crate::router::Router;
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer, RequestOutcome};
use darwin_testbed::AdmissionDriver;
use darwin_trace::{Request, Trace};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What one request's trip through its shard produced: where it was served
/// from and whether the admission policy promoted it into the HOC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Shard that served the request.
    pub shard: usize,
    /// Where the request was served from.
    pub outcome: RequestOutcome,
    /// True if this request's object was written into the HOC (the expert's
    /// admission decision fired).
    pub admitted: bool,
}

/// A queue item: a request plus whatever completion state rides along with
/// it through the shard queue.
///
/// The fleet routes on [`Envelope::request`] and, once the shard worker has
/// processed the request, hands the envelope its [`Verdict`] via
/// [`Envelope::complete`]. A plain [`Request`] is the trivial envelope
/// (completion is a no-op) — in-process replay uses that; the network
/// gateway wraps requests in envelopes that deliver the verdict back to the
/// originating connection.
///
/// Implementations that must report *something* even when the envelope never
/// reaches a worker (dropped under [`Backpressure::DropNewest`], or a dead
/// shard) should do so in their `Drop` impl: the queue simply drops shed
/// envelopes.
pub trait Envelope: Send + 'static {
    /// The request to route and process.
    fn request(&self) -> &Request;
    /// Called on the shard worker thread after the request was processed.
    fn complete(self, verdict: Verdict);
}

impl Envelope for Request {
    fn request(&self) -> &Request {
        self
    }
    fn complete(self, _verdict: Verdict) {}
}

/// What happens when a shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backpressure {
    /// Submission blocks until the shard drains (lossless — required for the
    /// determinism/replay contract).
    Block,
    /// The overflow is dropped and counted (load shedding, as a production
    /// front-end under overload would do).
    DropNewest,
}

/// Fleet parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of shards (= worker threads = cache servers = controllers).
    pub shards: usize,
    /// Per-shard queue capacity, in requests.
    pub queue_capacity: usize,
    /// Submission/drain batch size (amortizes queue locking).
    pub batch: usize,
    /// Full-queue behaviour.
    pub backpressure: Backpressure,
    /// Record a [`FleetMetrics`] snapshot every this many submitted requests
    /// (`None` disables periodic snapshots; a final one is always taken).
    pub snapshot_every: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 4096,
            batch: 256,
            backpressure: Backpressure::Block,
            snapshot_every: None,
        }
    }
}

impl FleetConfig {
    /// A fleet of `shards` shards with the remaining defaults.
    pub fn with_shards(shards: usize) -> Self {
        Self { shards, ..Self::default() }
    }
}

/// Everything one shard produced, returned by [`ShardedFleet::finish`]. The
/// driver comes back too, so callers can pull switch histories out of
/// per-shard Darwin controllers.
#[derive(Debug)]
pub struct ShardOutcome<D> {
    /// Shard index.
    pub shard: usize,
    /// Final cumulative cache metrics.
    pub cache: CacheMetrics,
    /// Requests the worker processed.
    pub processed: u64,
    /// Requests dropped at the queue (always 0 under [`Backpressure::Block`]).
    pub dropped: u64,
    /// Queue high-water mark over the run.
    pub queue_high_water: usize,
    /// Final HOC occupancy, bytes.
    pub hoc_used_bytes: u64,
    /// Final DC occupancy, bytes.
    pub dc_used_bytes: u64,
    /// The shard's admission driver, returned for post-mortem inspection.
    pub driver: D,
}

/// Result of a completed fleet run.
#[derive(Debug)]
pub struct FleetReport<D> {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardOutcome<D>>,
    /// Periodic snapshots ([`FleetConfig::snapshot_every`]) plus a final one.
    pub snapshots: Vec<FleetMetrics>,
    /// Label of the router that partitioned the stream.
    pub router: String,
}

impl<D> FleetReport<D> {
    /// Fleet-wide cache metrics (counter-wise sum over shards).
    pub fn fleet_cache(&self) -> CacheMetrics {
        CacheMetrics::merge_all(self.shards.iter().map(|s| &s.cache))
    }

    /// Requests processed across the fleet.
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Requests dropped across the fleet.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }
}

struct WorkerResult<D> {
    cache: CacheMetrics,
    processed: u64,
    hoc_used_bytes: u64,
    dc_used_bytes: u64,
    driver: D,
}

/// A running fleet. Submit requests (or any [`Envelope`] around them), then
/// [`finish`](Self::finish) to join the workers and collect the report.
pub struct ShardedFleet<D: AdmissionDriver + Send + 'static, E: Envelope = Request> {
    cfg: FleetConfig,
    router: Box<dyn Router>,
    producers: Vec<Producer<E>>,
    cells: Vec<Arc<ShardCell>>,
    handles: Vec<JoinHandle<WorkerResult<D>>>,
    staged: Vec<Vec<E>>,
    submitted: u64,
    snapshots: Vec<FleetMetrics>,
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> ShardedFleet<D, E> {
    /// Spawns the fleet: one worker thread, cache server, queue and driver
    /// per shard. `factory(s)` builds shard `s`'s driver.
    pub fn new(
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        mut factory: impl FnMut(usize) -> D,
    ) -> Self {
        assert!(cfg.shards > 0, "fleet needs at least one shard");
        assert!(cfg.batch > 0, "batch size must be positive");
        let mut producers = Vec::with_capacity(cfg.shards);
        let mut cells = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let (tx, rx) = channel::<E>(cfg.queue_capacity);
            let cell = Arc::new(ShardCell::new(s, tx.gauges()));
            let worker_cell = Arc::clone(&cell);
            let worker_cache = cache.clone();
            let driver = factory(s);
            let batch = cfg.batch;
            let handle = std::thread::Builder::new()
                .name(format!("shard-{s}"))
                .spawn(move || worker(s, rx, worker_cell, worker_cache, driver, batch))
                .expect("spawn shard worker");
            producers.push(tx);
            cells.push(cell);
            handles.push(handle);
        }
        Self {
            staged: (0..cfg.shards).map(|_| Vec::with_capacity(cfg.batch)).collect(),
            cfg,
            router,
            producers,
            cells,
            handles,
            submitted: 0,
            snapshots: Vec::new(),
        }
    }

    /// Routes one envelope to its shard. Under [`Backpressure::Block`] this
    /// may block when the shard's queue is full.
    pub fn submit(&mut self, env: E) {
        let s = self.router.route(env.request().id, self.cfg.shards);
        self.staged[s].push(env);
        if self.staged[s].len() >= self.cfg.batch {
            self.flush_shard(s);
        }
        self.submitted += 1;
        if let Some(every) = self.cfg.snapshot_every {
            if self.submitted.is_multiple_of(every) {
                let snap = self.metrics();
                self.snapshots.push(snap);
            }
        }
    }

    /// Pushes all staged batches to their shards.
    pub fn flush(&mut self) {
        for s in 0..self.cfg.shards {
            self.flush_shard(s);
        }
    }

    fn flush_shard(&mut self, s: usize) {
        if self.staged[s].is_empty() {
            return;
        }
        match self.cfg.backpressure {
            Backpressure::Block => {
                let undelivered = self.producers[s].push_all(&mut self.staged[s]);
                assert_eq!(undelivered, 0, "shard {s} worker died mid-run");
            }
            Backpressure::DropNewest => {
                let dropped = self.producers[s].try_push_all(&mut self.staged[s]);
                self.cells[s].add_dropped(dropped as u64);
            }
        }
    }

    /// Requests submitted so far (including any later dropped).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Live fleet-wide metrics, assembled from the shard cells. Mid-run this
    /// is a *recent* view (workers publish once per drained batch); after
    /// [`finish`](Self::finish) the final snapshot is exact.
    pub fn metrics(&self) -> FleetMetrics {
        self.metrics_handle().snapshot()
    }

    /// A cloneable, non-blocking handle onto the fleet's metrics. Snapshots
    /// taken through the handle never touch the submission path or the shard
    /// queues (the cells are lock-per-cell mailboxes), so a monitoring
    /// thread — or a gateway `STATS` frame — can read the fleet while a
    /// submitter is blocked on backpressure. The handle stays valid after
    /// [`finish`](Self::finish); it then reports each shard's final
    /// published state.
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle::new(self.cells.clone())
    }

    /// Snapshots recorded so far.
    pub fn snapshots(&self) -> &[FleetMetrics] {
        &self.snapshots
    }

    /// Flushes staged work, closes the queues, joins every worker and
    /// returns the final report (with the drivers inside).
    pub fn finish(mut self) -> FleetReport<D> {
        self.flush();
        drop(self.producers); // end-of-stream for every shard
        let mut shards = Vec::with_capacity(self.handles.len());
        for (s, handle) in self.handles.into_iter().enumerate() {
            let r = handle.join().expect("shard worker panicked");
            let snap = self.cells[s].snapshot();
            shards.push(ShardOutcome {
                shard: s,
                cache: r.cache,
                processed: r.processed,
                dropped: snap.dropped,
                queue_high_water: snap.queue_high_water,
                hoc_used_bytes: r.hoc_used_bytes,
                dc_used_bytes: r.dc_used_bytes,
                driver: r.driver,
            });
        }
        let mut snapshots = self.snapshots;
        snapshots.push(MetricsHandle::new(self.cells).snapshot());
        FleetReport { shards, snapshots, router: self.router.label() }
    }
}

impl<D: AdmissionDriver + Send + 'static> ShardedFleet<D, Request> {
    /// Submits every request of `trace` in order.
    pub fn submit_trace(&mut self, trace: &Trace) {
        for req in trace.iter() {
            self.submit(*req);
        }
    }
}

/// The per-shard serving loop. Identical, request for request, to the
/// sequential loop in `replay::run_partition` — that symmetry is the
/// equivalence proof's other half. Each processed envelope is completed with
/// its [`Verdict`] before the driver observes the request.
fn worker<D: AdmissionDriver, E: Envelope>(
    shard: usize,
    rx: crate::queue::Consumer<E>,
    cell: Arc<ShardCell>,
    cache: CacheConfig,
    mut driver: D,
    batch: usize,
) -> WorkerResult<D> {
    darwin_parallel::inline_sweeps(|| {
        let mut server = CacheServer::new(cache);
        server.set_policy(driver.initial_policy());
        let mut processed = 0u64;
        let mut buf: Vec<E> = Vec::with_capacity(batch);
        while rx.pop_batch(&mut buf, batch) {
            for env in buf.drain(..) {
                let req = *env.request();
                let writes_before = server.metrics().hoc_writes;
                let outcome = server.process(&req);
                processed += 1;
                let metrics = server.metrics();
                env.complete(Verdict { shard, outcome, admitted: metrics.hoc_writes > writes_before });
                if let Some(policy) = driver.observe(&req, &metrics) {
                    server.set_policy(policy);
                }
            }
            cell.publish(server.metrics(), processed, server.policy_label());
        }
        cell.publish(server.metrics(), processed, server.policy_label());
        WorkerResult {
            cache: server.metrics(),
            processed,
            hoc_used_bytes: server.hoc_used_bytes(),
            dc_used_bytes: server.dc_used_bytes(),
            driver,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HashRouter, ModuloRouter};
    use darwin_cache::ThresholdPolicy;
    use darwin_testbed::StaticDriver;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn trace(n: usize, seed: u64) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
    }

    fn static_fleet(cfg: FleetConfig) -> ShardedFleet<StaticDriver> {
        ShardedFleet::new(cfg, CacheConfig::small_test(), Box::new(HashRouter), |_| {
            StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024))
        })
    }

    #[test]
    fn fleet_processes_every_request_under_block() {
        let t = trace(20_000, 3);
        let mut fleet = static_fleet(FleetConfig {
            shards: 4,
            queue_capacity: 64,
            batch: 16,
            backpressure: Backpressure::Block,
            snapshot_every: Some(5_000),
        });
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(report.total_processed(), 20_000);
        assert_eq!(report.total_dropped(), 0);
        assert_eq!(report.fleet_cache().requests, 20_000);
        // Periodic snapshots at 5k/10k/15k/20k plus the final one.
        assert_eq!(report.snapshots.len(), 5);
        let last = report.snapshots.last().unwrap();
        assert_eq!(last.total_processed(), 20_000);
        assert_eq!(last.fleet_cache(), report.fleet_cache());
        for s in &report.shards {
            assert!(s.queue_high_water <= 64, "capacity bound violated");
            assert!(!s.driver.label().is_empty());
        }
    }

    #[test]
    fn drop_newest_accounts_for_every_request() {
        // A tiny queue with a huge batch guarantees overflow: whatever is
        // not processed must be counted as dropped.
        let t = trace(30_000, 9);
        let mut fleet = static_fleet(FleetConfig {
            shards: 2,
            queue_capacity: 8,
            batch: 512,
            backpressure: Backpressure::DropNewest,
            snapshot_every: None,
        });
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(
            report.total_processed() + report.total_dropped(),
            30_000,
            "processed + dropped must cover every submission"
        );
        assert_eq!(report.fleet_cache().requests, report.total_processed());
    }

    /// Envelope that records its verdict into a shared log.
    struct VerdictProbe {
        req: Request,
        out: Arc<std::sync::Mutex<Vec<Verdict>>>,
    }

    impl Envelope for VerdictProbe {
        fn request(&self) -> &Request {
            &self.req
        }
        fn complete(self, verdict: Verdict) {
            self.out.lock().unwrap().push(verdict);
        }
    }

    #[test]
    fn envelopes_receive_verdicts_matching_metrics() {
        let t = trace(10_000, 11);
        let verdicts: Arc<std::sync::Mutex<Vec<Verdict>>> = Arc::default();
        let mut fleet: ShardedFleet<StaticDriver, VerdictProbe> = ShardedFleet::new(
            FleetConfig::with_shards(2),
            CacheConfig::small_test(),
            Box::new(HashRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
        );
        for req in t.iter() {
            fleet.submit(VerdictProbe { req: *req, out: Arc::clone(&verdicts) });
        }
        let report = fleet.finish();
        let v = verdicts.lock().unwrap();
        assert_eq!(v.len(), 10_000, "every envelope completed exactly once");
        let cache = report.fleet_cache();
        use darwin_cache::RequestOutcome::*;
        assert_eq!(v.iter().filter(|x| x.outcome == HocHit).count() as u64, cache.hoc_hits);
        assert_eq!(v.iter().filter(|x| x.outcome == DcHit).count() as u64, cache.dc_hits);
        assert_eq!(v.iter().filter(|x| x.outcome == OriginFetch).count() as u64, cache.origin_fetches);
        assert_eq!(v.iter().filter(|x| x.admitted).count() as u64, cache.hoc_writes);
        assert!(v.iter().all(|x| x.shard < 2));
    }

    #[test]
    fn shards_partition_the_object_space() {
        let t = trace(10_000, 5);
        let mut fleet = ShardedFleet::new(
            FleetConfig::with_shards(4),
            CacheConfig::small_test(),
            Box::new(ModuloRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
        );
        fleet.submit_trace(&t);
        let report = fleet.finish();
        // Every shard saw work (modulo over dense generator IDs), and the
        // shard request counts sum to the trace.
        assert_eq!(report.shards.iter().map(|s| s.cache.requests).sum::<u64>(), 10_000);
        assert!(report.shards.iter().all(|s| s.cache.requests > 0));
        assert_eq!(report.router, "modulo");
    }
}
