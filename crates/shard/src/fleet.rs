//! The sharded fleet: N cache servers on N worker threads.
//!
//! [`ShardedFleet`] hash-partitions the object space across `shards`
//! independent [`CacheServer`]s, each owned by a dedicated worker thread and
//! each driven by its *own* [`AdmissionDriver`] — with [`DarwinDriver`]
//! drivers this is one Darwin controller per shard, learning that shard's
//! sub-workload (the paper's per-server deployment model, §5).
//!
//! # Determinism contract
//!
//! The router is a pure function of `(id, shards)`, so shard `s` sees
//! exactly the subsequence of the submitted stream whose IDs route to `s`,
//! *in submission order* — the SPSC queue preserves order and nothing else
//! touches the shard's state. Thread scheduling can change timing but never
//! ordering, so under [`Backpressure::Block`] a fleet replay is bitwise
//! identical (metrics, deployed-expert sequence, final cache occupancy) to
//! running each shard's filtered trace sequentially. `replay.rs` exposes
//! both sides of this equation and `tests/equivalence.rs` enforces it.
//!
//! Worker threads wrap their serving loop in
//! [`darwin_parallel::inline_sweeps`], so a per-shard Darwin controller that
//! sweeps experts at an epoch boundary runs those sweeps inline instead of
//! stacking `DARWIN_THREADS`-wide pools `shards` times over.
//!
//! [`DarwinDriver`]: darwin_testbed::DarwinDriver

use crate::metrics::{FleetMetrics, ShardCell};
use crate::queue::{channel, Producer};
use crate::router::Router;
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer};
use darwin_testbed::AdmissionDriver;
use darwin_trace::{Request, Trace};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What happens when a shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backpressure {
    /// Submission blocks until the shard drains (lossless — required for the
    /// determinism/replay contract).
    Block,
    /// The overflow is dropped and counted (load shedding, as a production
    /// front-end under overload would do).
    DropNewest,
}

/// Fleet parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of shards (= worker threads = cache servers = controllers).
    pub shards: usize,
    /// Per-shard queue capacity, in requests.
    pub queue_capacity: usize,
    /// Submission/drain batch size (amortizes queue locking).
    pub batch: usize,
    /// Full-queue behaviour.
    pub backpressure: Backpressure,
    /// Record a [`FleetMetrics`] snapshot every this many submitted requests
    /// (`None` disables periodic snapshots; a final one is always taken).
    pub snapshot_every: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 4096,
            batch: 256,
            backpressure: Backpressure::Block,
            snapshot_every: None,
        }
    }
}

impl FleetConfig {
    /// A fleet of `shards` shards with the remaining defaults.
    pub fn with_shards(shards: usize) -> Self {
        Self { shards, ..Self::default() }
    }
}

/// Everything one shard produced, returned by [`ShardedFleet::finish`]. The
/// driver comes back too, so callers can pull switch histories out of
/// per-shard Darwin controllers.
#[derive(Debug)]
pub struct ShardOutcome<D> {
    /// Shard index.
    pub shard: usize,
    /// Final cumulative cache metrics.
    pub cache: CacheMetrics,
    /// Requests the worker processed.
    pub processed: u64,
    /// Requests dropped at the queue (always 0 under [`Backpressure::Block`]).
    pub dropped: u64,
    /// Queue high-water mark over the run.
    pub queue_high_water: usize,
    /// Final HOC occupancy, bytes.
    pub hoc_used_bytes: u64,
    /// Final DC occupancy, bytes.
    pub dc_used_bytes: u64,
    /// The shard's admission driver, returned for post-mortem inspection.
    pub driver: D,
}

/// Result of a completed fleet run.
#[derive(Debug)]
pub struct FleetReport<D> {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardOutcome<D>>,
    /// Periodic snapshots ([`FleetConfig::snapshot_every`]) plus a final one.
    pub snapshots: Vec<FleetMetrics>,
    /// Label of the router that partitioned the stream.
    pub router: String,
}

impl<D> FleetReport<D> {
    /// Fleet-wide cache metrics (counter-wise sum over shards).
    pub fn fleet_cache(&self) -> CacheMetrics {
        CacheMetrics::merge_all(self.shards.iter().map(|s| &s.cache))
    }

    /// Requests processed across the fleet.
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Requests dropped across the fleet.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }
}

struct WorkerResult<D> {
    cache: CacheMetrics,
    processed: u64,
    hoc_used_bytes: u64,
    dc_used_bytes: u64,
    driver: D,
}

/// A running fleet. Submit requests, then [`finish`](Self::finish) to join
/// the workers and collect the report.
pub struct ShardedFleet<D: AdmissionDriver + Send + 'static> {
    cfg: FleetConfig,
    router: Box<dyn Router>,
    producers: Vec<Producer<Request>>,
    cells: Vec<Arc<ShardCell>>,
    handles: Vec<JoinHandle<WorkerResult<D>>>,
    staged: Vec<Vec<Request>>,
    submitted: u64,
    snapshots: Vec<FleetMetrics>,
}

impl<D: AdmissionDriver + Send + 'static> ShardedFleet<D> {
    /// Spawns the fleet: one worker thread, cache server, queue and driver
    /// per shard. `factory(s)` builds shard `s`'s driver.
    pub fn new(
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        mut factory: impl FnMut(usize) -> D,
    ) -> Self {
        assert!(cfg.shards > 0, "fleet needs at least one shard");
        assert!(cfg.batch > 0, "batch size must be positive");
        let mut producers = Vec::with_capacity(cfg.shards);
        let mut cells = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let (tx, rx) = channel::<Request>(cfg.queue_capacity);
            let cell = Arc::new(ShardCell::new(s, tx.gauges()));
            let worker_cell = Arc::clone(&cell);
            let worker_cache = cache.clone();
            let driver = factory(s);
            let batch = cfg.batch;
            let handle = std::thread::Builder::new()
                .name(format!("shard-{s}"))
                .spawn(move || worker(rx, worker_cell, worker_cache, driver, batch))
                .expect("spawn shard worker");
            producers.push(tx);
            cells.push(cell);
            handles.push(handle);
        }
        Self {
            staged: vec![Vec::with_capacity(cfg.batch); cfg.shards],
            cfg,
            router,
            producers,
            cells,
            handles,
            submitted: 0,
            snapshots: Vec::new(),
        }
    }

    /// Routes one request to its shard. Under [`Backpressure::Block`] this
    /// may block when the shard's queue is full.
    pub fn submit(&mut self, req: Request) {
        let s = self.router.route(req.id, self.cfg.shards);
        self.staged[s].push(req);
        if self.staged[s].len() >= self.cfg.batch {
            self.flush_shard(s);
        }
        self.submitted += 1;
        if let Some(every) = self.cfg.snapshot_every {
            if self.submitted.is_multiple_of(every) {
                let snap = self.metrics();
                self.snapshots.push(snap);
            }
        }
    }

    /// Submits every request of `trace` in order.
    pub fn submit_trace(&mut self, trace: &Trace) {
        for req in trace.iter() {
            self.submit(*req);
        }
    }

    /// Pushes all staged batches to their shards.
    pub fn flush(&mut self) {
        for s in 0..self.cfg.shards {
            self.flush_shard(s);
        }
    }

    fn flush_shard(&mut self, s: usize) {
        if self.staged[s].is_empty() {
            return;
        }
        match self.cfg.backpressure {
            Backpressure::Block => {
                let undelivered = self.producers[s].push_all(&mut self.staged[s]);
                assert_eq!(undelivered, 0, "shard {s} worker died mid-run");
            }
            Backpressure::DropNewest => {
                let dropped = self.producers[s].try_push_all(&mut self.staged[s]);
                self.cells[s].add_dropped(dropped as u64);
            }
        }
    }

    /// Requests submitted so far (including any later dropped).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Live fleet-wide metrics, assembled from the shard cells. Mid-run this
    /// is a *recent* view (workers publish once per drained batch); after
    /// [`finish`](Self::finish) the final snapshot is exact.
    pub fn metrics(&self) -> FleetMetrics {
        FleetMetrics { shards: self.cells.iter().map(|c| c.snapshot()).collect() }
    }

    /// Snapshots recorded so far.
    pub fn snapshots(&self) -> &[FleetMetrics] {
        &self.snapshots
    }

    /// Flushes staged work, closes the queues, joins every worker and
    /// returns the final report (with the drivers inside).
    pub fn finish(mut self) -> FleetReport<D> {
        self.flush();
        drop(self.producers); // end-of-stream for every shard
        let mut shards = Vec::with_capacity(self.handles.len());
        for (s, handle) in self.handles.into_iter().enumerate() {
            let r = handle.join().expect("shard worker panicked");
            let snap = self.cells[s].snapshot();
            shards.push(ShardOutcome {
                shard: s,
                cache: r.cache,
                processed: r.processed,
                dropped: snap.dropped,
                queue_high_water: snap.queue_high_water,
                hoc_used_bytes: r.hoc_used_bytes,
                dc_used_bytes: r.dc_used_bytes,
                driver: r.driver,
            });
        }
        let mut snapshots = self.snapshots;
        snapshots.push(FleetMetrics { shards: self.cells.iter().map(|c| c.snapshot()).collect() });
        FleetReport { shards, snapshots, router: self.router.label() }
    }
}

/// The per-shard serving loop. Identical, request for request, to the
/// sequential loop in `replay::run_partition` — that symmetry is the
/// equivalence proof's other half.
fn worker<D: AdmissionDriver>(
    rx: crate::queue::Consumer<Request>,
    cell: Arc<ShardCell>,
    cache: CacheConfig,
    mut driver: D,
    batch: usize,
) -> WorkerResult<D> {
    darwin_parallel::inline_sweeps(|| {
        let mut server = CacheServer::new(cache);
        server.set_policy(driver.initial_policy());
        let mut processed = 0u64;
        let mut buf: Vec<Request> = Vec::with_capacity(batch);
        while rx.pop_batch(&mut buf, batch) {
            for req in buf.drain(..) {
                server.process(&req);
                processed += 1;
                if let Some(policy) = driver.observe(&req, &server.metrics()) {
                    server.set_policy(policy);
                }
            }
            cell.publish(server.metrics(), processed, server.policy_label());
        }
        cell.publish(server.metrics(), processed, server.policy_label());
        WorkerResult {
            cache: server.metrics(),
            processed,
            hoc_used_bytes: server.hoc_used_bytes(),
            dc_used_bytes: server.dc_used_bytes(),
            driver,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HashRouter, ModuloRouter};
    use darwin_cache::ThresholdPolicy;
    use darwin_testbed::StaticDriver;
    use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};

    fn trace(n: usize, seed: u64) -> Trace {
        TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
    }

    fn static_fleet(cfg: FleetConfig) -> ShardedFleet<StaticDriver> {
        ShardedFleet::new(cfg, CacheConfig::small_test(), Box::new(HashRouter), |_| {
            StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024))
        })
    }

    #[test]
    fn fleet_processes_every_request_under_block() {
        let t = trace(20_000, 3);
        let mut fleet = static_fleet(FleetConfig {
            shards: 4,
            queue_capacity: 64,
            batch: 16,
            backpressure: Backpressure::Block,
            snapshot_every: Some(5_000),
        });
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(report.total_processed(), 20_000);
        assert_eq!(report.total_dropped(), 0);
        assert_eq!(report.fleet_cache().requests, 20_000);
        // Periodic snapshots at 5k/10k/15k/20k plus the final one.
        assert_eq!(report.snapshots.len(), 5);
        let last = report.snapshots.last().unwrap();
        assert_eq!(last.total_processed(), 20_000);
        assert_eq!(last.fleet_cache(), report.fleet_cache());
        for s in &report.shards {
            assert!(s.queue_high_water <= 64, "capacity bound violated");
            assert!(!s.driver.label().is_empty());
        }
    }

    #[test]
    fn drop_newest_accounts_for_every_request() {
        // A tiny queue with a huge batch guarantees overflow: whatever is
        // not processed must be counted as dropped.
        let t = trace(30_000, 9);
        let mut fleet = static_fleet(FleetConfig {
            shards: 2,
            queue_capacity: 8,
            batch: 512,
            backpressure: Backpressure::DropNewest,
            snapshot_every: None,
        });
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(
            report.total_processed() + report.total_dropped(),
            30_000,
            "processed + dropped must cover every submission"
        );
        assert_eq!(report.fleet_cache().requests, report.total_processed());
    }

    #[test]
    fn shards_partition_the_object_space() {
        let t = trace(10_000, 5);
        let mut fleet = ShardedFleet::new(
            FleetConfig::with_shards(4),
            CacheConfig::small_test(),
            Box::new(ModuloRouter),
            |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
        );
        fleet.submit_trace(&t);
        let report = fleet.finish();
        // Every shard saw work (modulo over dense generator IDs), and the
        // shard request counts sum to the trace.
        assert_eq!(report.shards.iter().map(|s| s.cache.requests).sum::<u64>(), 10_000);
        assert!(report.shards.iter().all(|s| s.cache.requests > 0));
        assert_eq!(report.router, "modulo");
    }
}
