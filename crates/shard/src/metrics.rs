//! Fleet-wide metrics aggregation.
//!
//! Each shard worker publishes its cumulative [`CacheMetrics`] (plus
//! processed/backpressure counters) into a [`ShardCell`]; the fleet
//! assembles point-in-time [`FleetMetrics`] snapshots from the cells on
//! demand and, when configured, on a fixed submission cadence. Because every
//! counter is a plain sum, per-shard metrics merge into exact fleet-wide
//! OHR / BMR / disk-write figures via [`CacheMetrics::merge_all`].
//!
//! Cells survive their worker: when a supervisor cold-restarts a shard, the
//! dying incarnation's counters are *folded* into per-cell bases
//! ([`ShardCell::fold_incarnation`]) and the fresh worker counts on top, so
//! `processed` / `cache` in a snapshot are always totals over the shard's
//! whole life. Restart and permanent-death state ride along (`restarts`,
//! `dead`, `unavailable`), which is how `finish()` reports fault history
//! instead of panicking.

use crate::queue::QueueGauges;
use darwin_cache::CacheMetrics;
use darwin_obs::{Event, EventKind, JournalSnapshot, LatencySnapshot, ShardObs};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Lifecycle phase of a shard during an elastic rebalance. Phases only ever
/// advance (Serving → Draining → Transferring → Retired); the rebalancer's
/// handoff tracker enforces that ordering and mirrors the phase into the
/// shard's [`ShardCell`] so snapshots and dashboards can show drain state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardPhase {
    /// Normal operation: the shard accepts and serves requests.
    Serving,
    /// A resize began: the shard's queue is draining toward a final
    /// handoff checkpoint; no new requests are routed to it.
    Draining,
    /// The drain boundary checkpoint was cut and is being shipped to the
    /// shard's successor; the old state still answers metrics reads.
    Transferring,
    /// The successor took over (cutover); this incarnation is history.
    Retired,
}

impl ShardPhase {
    /// Compact code stored in the cell's atomic (0..=3).
    pub fn code(self) -> u8 {
        match self {
            ShardPhase::Serving => 0,
            ShardPhase::Draining => 1,
            ShardPhase::Transferring => 2,
            ShardPhase::Retired => 3,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for out-of-range codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ShardPhase::Serving),
            1 => Some(ShardPhase::Draining),
            2 => Some(ShardPhase::Transferring),
            3 => Some(ShardPhase::Retired),
            _ => None,
        }
    }

    /// Stable snapshot/dashboard label.
    pub fn label(self) -> &'static str {
        match self {
            ShardPhase::Serving => "serving",
            ShardPhase::Draining => "draining",
            ShardPhase::Transferring => "transferring",
            ShardPhase::Retired => "retired",
        }
    }

    /// True when `to` is the next phase in the one-way handoff order.
    pub fn can_advance_to(self, to: ShardPhase) -> bool {
        to.code() == self.code() + 1
    }
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Requests fully processed by the shard's workers, summed over every
    /// incarnation.
    pub processed: u64,
    /// Requests dropped: shed at the shard's queue under `DropNewest`
    /// backpressure, or in flight when a worker died.
    pub dropped: u64,
    /// Requests answered `Unavailable` because the shard was permanently
    /// dead when they arrived.
    #[serde(default)]
    pub unavailable: u64,
    /// Requests answered `Busy` because the shard's queue depth was over
    /// its shed watermark when they arrived (overload control).
    #[serde(default)]
    pub shed: u64,
    /// True while the shard is actively shedding: its queue crossed the
    /// watermark and has not yet drained below the recovery threshold.
    #[serde(default)]
    pub shedding: bool,
    /// Restarts the shard's supervisor granted (warm and cold together).
    #[serde(default)]
    pub restarts: u32,
    /// Restarts that resumed from a valid checkpoint (warm). Always
    /// `<= restarts`; the difference is the cold-restart count.
    #[serde(default)]
    pub warm_restarts: u32,
    /// Warm *boots*: incarnations that restored state shipped across a
    /// process or generation boundary (a `--checkpoint-dir` spill file or a
    /// resize handoff) rather than surviving an in-process crash. Disjoint
    /// from `warm_restarts`, which still partitions `restarts` with the
    /// cold count.
    #[serde(default)]
    pub warm_boots: u32,
    /// Router generation this shard serves under (0 before any resize; each
    /// elastic resize spawns the next generation).
    #[serde(default)]
    pub router_generation: u32,
    /// True once the shard is permanently dead (restart budget exhausted or
    /// a terminal end-of-stream panic).
    #[serde(default)]
    pub dead: bool,
    /// Handoff phase label (`serving` / `draining` / `transferring` /
    /// `retired`); empty in snapshots written before the elastic-fleet
    /// subsystem (read as `serving`).
    #[serde(default)]
    pub phase: String,
    /// Per-shard sequence number of the latest stored checkpoint, if any.
    #[serde(default)]
    pub checkpoint_seq: Option<u64>,
    /// Requests processed since the latest checkpoint (0 when no checkpoint
    /// exists yet) — the work a crash right now would replay-lose warm.
    #[serde(default)]
    pub checkpoint_age: u64,
    /// Failover promotions: past-budget worker deaths answered by
    /// installing the hot standby's frame instead of burying the shard.
    #[serde(default)]
    pub failovers: u32,
    /// Sequence boundary of the frame the shard's hot standby has applied
    /// (`None` without replication or before the first seed).
    #[serde(default)]
    pub replica_seq: Option<u64>,
    /// Cumulative payload bytes shipped to the hot standby (full seeds plus
    /// deltas) — the O(churn) replication-cost ledger.
    #[serde(default)]
    pub replica_shipped_bytes: u64,
    /// Standby losses detected (poisoned or failed-validation standbys);
    /// each is journaled and followed by a background re-seed.
    #[serde(default)]
    pub standby_lost: u32,
    /// Requests currently waiting in the shard's queue.
    pub queue_depth: usize,
    /// Maximum queue depth ever observed, across incarnations (backpressure
    /// high-water mark).
    pub queue_high_water: usize,
    /// The shard's cumulative cache metrics, summed over incarnations (each
    /// restart begins from a cold cache but keeps counting).
    pub cache: CacheMetrics,
    /// Label of the shard's currently deployed admission policy (the last
    /// published label, for a dead shard).
    pub policy: String,
    /// Wall-clock latency histograms (serve / queue-wait / checkpoint-pause).
    /// `None` in snapshots written before the observability subsystem.
    #[serde(default)]
    pub latency: Option<LatencySnapshot>,
    /// Events evicted from the shard's bounded journal ring so far.
    #[serde(default)]
    pub events_dropped: u64,
    /// The shard's retained event journal, oldest first.
    #[serde(default)]
    pub events: Vec<Event>,
}

impl ShardSnapshot {
    /// Restarts that fell back to a cold start (no valid checkpoint).
    pub fn cold_restarts(&self) -> u32 {
        self.restarts.saturating_sub(self.warm_restarts)
    }

    /// Folds another snapshot carrying the *same shard index* into this one,
    /// counter-wise: additive counters (processed, dropped, unavailable,
    /// restarts, cache, queue depth) sum, so fleet-wide `total_*` accessors
    /// over the merged view equal the sums over the inputs; `dead` ORs;
    /// checkpoint and high-water gauges take the pointwise max; the first
    /// operand keeps its policy label unless it is empty.
    ///
    /// # Panics
    ///
    /// If the two snapshots carry different shard indices.
    pub fn absorb(&mut self, other: &ShardSnapshot) {
        assert_eq!(self.shard, other.shard, "cannot absorb a different shard's snapshot");
        self.processed += other.processed;
        self.dropped += other.dropped;
        self.unavailable += other.unavailable;
        self.shed += other.shed;
        self.shedding |= other.shedding;
        self.restarts += other.restarts;
        self.warm_restarts += other.warm_restarts;
        self.warm_boots += other.warm_boots;
        // The phase follows the newest generation (a retired generation's
        // archive must not mask the live incarnation's state).
        if other.router_generation >= self.router_generation && !other.phase.is_empty() {
            self.phase = other.phase.clone();
        }
        self.router_generation = self.router_generation.max(other.router_generation);
        self.dead |= other.dead;
        self.checkpoint_seq = self.checkpoint_seq.max(other.checkpoint_seq);
        self.checkpoint_age = self.checkpoint_age.max(other.checkpoint_age);
        self.failovers += other.failovers;
        self.replica_seq = self.replica_seq.max(other.replica_seq);
        self.replica_shipped_bytes += other.replica_shipped_bytes;
        self.standby_lost += other.standby_lost;
        self.queue_depth += other.queue_depth;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.cache = CacheMetrics::merge_all([&self.cache, &other.cache]);
        if self.policy.is_empty() {
            self.policy = other.policy.clone();
        }
        self.latency = match (self.latency.take(), &other.latency) {
            (Some(mut a), Some(b)) => {
                a.merge(b);
                Some(a)
            }
            (a, b) => a.or_else(|| b.clone()),
        };
        self.events_dropped += other.events_dropped;
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.seq);
    }
}

/// Counters of a network front-end serving a fleet, folded into
/// [`FleetMetrics`] snapshots taken through a gateway (`None` for in-process
/// fleets). All counters are cumulative since the gateway started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewaySnapshot {
    /// Connections accepted so far.
    pub connections_accepted: u64,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Connections closed by the gateway's idle cutoff.
    #[serde(default)]
    pub idle_closed: u64,
    /// Well-formed frames decoded across all connections.
    pub frames_in: u64,
    /// Frames rejected (malformed, oversized, or a client-illegal opcode).
    pub frames_rejected: u64,
    /// Requests extracted from `GET` frames and submitted to the fleet.
    pub requests_in: u64,
    /// Verdicts written back to clients.
    pub verdicts_out: u64,
    /// `STATS` frames served.
    pub stats_served: u64,
    /// `EVENTS` frames served.
    #[serde(default)]
    pub events_served: u64,
    /// `RESIZE` frames served (acknowledged, whether the resize was
    /// performed or refused with an error ack).
    #[serde(default)]
    pub resizes_served: u64,
    /// Requests answered `Busy` by the gateway itself — over the
    /// per-connection rate limit or the reply-backlog bound — without ever
    /// reaching the fleet. Disjoint from the per-shard `shed` counters.
    #[serde(default)]
    pub shed: u64,
    /// Connections that ever exceeded their fair-share token bucket.
    #[serde(default)]
    pub throttled: u64,
    /// Connections evicted because the client stopped reading replies
    /// (write-stall budget expired).
    #[serde(default)]
    pub slow_closed: u64,
    /// Scripted network faults injected so far.
    #[serde(default)]
    pub net_faults: u64,
    /// Bytes read off client sockets.
    pub bytes_in: u64,
    /// Bytes written to client sockets.
    pub bytes_out: u64,
}

/// Per-generation roll-up of one fleet incarnation's ledger, recorded by
/// the rebalancer when the generation retires (and for the live one on
/// demand). Lets STATS consumers audit restart/warm counters across a
/// shard-count change instead of assuming a fixed `shards` vector length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationSummary {
    /// Router generation (0 is the boot generation).
    pub generation: u32,
    /// Shard count this generation served with.
    pub shards: u32,
    /// Requests processed by this generation.
    pub processed: u64,
    /// Requests dropped by this generation.
    pub dropped: u64,
    /// Requests answered `Unavailable` by this generation.
    pub unavailable: u64,
    /// Restarts granted within this generation.
    pub restarts: u32,
    /// Warm restarts within this generation.
    pub warm_restarts: u32,
    /// Warm boots (handoff or spill restores) within this generation.
    pub warm_boots: u32,
}

/// Point-in-time view of the whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Per-generation ledgers, oldest first, populated by the elastic
    /// rebalancer (empty for fixed fleets and pre-elastic artifacts).
    #[serde(default)]
    pub generations: Vec<GenerationSummary>,
    /// Network front-end counters, when the snapshot was taken through a
    /// gateway.
    pub gateway: Option<GatewaySnapshot>,
}

impl FleetMetrics {
    /// A snapshot of `shards` with no gateway in front.
    pub fn from_shards(shards: Vec<ShardSnapshot>) -> Self {
        Self { shards, generations: Vec::new(), gateway: None }
    }

    /// Folds a gateway's counters into the snapshot.
    pub fn with_gateway(mut self, gateway: GatewaySnapshot) -> Self {
        self.gateway = Some(gateway);
        self
    }

    /// Serializes the snapshot as pretty JSON — the one code path behind the
    /// gateway's `STATS` reply and the `inspect` binary's fleet mode.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet metrics serialization cannot fail")
    }

    /// Parses a snapshot produced by [`FleetMetrics::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Merges another snapshot into this one, aggregating STATS replies from
    /// multiple shard groups (e.g. two gateway processes each owning half the
    /// keyspace) into a single cluster-wide view: snapshots of distinct shard
    /// indices concatenate (re-sorted by index); snapshots *sharing* a shard
    /// index are folded counter-wise via [`ShardSnapshot::absorb`] — never
    /// concatenated, which would double-count every `total_*` accessor and
    /// report phantom shard entries. Gateway counters sum when both sides
    /// carry them. Every `total_*` accessor of the merged snapshot equals
    /// the sum of the inputs', so the conservation law survives merging.
    pub fn merge(mut self, other: FleetMetrics) -> FleetMetrics {
        for snap in other.shards {
            match self.shards.iter_mut().find(|s| s.shard == snap.shard) {
                Some(existing) => existing.absorb(&snap),
                None => self.shards.push(snap),
            }
        }
        self.shards.sort_by_key(|s| s.shard);
        self.generations.extend(other.generations);
        self.generations.sort_by_key(|g| g.generation);
        self.generations.dedup_by_key(|g| g.generation);
        self.gateway = match (self.gateway, other.gateway) {
            (Some(a), Some(b)) => Some(GatewaySnapshot {
                connections_accepted: a.connections_accepted + b.connections_accepted,
                connections_active: a.connections_active + b.connections_active,
                idle_closed: a.idle_closed + b.idle_closed,
                frames_in: a.frames_in + b.frames_in,
                frames_rejected: a.frames_rejected + b.frames_rejected,
                requests_in: a.requests_in + b.requests_in,
                verdicts_out: a.verdicts_out + b.verdicts_out,
                stats_served: a.stats_served + b.stats_served,
                events_served: a.events_served + b.events_served,
                resizes_served: a.resizes_served + b.resizes_served,
                shed: a.shed + b.shed,
                throttled: a.throttled + b.throttled,
                slow_closed: a.slow_closed + b.slow_closed,
                net_faults: a.net_faults + b.net_faults,
                bytes_in: a.bytes_in + b.bytes_in,
                bytes_out: a.bytes_out + b.bytes_out,
            }),
            (a, b) => a.or(b),
        };
        self
    }

    /// Fleet-wide cache metrics: the counter-wise sum over shards. OHR/BMR
    /// and disk-write rates of the returned value are exact fleet-wide
    /// figures.
    pub fn fleet_cache(&self) -> CacheMetrics {
        CacheMetrics::merge_all(self.shards.iter().map(|s| &s.cache))
    }

    /// Requests processed across the fleet.
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Requests dropped across the fleet (backpressure load shedding plus
    /// in-flight losses at worker deaths).
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Requests answered `Unavailable` across the fleet (degraded mode).
    pub fn total_unavailable(&self) -> u64 {
        self.shards.iter().map(|s| s.unavailable).sum()
    }

    /// Requests shed `Busy` at shard watermarks across the fleet. Gateway-
    /// level sheds (rate limit, reply backlog) are counted separately in
    /// [`GatewaySnapshot::shed`] — they never reached the fleet.
    pub fn total_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Shards currently over their shed watermark.
    pub fn shedding_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.shedding).count()
    }

    /// Restarts granted across the fleet (warm and cold together).
    pub fn total_restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Restarts that resumed warm from a checkpoint, across the fleet.
    pub fn total_warm_restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.warm_restarts).sum()
    }

    /// Restarts that fell back cold, across the fleet. Together with
    /// [`FleetMetrics::total_warm_restarts`] this always sums to
    /// [`FleetMetrics::total_restarts`].
    pub fn total_cold_restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.cold_restarts()).sum()
    }

    /// Warm boots across the fleet: restores shipped across a process or
    /// generation boundary (spill-file boots plus resize handoffs).
    pub fn total_warm_boots(&self) -> u32 {
        self.shards.iter().map(|s| s.warm_boots).sum()
    }

    /// Highest router generation any shard reports (the currently serving
    /// generation after merging a retired archive with the live fleet).
    pub fn router_generation(&self) -> u32 {
        let live = self.shards.iter().map(|s| s.router_generation).max().unwrap_or(0);
        let archived = self.generations.iter().map(|g| g.generation).max().unwrap_or(0);
        live.max(archived)
    }

    /// Largest checkpoint age across shards: the most work any one shard
    /// would lose to a crash right now, even restoring warm.
    pub fn max_checkpoint_age(&self) -> u64 {
        self.shards.iter().map(|s| s.checkpoint_age).max().unwrap_or(0)
    }

    /// Failover promotions across the fleet: past-budget deaths answered by
    /// a hot standby instead of burial.
    pub fn total_failovers(&self) -> u32 {
        self.shards.iter().map(|s| s.failovers).sum()
    }

    /// Standby losses detected across the fleet.
    pub fn total_standby_lost(&self) -> u32 {
        self.shards.iter().map(|s| s.standby_lost).sum()
    }

    /// Cumulative replication payload bytes shipped across the fleet.
    pub fn total_replica_shipped_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.replica_shipped_bytes).sum()
    }

    /// Shards currently marked permanently dead.
    pub fn dead_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.dead).count()
    }

    /// Deepest queue across shards right now.
    pub fn max_queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).max().unwrap_or(0)
    }

    /// Highest queue high-water mark across shards.
    pub fn max_queue_high_water(&self) -> usize {
        self.shards.iter().map(|s| s.queue_high_water).max().unwrap_or(0)
    }
}

/// A cloneable, non-blocking view of a fleet's metrics.
///
/// Snapshots read only the per-shard [`ShardCell`] mailboxes — never the
/// submission path or the shard queues — so a handle can be polled from any
/// thread while submitters are blocked on backpressure, and it remains valid
/// after the fleet has been [`finish`](crate::ShardedFleet::finish)ed
/// (reporting each shard's final published state).
#[derive(Debug, Clone)]
pub struct MetricsHandle {
    cells: Vec<Arc<ShardCell>>,
}

impl MetricsHandle {
    /// Handle over the given shard cells (one per shard, in shard order).
    pub fn new(cells: Vec<Arc<ShardCell>>) -> Self {
        Self { cells }
    }

    /// Number of shards the handle observes.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The underlying shard cells, in shard order. The elastic rebalancer
    /// uses these to journal fleet-level events (drain, cutover, resize)
    /// and to mirror handoff phases into snapshots.
    pub fn cells(&self) -> &[Arc<ShardCell>] {
        &self.cells
    }

    /// Point-in-time fleet snapshot.
    pub fn snapshot(&self) -> FleetMetrics {
        FleetMetrics::from_shards(self.cells.iter().map(|c| c.snapshot()).collect())
    }

    /// Per-shard event-journal snapshots, in shard order — the body of the
    /// gateway's `EVENTS` reply.
    pub fn journals(&self) -> Vec<(u32, JournalSnapshot)> {
        self.cells.iter().map(|c| (c.shard_index() as u32, c.obs().journal.snapshot())).collect()
    }
}

/// Cache metrics and policy label of the current worker incarnation, plus
/// the folded totals of every incarnation that died before it.
#[derive(Debug, Default)]
struct CellState {
    cache: CacheMetrics,
    cache_base: CacheMetrics,
    policy: String,
}

/// The mailbox one shard worker publishes into and the fleet reads from.
///
/// The cell outlives any single worker incarnation: at a cold restart the
/// fleet calls [`fold_incarnation`](Self::fold_incarnation) to move the dead
/// incarnation's counters into bases and [`set_gauges`](Self::set_gauges) to
/// point at the replacement queue, so readers always see whole-shard totals.
#[derive(Debug)]
pub struct ShardCell {
    shard: usize,
    state: Mutex<CellState>,
    /// Requests processed by the *current* incarnation, stored per request
    /// so the count is exact at any crash point.
    processed: AtomicU64,
    /// Requests processed by previous (crashed) incarnations.
    processed_base: AtomicU64,
    dropped: AtomicU64,
    unavailable: AtomicU64,
    shed: AtomicU64,
    /// True while producers are shedding this shard's traffic (queue over
    /// the watermark; cleared once it drains below half of it).
    shedding: AtomicBool,
    restarts: AtomicU32,
    warm_restarts: AtomicU32,
    warm_boots: AtomicU32,
    /// Router generation the shard serves under (set once at fleet build).
    generation: AtomicU32,
    /// Handoff phase code ([`ShardPhase::code`]).
    phase: AtomicU8,
    /// Sequence number of the latest stored checkpoint; `u64::MAX` is the
    /// "none yet" sentinel (a real sequence of `u64::MAX` is unreachable).
    ckpt_seq: AtomicU64,
    /// Failover promotions granted (past-budget deaths a standby answered).
    failovers: AtomicU32,
    /// Sequence boundary the hot standby has applied; `u64::MAX` is the
    /// "none" sentinel, mirroring `ckpt_seq`.
    replica_seq: AtomicU64,
    /// Cumulative replication payload bytes shipped to the standby.
    replica_shipped_bytes: AtomicU64,
    /// Standby losses detected so far.
    standby_lost: AtomicU32,
    dead: AtomicBool,
    /// High-water marks of retired queues (a restart swaps in a fresh queue
    /// whose gauge starts at zero).
    high_water_floor: AtomicUsize,
    gauges: Mutex<Arc<QueueGauges>>,
    /// Latency histograms and event journal. Like every other cell counter
    /// these outlive worker incarnations and accumulate across restarts.
    obs: ShardObs,
}

impl ShardCell {
    /// Cell for `shard`, wired to that shard's queue gauges.
    pub fn new(shard: usize, gauges: Arc<QueueGauges>) -> Self {
        Self {
            shard,
            state: Mutex::new(CellState::default()),
            processed: AtomicU64::new(0),
            processed_base: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shedding: AtomicBool::new(false),
            restarts: AtomicU32::new(0),
            warm_restarts: AtomicU32::new(0),
            warm_boots: AtomicU32::new(0),
            generation: AtomicU32::new(0),
            phase: AtomicU8::new(ShardPhase::Serving.code()),
            ckpt_seq: AtomicU64::new(u64::MAX),
            failovers: AtomicU32::new(0),
            replica_seq: AtomicU64::new(u64::MAX),
            replica_shipped_bytes: AtomicU64::new(0),
            standby_lost: AtomicU32::new(0),
            dead: AtomicBool::new(false),
            high_water_floor: AtomicUsize::new(0),
            gauges: Mutex::new(gauges),
            obs: ShardObs::default(),
        }
    }

    /// Shard index this cell reports under.
    pub fn shard_index(&self) -> usize {
        self.shard
    }

    /// The shard's observability state (histograms + journal). Workers
    /// record through this; readers snapshot it.
    pub fn obs(&self) -> &ShardObs {
        &self.obs
    }

    /// Worker side, batch boundary: publish cumulative metrics *and* the
    /// policy label (labels change rarely; per-request publication skips
    /// them).
    pub fn publish(&self, cache: CacheMetrics, processed: u64, policy: String) {
        {
            let mut st = self.state.lock().expect("cell poisoned");
            st.cache = cache;
            st.policy = policy;
        }
        self.processed.store(processed, Ordering::Release);
    }

    /// Worker side, per request: publish cumulative metrics and the
    /// processed count. Keeping the cell exact at every request is what
    /// makes the fleet's crash accounting (`submitted = processed + dropped
    /// + unavailable`) exact rather than batch-granular.
    pub fn publish_request(&self, cache: CacheMetrics, processed: u64) {
        self.state.lock().expect("cell poisoned").cache = cache;
        self.processed.store(processed, Ordering::Release);
    }

    /// Producer side: account requests shed at this shard's queue or lost in
    /// flight to a worker death.
    pub fn add_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Requests dropped at this shard so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Producer side: account requests answered `Unavailable` because this
    /// shard is dead.
    pub fn add_unavailable(&self, n: u64) {
        if n > 0 {
            self.unavailable.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Requests answered `Unavailable` so far.
    pub fn unavailable(&self) -> u64 {
        self.unavailable.load(Ordering::Relaxed)
    }

    /// Producer side: account requests answered `Busy` because this shard's
    /// queue was over its shed watermark.
    pub fn add_shed(&self, n: u64) {
        if n > 0 {
            self.shed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Requests shed `Busy` at this shard so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// True while producers are shedding this shard's traffic.
    pub fn is_shedding(&self) -> bool {
        self.shedding.load(Ordering::Relaxed)
    }

    /// Current depth of the shard's queue (the live incarnation's gauge).
    pub fn queue_depth(&self) -> usize {
        self.gauges.lock().expect("cell poisoned").depth()
    }

    /// Runs the watermark state machine against the current queue depth and
    /// returns whether producers should shed this shard's traffic right
    /// now. Shedding engages at `depth >= watermark` and disengages at
    /// `depth <= watermark / 2` (hysteresis, so the decision doesn't
    /// flicker at the boundary); each episode's start and stop are
    /// journaled exactly once, whichever producer's CAS wins the crossing.
    pub fn shed_decision(&self, watermark: usize) -> bool {
        let depth = self.queue_depth();
        if self.shedding.load(Ordering::Relaxed) {
            if depth <= watermark / 2 {
                if self
                    .shedding
                    .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.obs
                        .journal
                        .record(self.processed_total(), EventKind::ShedStop { shed: self.shed() });
                }
                return false;
            }
            true
        } else {
            if depth >= watermark {
                if self
                    .shedding
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.obs
                        .journal
                        .record(self.processed_total(), EventKind::ShedStart { depth: depth as u64 });
                }
                return true;
            }
            false
        }
    }

    /// Requests processed across all incarnations.
    pub fn processed_total(&self) -> u64 {
        self.processed_base.load(Ordering::Acquire) + self.processed.load(Ordering::Acquire)
    }

    /// Folds the just-joined incarnation's counters into the bases so the
    /// next incarnation (if any) counts on top. Call only after the worker
    /// thread has been joined — the arithmetic assumes no concurrent
    /// publisher.
    pub fn fold_incarnation(&self) {
        {
            let mut st = self.state.lock().expect("cell poisoned");
            let current = std::mem::take(&mut st.cache);
            st.cache_base = st.cache_base.merge(&current);
        }
        let p = self.processed.swap(0, Ordering::AcqRel);
        self.processed_base.fetch_add(p, Ordering::AcqRel);
        let hw = self.gauges.lock().expect("cell poisoned").high_water();
        self.high_water_floor.fetch_max(hw, Ordering::Relaxed);
    }

    /// Points the cell at a replacement queue's gauges (cold restart).
    pub fn set_gauges(&self, gauges: Arc<QueueGauges>) {
        *self.gauges.lock().expect("cell poisoned") = gauges;
    }

    /// Counts one granted restart (warm or cold — warmness is recorded
    /// separately by the respawned worker once its restore attempt settles).
    pub fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Restarts granted so far (warm and cold together).
    pub fn restarts(&self) -> u32 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Worker side, on respawn: records that the incarnation restored warm
    /// from a valid checkpoint.
    pub fn record_warm_restart(&self) {
        self.warm_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Restarts that resumed warm so far.
    pub fn warm_restarts(&self) -> u32 {
        self.warm_restarts.load(Ordering::Relaxed)
    }

    /// Worker side, at boot: records a restore shipped across a process or
    /// generation boundary (spill-file warm boot or resize handoff).
    pub fn record_warm_boot(&self) {
        self.warm_boots.fetch_add(1, Ordering::Relaxed);
    }

    /// Warm boots recorded so far.
    pub fn warm_boots(&self) -> u32 {
        self.warm_boots.load(Ordering::Relaxed)
    }

    /// Sets the router generation this cell reports under (fleet build).
    pub fn set_generation(&self, generation: u32) {
        self.generation.store(generation, Ordering::Relaxed);
    }

    /// Router generation this cell reports under.
    pub fn generation(&self) -> u32 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Advances the shard's handoff phase (no ordering enforcement here —
    /// the rebalancer's tracker owns the state machine).
    pub fn set_phase(&self, phase: ShardPhase) {
        self.phase.store(phase.code(), Ordering::Relaxed);
    }

    /// The shard's current handoff phase.
    pub fn phase(&self) -> ShardPhase {
        ShardPhase::from_code(self.phase.load(Ordering::Relaxed)).unwrap_or(ShardPhase::Serving)
    }

    /// Worker side: records a stored checkpoint covering the shard's first
    /// `seq` requests.
    pub fn record_checkpoint(&self, seq: u64) {
        self.ckpt_seq.store(seq, Ordering::Release);
    }

    /// Sequence number of the latest stored checkpoint, if any.
    pub fn checkpoint_seq(&self) -> Option<u64> {
        match self.ckpt_seq.load(Ordering::Acquire) {
            u64::MAX => None,
            seq => Some(seq),
        }
    }

    /// Counts one failover promotion: a past-budget death answered by
    /// installing the hot standby's frame instead of burying the shard.
    /// Always paired with [`record_restart`](Self::record_restart) — the
    /// promoted incarnation is a (warm) restart, so `warm + cold` keeps
    /// partitioning `restarts`.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Failover promotions granted so far.
    pub fn failovers(&self) -> u32 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Worker side: records a replication feed the standby applied — the
    /// boundary it now holds and the payload bytes the envelope shipped.
    pub fn record_replica(&self, seq: u64, shipped_bytes: u64) {
        self.replica_seq.store(seq, Ordering::Release);
        self.replica_shipped_bytes.fetch_add(shipped_bytes, Ordering::Relaxed);
    }

    /// Sequence boundary the hot standby has applied, if any.
    pub fn replica_seq(&self) -> Option<u64> {
        match self.replica_seq.load(Ordering::Acquire) {
            u64::MAX => None,
            seq => Some(seq),
        }
    }

    /// Cumulative replication payload bytes shipped to the standby.
    pub fn replica_shipped_bytes(&self) -> u64 {
        self.replica_shipped_bytes.load(Ordering::Relaxed)
    }

    /// Counts one detected standby loss (poisoned or failed validation).
    pub fn record_standby_lost(&self) {
        self.standby_lost.fetch_add(1, Ordering::Relaxed);
        // The standby's applied boundary is gone with it.
        self.replica_seq.store(u64::MAX, Ordering::Release);
    }

    /// Standby losses detected so far.
    pub fn standby_lost(&self) -> u32 {
        self.standby_lost.load(Ordering::Relaxed)
    }

    /// Marks the shard permanently dead.
    pub fn mark_dead(&self) {
        self.dead.store(true, Ordering::Relaxed);
    }

    /// True once the shard has been marked permanently dead.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Reader side: the shard's current snapshot (whole-life totals).
    pub fn snapshot(&self) -> ShardSnapshot {
        let (cache, policy) = {
            let st = self.state.lock().expect("cell poisoned");
            (st.cache_base.merge(&st.cache), st.policy.clone())
        };
        let gauges = Arc::clone(&self.gauges.lock().expect("cell poisoned"));
        let processed_total = self.processed_total();
        let checkpoint_seq = self.checkpoint_seq();
        let journal = self.obs.journal.snapshot();
        ShardSnapshot {
            shard: self.shard,
            processed: processed_total,
            dropped: self.dropped(),
            unavailable: self.unavailable(),
            shed: self.shed(),
            shedding: self.is_shedding(),
            restarts: self.restarts(),
            warm_restarts: self.warm_restarts(),
            warm_boots: self.warm_boots(),
            router_generation: self.generation(),
            dead: self.is_dead(),
            phase: self.phase().label().to_string(),
            checkpoint_seq,
            checkpoint_age: checkpoint_seq.map_or(0, |s| processed_total.saturating_sub(s)),
            failovers: self.failovers(),
            replica_seq: self.replica_seq(),
            replica_shipped_bytes: self.replica_shipped_bytes(),
            standby_lost: self.standby_lost(),
            queue_depth: gauges.depth(),
            queue_high_water: self.high_water_floor.load(Ordering::Relaxed).max(gauges.high_water()),
            cache,
            policy,
            latency: Some(self.obs.latency_snapshot()),
            events_dropped: journal.dropped,
            events: journal.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(shard: usize, requests: u64, hits: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            processed: requests,
            dropped: 0,
            unavailable: 0,
            shed: 0,
            shedding: false,
            restarts: 0,
            warm_restarts: 0,
            warm_boots: 0,
            router_generation: 0,
            dead: false,
            phase: String::new(),
            checkpoint_seq: None,
            checkpoint_age: 0,
            failovers: 0,
            replica_seq: None,
            replica_shipped_bytes: 0,
            standby_lost: 0,
            queue_depth: 0,
            queue_high_water: 0,
            cache: CacheMetrics {
                requests,
                hoc_hits: hits,
                bytes_total: requests * 10,
                ..Default::default()
            },
            policy: "f2s100".into(),
            latency: None,
            events_dropped: 0,
            events: Vec::new(),
        }
    }

    #[test]
    fn fleet_aggregates_are_counterwise_sums() {
        let fm = FleetMetrics::from_shards(vec![snap(0, 100, 40), snap(1, 300, 60)]);
        let total = fm.fleet_cache();
        assert_eq!(total.requests, 400);
        assert_eq!(total.hoc_hits, 100);
        assert!((total.hoc_ohr() - 0.25).abs() < 1e-12, "fleet OHR is hit-weighted");
        assert_eq!(fm.total_processed(), 400);
        assert_eq!(fm.total_dropped(), 0);
        assert_eq!(fm.total_unavailable(), 0);
        assert_eq!(fm.total_restarts(), 0);
        assert_eq!(fm.dead_shards(), 0);
    }

    #[test]
    fn empty_fleet_is_all_zero() {
        let fm = FleetMetrics::from_shards(Vec::new());
        assert_eq!(fm.fleet_cache(), CacheMetrics::default());
        assert_eq!(fm.max_queue_depth(), 0);
        assert_eq!(fm.max_queue_high_water(), 0);
    }

    #[test]
    fn snapshot_json_roundtrips_with_and_without_gateway() {
        let plain = FleetMetrics::from_shards(vec![snap(0, 10, 3)]);
        assert_eq!(FleetMetrics::from_json(&plain.to_json()).unwrap(), plain);

        let gw = GatewaySnapshot {
            connections_accepted: 2,
            connections_active: 1,
            idle_closed: 1,
            frames_in: 40,
            frames_rejected: 1,
            requests_in: 2_000,
            verdicts_out: 1_990,
            stats_served: 3,
            events_served: 1,
            resizes_served: 1,
            shed: 12,
            throttled: 1,
            slow_closed: 1,
            net_faults: 4,
            bytes_in: 48_000,
            bytes_out: 2_300,
        };
        let folded = FleetMetrics::from_shards(vec![snap(0, 10, 3)]).with_gateway(gw);
        let back = FleetMetrics::from_json(&folded.to_json()).unwrap();
        assert_eq!(back, folded);
        assert_eq!(back.gateway.unwrap().requests_in, 2_000);
    }

    #[test]
    fn snapshot_json_tolerates_pre_supervision_fields() {
        // Snapshots written before the supervision counters existed (older
        // bench artifacts) still parse; the new fields default to zero.
        let fm = FleetMetrics::from_shards(vec![snap(0, 10, 3)]);
        let mut json = fm.to_json();
        for gone in [
            "\"unavailable\": 0,",
            "\"restarts\": 0,",
            "\"warm_restarts\": 0,",
            "\"warm_boots\": 0,",
            "\"router_generation\": 0,",
            "\"dead\": false,",
            "\"phase\": \"\",",
            "\"checkpoint_seq\": null,",
            "\"checkpoint_age\": 0,",
            "\"failovers\": 0,",
            "\"replica_seq\": null,",
            "\"replica_shipped_bytes\": 0,",
            "\"standby_lost\": 0,",
            "\"latency\": null,",
            "\"events_dropped\": 0,",
            "\"generations\": [],",
        ] {
            assert!(json.contains(gone), "field {gone} missing from JSON");
            json = json.replacen(gone, "", 1);
        }
        let back = FleetMetrics::from_json(&json).unwrap();
        assert_eq!(back, fm, "missing fields default to zero");
    }

    #[test]
    fn warm_and_cold_restarts_partition_the_total() {
        let mut a = snap(0, 100, 40);
        a.restarts = 3;
        a.warm_restarts = 2;
        let mut b = snap(1, 100, 40);
        b.restarts = 1;
        b.warm_restarts = 0;
        assert_eq!(a.cold_restarts(), 1);
        assert_eq!(b.cold_restarts(), 1);
        let fm = FleetMetrics::from_shards(vec![a, b]);
        assert_eq!(fm.total_restarts(), 4);
        assert_eq!(fm.total_warm_restarts(), 2);
        assert_eq!(fm.total_cold_restarts(), 2);
        assert_eq!(
            fm.total_warm_restarts() + fm.total_cold_restarts(),
            fm.total_restarts(),
            "warm + cold must always equal the total"
        );
    }

    #[test]
    fn phases_advance_one_way_and_roundtrip_codes() {
        use ShardPhase::*;
        for p in [Serving, Draining, Transferring, Retired] {
            assert_eq!(ShardPhase::from_code(p.code()), Some(p));
        }
        assert_eq!(ShardPhase::from_code(4), None);
        assert!(Serving.can_advance_to(Draining));
        assert!(Draining.can_advance_to(Transferring));
        assert!(Transferring.can_advance_to(Retired));
        assert!(!Serving.can_advance_to(Transferring), "no phase skipping");
        assert!(!Retired.can_advance_to(Serving), "no resurrection");
        assert!(!Draining.can_advance_to(Serving), "no going back");
    }

    #[test]
    fn absorb_tracks_generation_phase_and_warm_boots() {
        // Archive of the retired generation 0 merged with the live
        // generation 1: counters sum, the phase follows the newer
        // generation, and the generation gauge takes the max.
        let mut retired = snap(0, 100, 40);
        retired.router_generation = 0;
        retired.phase = "retired".into();
        retired.warm_boots = 0;
        let mut live = snap(0, 60, 20);
        live.router_generation = 1;
        live.phase = "serving".into();
        live.warm_boots = 1;
        retired.absorb(&live);
        assert_eq!(retired.processed, 160);
        assert_eq!(retired.warm_boots, 1);
        assert_eq!(retired.router_generation, 1);
        assert_eq!(retired.phase, "serving", "live generation's phase wins");

        // Absorbing an *older* generation's archive must not regress the
        // live phase either.
        let mut live2 = snap(1, 10, 5);
        live2.router_generation = 2;
        live2.phase = "serving".into();
        let mut old = snap(1, 30, 5);
        old.router_generation = 1;
        old.phase = "retired".into();
        live2.absorb(&old);
        assert_eq!(live2.phase, "serving");
        assert_eq!(live2.router_generation, 2);
    }

    #[test]
    fn generation_summaries_merge_and_survive_json() {
        let summary = |g: u32, shards: u32, processed: u64| GenerationSummary {
            generation: g,
            shards,
            processed,
            dropped: 0,
            unavailable: 0,
            restarts: 0,
            warm_restarts: 0,
            warm_boots: shards,
        };
        let mut a = FleetMetrics::from_shards(vec![snap(0, 100, 40)]);
        a.generations.push(summary(0, 4, 50));
        let mut b = FleetMetrics::from_shards(vec![snap(1, 10, 1)]);
        b.generations.push(summary(1, 8, 50));
        b.generations.push(summary(0, 4, 50)); // duplicate: deduped, not doubled
        let merged = a.merge(b);
        assert_eq!(
            merged.generations.iter().map(|g| g.generation).collect::<Vec<_>>(),
            vec![0, 1],
            "generations dedupe by id and sort"
        );
        assert_eq!(merged.generations[1].shards, 8);
        let back = FleetMetrics::from_json(&merged.to_json()).unwrap();
        assert_eq!(back, merged);
        assert_eq!(back.router_generation(), 1);
        assert_eq!(back.total_warm_boots(), 0);
    }

    #[test]
    fn cell_reports_generation_phase_and_warm_boots() {
        let cell = ShardCell::new(2, Arc::new(QueueGauges::default()));
        assert_eq!(cell.generation(), 0);
        assert_eq!(cell.phase(), ShardPhase::Serving);
        cell.set_generation(3);
        cell.set_phase(ShardPhase::Draining);
        cell.record_warm_boot();
        let s = cell.snapshot();
        assert_eq!(s.router_generation, 3);
        assert_eq!(s.phase, "draining");
        assert_eq!(s.warm_boots, 1);
        assert_eq!(s.warm_restarts, 0, "a boot is not a restart");
        assert_eq!(s.restarts, 0);
    }

    #[test]
    fn merge_concatenates_disjoint_shard_groups() {
        let a = FleetMetrics::from_shards(vec![snap(0, 100, 40), snap(2, 50, 10)]);
        let b = FleetMetrics::from_shards(vec![snap(1, 300, 60)]);
        let merged = a.merge(b);
        assert_eq!(merged.shards.len(), 3);
        assert_eq!(merged.shards.iter().map(|s| s.shard).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(merged.total_processed(), 450);
        assert_eq!(merged.fleet_cache().requests, 450);
    }

    #[test]
    fn merge_folds_duplicate_shard_ids_counterwise() {
        // Regression: merge used to concatenate snapshots sharing a shard
        // index, so the merged list carried phantom duplicate entries while
        // every total_* accessor double-counted nothing — but per-shard
        // consumers indexing by shard id read only one of the halves.
        let mut a0 = snap(0, 100, 40);
        a0.dropped = 5;
        a0.restarts = 1;
        a0.queue_depth = 3;
        a0.queue_high_water = 7;
        let mut b0 = snap(0, 60, 20);
        b0.unavailable = 2;
        b0.warm_restarts = 0;
        b0.restarts = 2;
        b0.warm_restarts = 1;
        b0.dead = true;
        b0.checkpoint_seq = Some(50);
        b0.checkpoint_age = 10;
        b0.queue_depth = 1;
        b0.queue_high_water = 4;
        let a = FleetMetrics::from_shards(vec![a0, snap(1, 10, 1)]);
        let b = FleetMetrics::from_shards(vec![b0]);
        let merged = a.merge(b);
        assert_eq!(merged.shards.len(), 2, "shard 0 folded, never duplicated");
        let s0 = &merged.shards[0];
        assert_eq!(s0.shard, 0);
        assert_eq!(s0.processed, 160);
        assert_eq!(s0.dropped, 5);
        assert_eq!(s0.unavailable, 2);
        assert_eq!(s0.restarts, 3);
        assert_eq!(s0.warm_restarts, 1);
        assert!(s0.dead);
        assert_eq!(s0.checkpoint_seq, Some(50));
        assert_eq!(s0.checkpoint_age, 10);
        assert_eq!(s0.queue_depth, 4);
        assert_eq!(s0.queue_high_water, 7);
        assert_eq!(s0.cache.requests, 160);
        assert_eq!(s0.cache.hoc_hits, 60);
        // The conservation-law accessors equal the sums of the inputs.
        assert_eq!(merged.total_processed(), 170);
        assert_eq!(merged.total_dropped(), 5);
        assert_eq!(merged.total_unavailable(), 2);
        assert_eq!(merged.total_restarts(), 3);
        assert_eq!(merged.fleet_cache().requests, 170);
    }

    #[test]
    fn absorb_merges_journal_and_latency() {
        use darwin_obs::{EventKind, Histogram};
        let mut a = snap(0, 10, 5);
        a.events.push(Event { seq: 40, kind: EventKind::WorkerDeath });
        a.events_dropped = 2;
        let h = Histogram::new();
        h.record(1_000);
        a.latency = Some(LatencySnapshot {
            serve: h.snapshot(),
            queue_wait: Default::default(),
            ckpt_pause: Default::default(),
        });
        let mut b = snap(0, 10, 5);
        b.events.push(Event { seq: 7, kind: EventKind::RestoreCold });
        b.events_dropped = 1;
        h.record(3_000);
        b.latency = Some(LatencySnapshot {
            serve: h.snapshot(),
            queue_wait: Default::default(),
            ckpt_pause: Default::default(),
        });
        a.absorb(&b);
        assert_eq!(a.events_dropped, 3);
        assert_eq!(a.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 40]);
        assert_eq!(a.latency.as_ref().unwrap().serve.count, 3, "1 + 2 recorded samples");
    }

    #[test]
    #[should_panic(expected = "cannot absorb a different shard's snapshot")]
    fn absorb_rejects_mismatched_shard_ids() {
        let mut a = snap(0, 1, 0);
        a.absorb(&snap(1, 1, 0));
    }

    #[test]
    fn checkpoint_age_tracks_latest_checkpoint() {
        let mut a = snap(0, 5_000, 40);
        a.checkpoint_seq = Some(4_000);
        a.checkpoint_age = 1_000;
        let b = snap(1, 9_000, 60); // never checkpointed: age 0
        let fm = FleetMetrics::from_shards(vec![a, b]);
        assert_eq!(fm.max_checkpoint_age(), 1_000);
    }

    #[test]
    fn cell_records_checkpoints_and_warm_restarts() {
        let cell = ShardCell::new(0, Arc::new(QueueGauges::default()));
        assert_eq!(cell.checkpoint_seq(), None);
        assert_eq!(cell.snapshot().checkpoint_age, 0);

        cell.publish_request(CacheMetrics { requests: 1_500, ..Default::default() }, 1_500);
        cell.record_checkpoint(1_000);
        let s = cell.snapshot();
        assert_eq!(s.checkpoint_seq, Some(1_000));
        assert_eq!(s.checkpoint_age, 500);

        cell.record_restart();
        cell.record_warm_restart();
        let s = cell.snapshot();
        assert_eq!(s.restarts, 1);
        assert_eq!(s.warm_restarts, 1);
        assert_eq!(s.cold_restarts(), 0);
    }

    #[test]
    fn cell_tracks_replication_and_failovers() {
        let cell = ShardCell::new(1, Arc::new(QueueGauges::default()));
        assert_eq!(cell.replica_seq(), None);
        cell.record_replica(1_000, 4_096);
        cell.record_replica(2_000, 128);
        let s = cell.snapshot();
        assert_eq!(s.replica_seq, Some(2_000));
        assert_eq!(s.replica_shipped_bytes, 4_224);
        assert_eq!(s.failovers, 0);
        // A detected loss clears the applied boundary but keeps the ledger.
        cell.record_standby_lost();
        let s = cell.snapshot();
        assert_eq!(s.replica_seq, None);
        assert_eq!(s.standby_lost, 1);
        assert_eq!(s.replica_shipped_bytes, 4_224);
        // A failover is a (warm) restart plus the failover count.
        cell.record_restart();
        cell.record_failover();
        let s = cell.snapshot();
        assert_eq!(s.failovers, 1);
        assert_eq!(s.restarts, 1);
        let fm = FleetMetrics::from_shards(vec![s]);
        assert_eq!(fm.total_failovers(), 1);
        assert_eq!(fm.total_standby_lost(), 1);
        assert_eq!(fm.total_replica_shipped_bytes(), 4_224);
    }

    #[test]
    fn handle_snapshots_are_nonblocking_views_of_cells() {
        let cell = Arc::new(ShardCell::new(0, Arc::new(QueueGauges::default())));
        let handle = MetricsHandle::new(vec![Arc::clone(&cell)]);
        assert_eq!(handle.shards(), 1);
        assert_eq!(handle.snapshot().total_processed(), 0);
        cell.publish(CacheMetrics { requests: 9, ..Default::default() }, 9, "f1s1".into());
        let snap = handle.snapshot();
        assert_eq!(snap.total_processed(), 9);
        assert!(snap.gateway.is_none());
    }

    #[test]
    fn cell_roundtrips_published_state() {
        let cell = ShardCell::new(3, Arc::new(QueueGauges::default()));
        let m = CacheMetrics { requests: 7, hoc_hits: 2, ..Default::default() };
        cell.publish(m, 7, "f1s50".into());
        cell.add_dropped(5);
        cell.add_unavailable(2);
        let s = cell.snapshot();
        assert_eq!(s.shard, 3);
        assert_eq!(s.processed, 7);
        assert_eq!(s.dropped, 5);
        assert_eq!(s.unavailable, 2);
        assert_eq!(s.cache, m);
        assert_eq!(s.policy, "f1s50");
        assert!(!s.dead);
    }

    #[test]
    fn fold_incarnation_accumulates_across_restarts() {
        let cell = ShardCell::new(0, Arc::new(QueueGauges::default()));
        let m1 = CacheMetrics { requests: 100, hoc_hits: 30, ..Default::default() };
        cell.publish_request(m1, 100);
        cell.fold_incarnation();
        cell.record_restart();

        // Fresh incarnation counts from zero; readers see the sum.
        let m2 = CacheMetrics { requests: 40, hoc_hits: 10, ..Default::default() };
        cell.publish_request(m2, 40);
        let s = cell.snapshot();
        assert_eq!(s.processed, 140);
        assert_eq!(s.cache.requests, 140);
        assert_eq!(s.cache.hoc_hits, 40);
        assert_eq!(s.restarts, 1);
        assert!(!s.dead);

        // Second death exhausts the (hypothetical) budget.
        cell.fold_incarnation();
        cell.mark_dead();
        let s = cell.snapshot();
        assert_eq!(s.processed, 140);
        assert!(s.dead);
        assert_eq!(cell.processed_total(), 140);
    }
}
