//! Fleet-wide metrics aggregation.
//!
//! Each shard worker periodically publishes its cumulative [`CacheMetrics`]
//! (plus processed/backpressure counters) into a [`ShardCell`]; the fleet
//! assembles point-in-time [`FleetMetrics`] snapshots from the cells on
//! demand and, when configured, on a fixed submission cadence. Because every
//! counter is a plain sum, per-shard metrics merge into exact fleet-wide
//! OHR / BMR / disk-write figures via [`CacheMetrics::merge_all`].

use crate::queue::QueueGauges;
use darwin_cache::CacheMetrics;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Requests fully processed by the shard worker.
    pub processed: u64,
    /// Requests dropped at the shard's queue under `DropNewest` backpressure.
    pub dropped: u64,
    /// Requests currently waiting in the shard's queue.
    pub queue_depth: usize,
    /// Maximum queue depth ever observed (backpressure high-water mark).
    pub queue_high_water: usize,
    /// The shard server's cumulative cache metrics.
    pub cache: CacheMetrics,
    /// Label of the shard's currently deployed admission policy.
    pub policy: String,
}

/// Point-in-time view of the whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
}

impl FleetMetrics {
    /// Fleet-wide cache metrics: the counter-wise sum over shards. OHR/BMR
    /// and disk-write rates of the returned value are exact fleet-wide
    /// figures.
    pub fn fleet_cache(&self) -> CacheMetrics {
        CacheMetrics::merge_all(self.shards.iter().map(|s| &s.cache))
    }

    /// Requests processed across the fleet.
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Requests dropped across the fleet (backpressure load shedding).
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Deepest queue across shards right now.
    pub fn max_queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).max().unwrap_or(0)
    }

    /// Highest queue high-water mark across shards.
    pub fn max_queue_high_water(&self) -> usize {
        self.shards.iter().map(|s| s.queue_high_water).max().unwrap_or(0)
    }
}

/// The mailbox one shard worker publishes into and the fleet reads from.
#[derive(Debug)]
pub struct ShardCell {
    shard: usize,
    state: Mutex<(CacheMetrics, String)>,
    processed: AtomicU64,
    dropped: AtomicU64,
    gauges: Arc<QueueGauges>,
}

impl ShardCell {
    /// Cell for `shard`, wired to that shard's queue gauges.
    pub fn new(shard: usize, gauges: Arc<QueueGauges>) -> Self {
        Self {
            shard,
            state: Mutex::new((CacheMetrics::default(), String::new())),
            processed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            gauges,
        }
    }

    /// Worker side: publish the shard's cumulative metrics and policy label.
    pub fn publish(&self, cache: CacheMetrics, processed: u64, policy: String) {
        *self.state.lock().expect("cell poisoned") = (cache, policy);
        self.processed.store(processed, Ordering::Release);
    }

    /// Producer side: account requests shed at this shard's queue.
    pub fn add_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Requests dropped at this shard so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Reader side: the shard's current snapshot.
    pub fn snapshot(&self) -> ShardSnapshot {
        let (cache, policy) = self.state.lock().expect("cell poisoned").clone();
        ShardSnapshot {
            shard: self.shard,
            processed: self.processed.load(Ordering::Acquire),
            dropped: self.dropped(),
            queue_depth: self.gauges.depth(),
            queue_high_water: self.gauges.high_water(),
            cache,
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(shard: usize, requests: u64, hits: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            processed: requests,
            dropped: 0,
            queue_depth: 0,
            queue_high_water: 0,
            cache: CacheMetrics {
                requests,
                hoc_hits: hits,
                bytes_total: requests * 10,
                ..Default::default()
            },
            policy: "f2s100".into(),
        }
    }

    #[test]
    fn fleet_aggregates_are_counterwise_sums() {
        let fm = FleetMetrics { shards: vec![snap(0, 100, 40), snap(1, 300, 60)] };
        let total = fm.fleet_cache();
        assert_eq!(total.requests, 400);
        assert_eq!(total.hoc_hits, 100);
        assert!((total.hoc_ohr() - 0.25).abs() < 1e-12, "fleet OHR is hit-weighted");
        assert_eq!(fm.total_processed(), 400);
        assert_eq!(fm.total_dropped(), 0);
    }

    #[test]
    fn empty_fleet_is_all_zero() {
        let fm = FleetMetrics { shards: Vec::new() };
        assert_eq!(fm.fleet_cache(), CacheMetrics::default());
        assert_eq!(fm.max_queue_depth(), 0);
        assert_eq!(fm.max_queue_high_water(), 0);
    }

    #[test]
    fn cell_roundtrips_published_state() {
        let cell = ShardCell::new(3, Arc::new(QueueGauges::default()));
        let m = CacheMetrics { requests: 7, hoc_hits: 2, ..Default::default() };
        cell.publish(m, 7, "f1s50".into());
        cell.add_dropped(5);
        let s = cell.snapshot();
        assert_eq!(s.shard, 3);
        assert_eq!(s.processed, 7);
        assert_eq!(s.dropped, 5);
        assert_eq!(s.cache, m);
        assert_eq!(s.policy, "f1s50");
    }
}
