//! Fleet-wide metrics aggregation.
//!
//! Each shard worker periodically publishes its cumulative [`CacheMetrics`]
//! (plus processed/backpressure counters) into a [`ShardCell`]; the fleet
//! assembles point-in-time [`FleetMetrics`] snapshots from the cells on
//! demand and, when configured, on a fixed submission cadence. Because every
//! counter is a plain sum, per-shard metrics merge into exact fleet-wide
//! OHR / BMR / disk-write figures via [`CacheMetrics::merge_all`].

use crate::queue::QueueGauges;
use darwin_cache::CacheMetrics;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Requests fully processed by the shard worker.
    pub processed: u64,
    /// Requests dropped at the shard's queue under `DropNewest` backpressure.
    pub dropped: u64,
    /// Requests currently waiting in the shard's queue.
    pub queue_depth: usize,
    /// Maximum queue depth ever observed (backpressure high-water mark).
    pub queue_high_water: usize,
    /// The shard server's cumulative cache metrics.
    pub cache: CacheMetrics,
    /// Label of the shard's currently deployed admission policy.
    pub policy: String,
}

/// Counters of a network front-end serving a fleet, folded into
/// [`FleetMetrics`] snapshots taken through a gateway (`None` for in-process
/// fleets). All counters are cumulative since the gateway started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewaySnapshot {
    /// Connections accepted so far.
    pub connections_accepted: u64,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Well-formed frames decoded across all connections.
    pub frames_in: u64,
    /// Frames rejected (malformed, oversized, or a client-illegal opcode).
    pub frames_rejected: u64,
    /// Requests extracted from `GET` frames and submitted to the fleet.
    pub requests_in: u64,
    /// Verdicts written back to clients.
    pub verdicts_out: u64,
    /// `STATS` frames served.
    pub stats_served: u64,
    /// Bytes read off client sockets.
    pub bytes_in: u64,
    /// Bytes written to client sockets.
    pub bytes_out: u64,
}

/// Point-in-time view of the whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Network front-end counters, when the snapshot was taken through a
    /// gateway.
    pub gateway: Option<GatewaySnapshot>,
}

impl FleetMetrics {
    /// A snapshot of `shards` with no gateway in front.
    pub fn from_shards(shards: Vec<ShardSnapshot>) -> Self {
        Self { shards, gateway: None }
    }

    /// Folds a gateway's counters into the snapshot.
    pub fn with_gateway(mut self, gateway: GatewaySnapshot) -> Self {
        self.gateway = Some(gateway);
        self
    }

    /// Serializes the snapshot as pretty JSON — the one code path behind the
    /// gateway's `STATS` reply and the `inspect` binary's fleet mode.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet metrics serialization cannot fail")
    }

    /// Parses a snapshot produced by [`FleetMetrics::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
    /// Fleet-wide cache metrics: the counter-wise sum over shards. OHR/BMR
    /// and disk-write rates of the returned value are exact fleet-wide
    /// figures.
    pub fn fleet_cache(&self) -> CacheMetrics {
        CacheMetrics::merge_all(self.shards.iter().map(|s| &s.cache))
    }

    /// Requests processed across the fleet.
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Requests dropped across the fleet (backpressure load shedding).
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Deepest queue across shards right now.
    pub fn max_queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).max().unwrap_or(0)
    }

    /// Highest queue high-water mark across shards.
    pub fn max_queue_high_water(&self) -> usize {
        self.shards.iter().map(|s| s.queue_high_water).max().unwrap_or(0)
    }
}

/// A cloneable, non-blocking view of a fleet's metrics.
///
/// Snapshots read only the per-shard [`ShardCell`] mailboxes — never the
/// submission path or the shard queues — so a handle can be polled from any
/// thread while submitters are blocked on backpressure, and it remains valid
/// after the fleet has been [`finish`](crate::ShardedFleet::finish)ed
/// (reporting each shard's final published state).
#[derive(Debug, Clone)]
pub struct MetricsHandle {
    cells: Vec<Arc<ShardCell>>,
}

impl MetricsHandle {
    /// Handle over the given shard cells (one per shard, in shard order).
    pub fn new(cells: Vec<Arc<ShardCell>>) -> Self {
        Self { cells }
    }

    /// Number of shards the handle observes.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// Point-in-time fleet snapshot.
    pub fn snapshot(&self) -> FleetMetrics {
        FleetMetrics::from_shards(self.cells.iter().map(|c| c.snapshot()).collect())
    }
}

/// The mailbox one shard worker publishes into and the fleet reads from.
#[derive(Debug)]
pub struct ShardCell {
    shard: usize,
    state: Mutex<(CacheMetrics, String)>,
    processed: AtomicU64,
    dropped: AtomicU64,
    gauges: Arc<QueueGauges>,
}

impl ShardCell {
    /// Cell for `shard`, wired to that shard's queue gauges.
    pub fn new(shard: usize, gauges: Arc<QueueGauges>) -> Self {
        Self {
            shard,
            state: Mutex::new((CacheMetrics::default(), String::new())),
            processed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            gauges,
        }
    }

    /// Worker side: publish the shard's cumulative metrics and policy label.
    pub fn publish(&self, cache: CacheMetrics, processed: u64, policy: String) {
        *self.state.lock().expect("cell poisoned") = (cache, policy);
        self.processed.store(processed, Ordering::Release);
    }

    /// Producer side: account requests shed at this shard's queue.
    pub fn add_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Requests dropped at this shard so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Reader side: the shard's current snapshot.
    pub fn snapshot(&self) -> ShardSnapshot {
        let (cache, policy) = self.state.lock().expect("cell poisoned").clone();
        ShardSnapshot {
            shard: self.shard,
            processed: self.processed.load(Ordering::Acquire),
            dropped: self.dropped(),
            queue_depth: self.gauges.depth(),
            queue_high_water: self.gauges.high_water(),
            cache,
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(shard: usize, requests: u64, hits: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            processed: requests,
            dropped: 0,
            queue_depth: 0,
            queue_high_water: 0,
            cache: CacheMetrics {
                requests,
                hoc_hits: hits,
                bytes_total: requests * 10,
                ..Default::default()
            },
            policy: "f2s100".into(),
        }
    }

    #[test]
    fn fleet_aggregates_are_counterwise_sums() {
        let fm = FleetMetrics::from_shards(vec![snap(0, 100, 40), snap(1, 300, 60)]);
        let total = fm.fleet_cache();
        assert_eq!(total.requests, 400);
        assert_eq!(total.hoc_hits, 100);
        assert!((total.hoc_ohr() - 0.25).abs() < 1e-12, "fleet OHR is hit-weighted");
        assert_eq!(fm.total_processed(), 400);
        assert_eq!(fm.total_dropped(), 0);
    }

    #[test]
    fn empty_fleet_is_all_zero() {
        let fm = FleetMetrics::from_shards(Vec::new());
        assert_eq!(fm.fleet_cache(), CacheMetrics::default());
        assert_eq!(fm.max_queue_depth(), 0);
        assert_eq!(fm.max_queue_high_water(), 0);
    }

    #[test]
    fn snapshot_json_roundtrips_with_and_without_gateway() {
        let plain = FleetMetrics::from_shards(vec![snap(0, 10, 3)]);
        assert_eq!(FleetMetrics::from_json(&plain.to_json()).unwrap(), plain);

        let gw = GatewaySnapshot {
            connections_accepted: 2,
            connections_active: 1,
            frames_in: 40,
            frames_rejected: 1,
            requests_in: 2_000,
            verdicts_out: 1_990,
            stats_served: 3,
            bytes_in: 48_000,
            bytes_out: 2_300,
        };
        let folded = FleetMetrics::from_shards(vec![snap(0, 10, 3)]).with_gateway(gw);
        let back = FleetMetrics::from_json(&folded.to_json()).unwrap();
        assert_eq!(back, folded);
        assert_eq!(back.gateway.unwrap().requests_in, 2_000);
    }

    #[test]
    fn handle_snapshots_are_nonblocking_views_of_cells() {
        let cell = Arc::new(ShardCell::new(0, Arc::new(QueueGauges::default())));
        let handle = MetricsHandle::new(vec![Arc::clone(&cell)]);
        assert_eq!(handle.shards(), 1);
        assert_eq!(handle.snapshot().total_processed(), 0);
        cell.publish(CacheMetrics { requests: 9, ..Default::default() }, 9, "f1s1".into());
        let snap = handle.snapshot();
        assert_eq!(snap.total_processed(), 9);
        assert!(snap.gateway.is_none());
    }

    #[test]
    fn cell_roundtrips_published_state() {
        let cell = ShardCell::new(3, Arc::new(QueueGauges::default()));
        let m = CacheMetrics { requests: 7, hoc_hits: 2, ..Default::default() };
        cell.publish(m, 7, "f1s50".into());
        cell.add_dropped(5);
        let s = cell.snapshot();
        assert_eq!(s.shard, 3);
        assert_eq!(s.processed, 7);
        assert_eq!(s.dropped, 5);
        assert_eq!(s.cache, m);
        assert_eq!(s.policy, "f1s50");
    }
}
