//! Request routing across shards.
//!
//! A [`Router`] maps an `ObjectId` to a shard index. The contract that makes
//! the fleet deterministic and cache-correct is that routing is a *pure
//! function of the object ID and the shard count*: every request for an
//! object always lands on the same shard, so per-object state (HOC/DC
//! residency, frequency, recency) never splits across shards, and the
//! partition of a trace is reproducible by anyone holding the router.
//!
//! [`HashRouter`] is the production default (an avalanching 64-bit mix, so
//! adjacent IDs scatter). The trait is the seam where locality- or
//! load-aware placement plugs in later; [`ModuloRouter`] exists mainly to
//! prove the seam works and for tests that want a predictable mapping.

use darwin_trace::ObjectId;

/// Maps object IDs to shard indices. Implementations must be pure: the same
/// `(id, shards)` always yields the same shard.
pub trait Router: Send + Sync {
    /// Shard index in `0..shards` for `id`.
    fn route(&self, id: ObjectId, shards: usize) -> usize;

    /// Short label for reports.
    fn label(&self) -> String;
}

/// Hash partitioning over a SplitMix64-style finalizer (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

/// The 64-bit avalanche mix the hash router scatters IDs with.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Router for HashRouter {
    // Called once per request on every ingest front; `#[inline]` lets the
    // batched frame-routing loop keep the mix in registers.
    #[inline]
    fn route(&self, id: ObjectId, shards: usize) -> usize {
        debug_assert!(shards > 0, "fleet has at least one shard");
        (mix64(id) % shards as u64) as usize
    }

    fn label(&self) -> String {
        "hash".into()
    }
}

/// Plain `id % shards` partitioning: predictable, but trace generators that
/// namespace IDs by class in the high bits make it badly skewed — use it for
/// tests, not serving.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuloRouter;

impl Router for ModuloRouter {
    #[inline]
    fn route(&self, id: ObjectId, shards: usize) -> usize {
        debug_assert!(shards > 0, "fleet has at least one shard");
        (id % shards as u64) as usize
    }

    fn label(&self) -> String {
        "modulo".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8, 16] {
            for id in 0..1000u64 {
                let s = HashRouter.route(id, shards);
                assert!(s < shards);
                assert_eq!(s, HashRouter.route(id, shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn single_shard_gets_everything() {
        for id in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(HashRouter.route(id, 1), 0);
            assert_eq!(ModuloRouter.route(id, 1), 0);
        }
    }

    #[test]
    fn hash_router_balances_sequential_ids() {
        // Sequential IDs (the generator's common case) must spread close to
        // uniformly — the property ModuloRouter lacks once IDs are
        // namespaced.
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..80_000u64 {
            counts[HashRouter.route(id, shards)] += 1;
        }
        let expect = 80_000 / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.05,
                "shard {s} got {c}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn routers_are_object_safe() {
        let routers: Vec<Box<dyn Router>> = vec![Box::new(HashRouter), Box::new(ModuloRouter)];
        assert_eq!(routers[0].label(), "hash");
        assert_eq!(routers[1].label(), "modulo");
        for r in &routers {
            assert!(r.route(42, 4) < 4);
        }
    }
}
