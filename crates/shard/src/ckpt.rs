//! Warm-restart checkpoints for fleet shards.
//!
//! A [`ShardCheckpoint`] pairs a shard's cache image ([`CacheServer::
//! save_state`]-bytes) with its driver's state, the currently deployed
//! policy and the supervisor's restart-budget state, sealed into one
//! versioned, CRC-64-guarded frame. Checkpoints are
//! taken only at per-shard request-sequence boundaries (`checkpoint_every`
//! in `FleetConfig`), never on a wall clock, so a restore from sequence `C`
//! resumes bitwise-identically to a worker that simply paused after its
//! `C`-th request.
//!
//! [`CheckpointSlot`] is where frames live between a store and a crash: a
//! double-buffered in-memory pair (the writer always fills the *inactive*
//! buffer and flips, so a panic mid-store can never tear the buffer a
//! restore will read) plus an optional on-disk spill via write-to-temp +
//! atomic rename. Restores walk [`CheckpointSlot::candidates`] newest-first
//! and fall back cold when every candidate fails validation — corruption is
//! a detected, counted event, never a panic.
//!
//! [`CacheServer::save_state`]: darwin_cache::CacheServer::save_state

use darwin_cache::ThresholdPolicy;
use darwin_ckpt::{open, seal, CkptError, Dec, Enc};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Frame magic: `"DSCK"` (Darwin Shard ChecKpoint), little-endian.
pub const CKPT_MAGIC: u32 = 0x4453_434B;
/// Current frame format revision. v2 added the supervisor's restart-budget
/// state (`restarts` + in-window marks) so warm boots and restores cannot
/// launder a crash-looping shard's history back to a fresh budget.
pub const CKPT_VERSION: u16 = 2;

/// One shard's complete warm-restart image.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Shard index the image belongs to (restores refuse other shards').
    pub shard: usize,
    /// Per-shard request sequence number the image covers: the state after
    /// exactly `seq` processed-or-dropped requests.
    pub seq: u64,
    /// Policy deployed at the boundary (reinstalled before the first
    /// post-restore request).
    pub policy: ThresholdPolicy,
    /// `CacheServer::save_state` bytes.
    pub cache: Vec<u8>,
    /// `AdmissionDriver::save_state` bytes.
    pub driver: Vec<u8>,
    /// Cold restarts the shard's supervisor had granted when the cut was
    /// taken. Carried so a restore resumes the budget, not resets it.
    pub restarts: u32,
    /// Fleet submission counts of the restarts still inside the budget's
    /// sliding window at the cut (oldest first) — the other half of the
    /// supervisor state a crash-looper must not shed.
    pub budget_marks: Vec<u64>,
}

impl ShardCheckpoint {
    /// Seals the checkpoint into a versioned, CRC-guarded frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.usize(self.shard);
        enc.u64(self.seq);
        self.policy.encode_state(&mut enc);
        enc.bytes(&self.cache);
        enc.bytes(&self.driver);
        enc.u32(self.restarts);
        enc.seq(&self.budget_marks, |e, &m| e.u64(m));
        seal(CKPT_MAGIC, CKPT_VERSION, &enc.into_bytes())
    }

    /// Opens and decodes a frame written by [`ShardCheckpoint::to_frame`].
    pub fn from_frame(frame: &[u8]) -> Result<Self, CkptError> {
        let body = open(frame, CKPT_MAGIC, CKPT_VERSION)?;
        let mut dec = Dec::new(body);
        let shard = dec.usize()?;
        let seq = dec.u64()?;
        let policy = ThresholdPolicy::decode_state(&mut dec)?;
        let cache = dec.bytes()?.to_vec();
        let driver = dec.bytes()?.to_vec();
        let restarts = dec.u32()?;
        let budget_marks = dec.seq(|d| d.u64())?;
        dec.finish()?;
        Ok(Self { shard, seq, policy, cache, driver, restarts, budget_marks })
    }
}

/// Double-buffered checkpoint mailbox for one shard, with optional on-disk
/// spill. Shared between the shard's worker (writer) and its supervisor
/// (reader, on respawn).
#[derive(Debug)]
pub struct CheckpointSlot {
    shard: usize,
    bufs: [Mutex<Option<Vec<u8>>>; 2],
    active: AtomicUsize,
    dir: Option<PathBuf>,
}

impl CheckpointSlot {
    /// An empty slot for `shard`. When `dir` is given, every store also
    /// spills the frame to `dir/shard-{shard}.ckpt` via temp-file +
    /// atomic rename; spill failures are ignored (the in-memory pair is
    /// the primary copy).
    pub fn new(shard: usize, dir: Option<PathBuf>) -> Self {
        Self { shard, bufs: [Mutex::new(None), Mutex::new(None)], active: AtomicUsize::new(0), dir }
    }

    /// The on-disk spill path, if spilling is configured.
    pub fn disk_path(&self) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("shard-{}.ckpt", self.shard)))
    }

    /// Publishes a new frame: fills the inactive buffer, then flips it
    /// active. The previously active frame survives as the second restore
    /// candidate, so a store torn by a crash never destroys the last good
    /// checkpoint.
    pub fn store(&self, frame: Vec<u8>) {
        let inactive = 1 - self.active.load(Ordering::Acquire);
        if let Some(path) = self.disk_path() {
            // Best-effort spill *before* the flip: write the whole frame to
            // a temp file, then rename into place so readers only ever see
            // complete frames (the "atomic rename" half of the contract).
            let tmp = path.with_extension("ckpt.tmp");
            if std::fs::write(&tmp, &frame).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        *self.bufs[inactive].lock().expect("checkpoint buffer poisoned") = Some(frame);
        self.active.store(inactive, Ordering::Release);
    }

    /// Restore candidates, best-first: the active in-memory frame, the
    /// previous in-memory frame, then the on-disk spill. The restorer
    /// validates each in turn and goes cold if all fail.
    pub fn candidates(&self) -> Vec<Vec<u8>> {
        let a = self.active.load(Ordering::Acquire);
        let mut out = Vec::new();
        for idx in [a, 1 - a] {
            if let Some(f) = self.bufs[idx].lock().expect("checkpoint buffer poisoned").as_ref() {
                out.push(f.clone());
            }
        }
        if let Some(path) = self.disk_path() {
            if let Ok(f) = std::fs::read(&path) {
                out.push(f);
            }
        }
        out
    }

    /// True once at least one frame has been stored (in memory).
    pub fn has_checkpoint(&self) -> bool {
        self.bufs.iter().any(|b| b.lock().expect("checkpoint buffer poisoned").is_some())
    }

    /// Removes the shard's on-disk spill file (and any temp leftover). The
    /// warm-boot path calls this only *after* a restore attempt has
    /// resolved detected-cold, so a valid spill is never destroyed before
    /// it had its chance to serve a boot.
    pub fn clear_disk(&self) {
        if let Some(path) = self.disk_path() {
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(path.with_extension("ckpt.tmp"));
        }
    }

    /// Deterministic fault injection: damages **every** candidate — both
    /// in-memory frames and the disk spill — so a subsequent restore
    /// provably falls back cold. `torn` truncates each frame to half its
    /// length (a torn write); otherwise a single mid-frame bit is flipped
    /// (bit rot). Both damage classes must be caught by the CRC/length
    /// checks in [`ShardCheckpoint::from_frame`].
    pub fn corrupt(&self, torn: bool) {
        let damage = |frame: &mut Vec<u8>| {
            if torn {
                frame.truncate(frame.len() / 2);
            } else if !frame.is_empty() {
                let mid = frame.len() / 2;
                frame[mid] ^= 0x10;
            }
        };
        for b in &self.bufs {
            if let Some(f) = b.lock().expect("checkpoint buffer poisoned").as_mut() {
                damage(f);
            }
        }
        if let Some(path) = self.disk_path() {
            if let Ok(mut f) = std::fs::read(&path) {
                damage(&mut f);
                let _ = std::fs::write(&path, &f);
            }
        }
    }
}

/// Removes stale spill files for shards `0..shards` under `dir`, so a fleet
/// reusing a checkpoint directory never restores a previous run's state.
pub fn clear_spill_dir(dir: &Path, shards: usize) {
    for s in 0..shards {
        let _ = std::fs::remove_file(dir.join(format!("shard-{s}.ckpt")));
        let _ = std::fs::remove_file(dir.join(format!("shard-{s}.ckpt.tmp")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(shard: usize, seq: u64) -> ShardCheckpoint {
        ShardCheckpoint {
            shard,
            seq,
            policy: ThresholdPolicy::new(3, 64 * 1024),
            cache: vec![1, 2, 3, 4, 5],
            driver: vec![9, 8, 7],
            restarts: 2,
            budget_marks: vec![7_500, 11_900],
        }
    }

    #[test]
    fn frame_roundtrips() {
        let c = sample(2, 12_000);
        let frame = c.to_frame();
        assert_eq!(ShardCheckpoint::from_frame(&frame).unwrap(), c);
        // Deterministic: same checkpoint, same bytes.
        assert_eq!(c.to_frame(), frame);
    }

    #[test]
    fn empty_payloads_roundtrip() {
        let c = ShardCheckpoint {
            shard: 0,
            seq: 0,
            policy: ThresholdPolicy::new(1, 1),
            cache: Vec::new(),
            driver: Vec::new(),
            restarts: 0,
            budget_marks: Vec::new(),
        };
        assert_eq!(ShardCheckpoint::from_frame(&c.to_frame()).unwrap(), c);
    }

    #[test]
    fn wrong_version_is_rejected_specifically() {
        let c = sample(0, 5);
        let mut enc = Enc::new();
        enc.usize(c.shard);
        enc.u64(c.seq);
        c.policy.encode_state(&mut enc);
        enc.bytes(&c.cache);
        enc.bytes(&c.driver);
        enc.u32(c.restarts);
        enc.seq(&c.budget_marks, |e, &m| e.u64(m));
        let body = enc.into_bytes();
        for found in [CKPT_VERSION + 1, CKPT_VERSION - 1] {
            let frame = seal(CKPT_MAGIC, found, &body);
            assert_eq!(
                ShardCheckpoint::from_frame(&frame),
                Err(CkptError::BadVersion { expected: CKPT_VERSION, found }),
                "v{found} frame must be rejected — v1 frames lack budget state"
            );
        }
    }

    #[test]
    fn slot_store_flips_and_keeps_previous() {
        let slot = CheckpointSlot::new(0, None);
        assert!(!slot.has_checkpoint());
        assert!(slot.candidates().is_empty());
        let f1 = sample(0, 100).to_frame();
        let f2 = sample(0, 200).to_frame();
        slot.store(f1.clone());
        assert_eq!(slot.candidates(), vec![f1.clone()]);
        slot.store(f2.clone());
        // Newest first, previous frame retained as fallback.
        assert_eq!(slot.candidates(), vec![f2, f1]);
    }

    #[test]
    fn corrupt_torn_and_bitflip_defeat_every_candidate() {
        for &torn in &[true, false] {
            let slot = CheckpointSlot::new(1, None);
            slot.store(sample(1, 100).to_frame());
            slot.store(sample(1, 200).to_frame());
            slot.corrupt(torn);
            let cands = slot.candidates();
            assert_eq!(cands.len(), 2);
            for c in &cands {
                assert!(
                    ShardCheckpoint::from_frame(c).is_err(),
                    "corrupt(torn={torn}) candidate decoded successfully"
                );
            }
        }
    }

    #[test]
    fn disk_spill_atomic_rename_and_restore() {
        let dir = std::env::temp_dir().join(format!("darwin-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        clear_spill_dir(&dir, 4);

        let slot = CheckpointSlot::new(3, Some(dir.clone()));
        let frame = sample(3, 4_000).to_frame();
        slot.store(frame.clone());

        let path = slot.disk_path().unwrap();
        assert!(path.exists(), "spill file missing");
        assert!(!path.with_extension("ckpt.tmp").exists(), "temp file left behind");
        assert_eq!(std::fs::read(&path).unwrap(), frame);

        // A *fresh* slot over the same dir (a restarted process) sees the
        // spilled frame as its only candidate.
        let reborn = CheckpointSlot::new(3, Some(dir.clone()));
        assert_eq!(reborn.candidates(), vec![frame.clone()]);
        assert_eq!(ShardCheckpoint::from_frame(&reborn.candidates()[0]).unwrap(), sample(3, 4_000));

        // Corruption reaches the disk copy too.
        slot.corrupt(false);
        assert!(ShardCheckpoint::from_frame(&std::fs::read(&path).unwrap()).is_err());

        clear_spill_dir(&dir, 4);
        let _ = std::fs::remove_dir(&dir);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_ckpt(
        shard: usize,
        seq: u64,
        freq: u32,
        size: u64,
        cache: Vec<u8>,
        driver: Vec<u8>,
    ) -> ShardCheckpoint {
        ShardCheckpoint {
            shard,
            seq,
            policy: ThresholdPolicy::new(freq, size),
            cache,
            driver,
            restarts: (seq % 7) as u32,
            budget_marks: vec![seq / 4, seq / 2, seq],
        }
    }

    proptest! {
        /// Arbitrary checkpoints roundtrip bit-exactly through the frame.
        #[test]
        fn any_checkpoint_roundtrips(
            shard in 0usize..64,
            seq in 0u64..u64::MAX / 2,
            freq in 0u32..1_000,
            size in 0u64..1 << 40,
            cache in proptest::collection::vec(0u8..=255, 0..256),
            driver in proptest::collection::vec(0u8..=255, 0..256),
        ) {
            let c = arb_ckpt(shard, seq, freq, size, cache, driver);
            let frame = c.to_frame();
            prop_assert_eq!(ShardCheckpoint::from_frame(&frame).unwrap(), c.clone());
            prop_assert_eq!(c.to_frame(), frame);
        }

        /// Every truncation of a frame errors — never panics, never
        /// silently mis-restores.
        #[test]
        fn any_truncation_rejected(
            cache in proptest::collection::vec(0u8..=255, 0..64),
            driver in proptest::collection::vec(0u8..=255, 0..64),
            cut in 0.0f64..1.0,
        ) {
            let frame = arb_ckpt(1, 99, 2, 4096, cache, driver).to_frame();
            let keep = ((cut * frame.len() as f64) as usize).min(frame.len() - 1);
            prop_assert!(ShardCheckpoint::from_frame(&frame[..keep]).is_err());
        }

        /// Every single-bit flip anywhere in a frame is caught by the CRC.
        #[test]
        fn any_bit_flip_rejected(
            cache in proptest::collection::vec(0u8..=255, 0..64),
            driver in proptest::collection::vec(0u8..=255, 0..64),
            pos in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let frame = arb_ckpt(2, 7, 1, 100 * 1024, cache, driver).to_frame();
            let mut bad = frame.clone();
            let byte = ((pos * bad.len() as f64) as usize).min(bad.len() - 1);
            bad[byte] ^= 1 << bit;
            prop_assert!(ShardCheckpoint::from_frame(&bad).is_err());
        }

        /// Arbitrary junk bytes never panic the frame opener.
        #[test]
        fn junk_never_panics(junk in proptest::collection::vec(0u8..=255, 0..192)) {
            let _ = ShardCheckpoint::from_frame(&junk);
        }
    }
}
