//! Deterministic fault injection for chaos testing the fleet.
//!
//! A [`FaultPlan`] is a script of [`FaultEvent`]s, each keyed off a **per-shard
//! request sequence number** — the index, starting at 0, of a request within
//! the subsequence of the submitted stream that routes to its shard. Because
//! the router is a pure function of `(id, shards)`, that index is a property
//! of the trace alone: the same trace under the same plan produces the same
//! faults at the same requests, run after run, with no wall clock anywhere.
//!
//! Five fault kinds are scripted:
//!
//! * [`FaultKind::Panic`] — the shard worker panics immediately before
//!   processing the request at the event's index. The request itself is
//!   answered `Dropped`; everything before it was served by the dying
//!   incarnation, everything after it by the respawned one (or answered
//!   `Unavailable` once the restart budget is spent). The fleet's submitter
//!   synchronizes on scripted panics — it joins the doomed worker right after
//!   submitting the fatal request — so the processed / dropped / restarted
//!   boundaries are **bit-for-bit reproducible**, unlike an organic panic
//!   whose in-flight set depends on thread timing.
//! * [`FaultKind::Delay`] — the worker spins `spins` iterations before
//!   processing the request: a deterministic stand-in for a slow disk or a
//!   controller stall. Under [`Backpressure::Block`](crate::Backpressure) it
//!   only stretches wall clock; under `DropNewest` it forces real shedding.
//! * [`FaultKind::QueueFull`] — the worker stalls before the request until
//!   its input queue is completely full (or the producer hung up), then
//!   resumes: a scripted backpressure episode that exercises the exact
//!   queue-full machinery overload would.
//! * [`FaultKind::CorruptCheckpoint`] — every stored warm-restart
//!   checkpoint candidate for the shard is damaged (torn-truncated or
//!   bit-flipped) before the request. Harmless by itself; followed by a
//!   `Panic` it forces — and proves — the detected-corruption cold-restart
//!   fallback.
//! * [`FaultKind::CorruptStandby`] — the shard's hot standby (when the
//!   fleet runs with `replicas > 0`) is poisoned before the request: its
//!   applied frame is discarded and the loss is journaled at the next
//!   replication feed. Followed by a budget-exhausting `Panic` it proves
//!   the standby-loss fallback — the shard is buried exactly as an
//!   unreplicated one would be, never silently mis-promoted.
//!
//! Plans can be written by hand ([`FaultPlan::new`] / [`FaultPlan::push`]) or
//! generated from a seed ([`FaultPlan::random`]) — both are plain data
//! (serde-serializable) so a failing chaos run can be replayed from its
//! logged plan. The empty plan is the identity: a fleet built through
//! [`ShardedFleet::with_fault_plan`](crate::ShardedFleet::with_fault_plan)
//! with `FaultPlan::default()` is bitwise identical to one built without a
//! plan (`tests/chaos.rs` enforces this against the sequential replay).

use serde::{Deserialize, Serialize};

/// What happens when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The shard worker panics before processing the request at the event's
    /// index (the request is answered `Dropped`; the supervisor respawns or
    /// buries the shard).
    Panic,
    /// The worker spins this many iterations before processing the request.
    Delay {
        /// Busy-loop iterations (`std::hint::spin_loop`), bounding the stall
        /// without any wall-clock dependency.
        spins: u32,
    },
    /// The worker stalls before the request until its queue is full or the
    /// producer side has hung up, manufacturing a backpressure episode.
    QueueFull,
    /// Damages every stored checkpoint candidate for the shard — both
    /// in-memory buffers and the on-disk spill — immediately before the
    /// request at the event's index. `torn` truncates the frames (a torn
    /// write); otherwise a mid-frame bit is flipped (bit rot). On its own
    /// the fault is result-invisible; paired with a later `Panic` it proves
    /// the restore path detects the damage and falls back cold.
    CorruptCheckpoint {
        /// Truncate the frames instead of flipping a bit.
        torn: bool,
    },
    /// Poisons the shard's hot standby (no-op without one): the standby's
    /// applied frame is discarded and the next replication feed detects and
    /// journals the loss, then re-seeds a fresh standby. Paired with a
    /// budget-exhausting `Panic` before the re-seed lands, it proves a lost
    /// standby falls back to burial — detected and journaled, never a
    /// silent promotion of stale state.
    CorruptStandby,
}

/// One scripted fault: `kind` fires on shard `shard` immediately before the
/// request with per-shard sequence number `at` is processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Shard the fault fires on.
    pub shard: usize,
    /// Per-shard request sequence number (0-based submission index within the
    /// shard's substream) the fault is keyed to.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic chaos script: a set of [`FaultEvent`]s, held sorted by
/// `(shard, at)`. The default plan is empty (no faults).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan over the given events (sorted internally; at most one `Panic`
    /// per `(shard, at)` is kept — a worker can only die once per request).
    pub fn new(events: Vec<FaultEvent>) -> Self {
        let mut plan = Self { events };
        plan.normalize();
        plan
    }

    /// Adds one event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.normalize();
    }

    /// True when the plan scripts no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, sorted by `(shard, at)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted `Panic` events.
    pub fn panics(&self) -> usize {
        self.events.iter().filter(|e| e.kind == FaultKind::Panic).count()
    }

    fn normalize(&mut self) {
        self.events.sort_by_key(|e| (e.shard, e.at, fault_rank(e.kind)));
        // Duplicate panics at one (shard, at) collapse to a single death.
        self.events.dedup_by(|a, b| a.shard == b.shard && a.at == b.at && a.kind == b.kind);
    }

    /// A seeded random plan: `n_events` faults spread over `shards` shards
    /// with per-shard indices below `horizon`. Same seed ⇒ same plan — the
    /// generator is a self-contained SplitMix64, so chaos sweeps need no
    /// external RNG.
    pub fn random(seed: u64, shards: usize, horizon: u64, n_events: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(horizon > 0, "horizon must be positive");
        let mut state = seed;
        let mut next = move || -> u64 {
            // SplitMix64 (same constants as the fleet's HashRouter).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let shard = (next() % shards as u64) as usize;
            let at = next() % horizon;
            let kind = match next() % 4 {
                // Panics weighted at 50%: they are what supervision is for.
                0 | 1 => FaultKind::Panic,
                2 => FaultKind::Delay { spins: (next() % 8_192) as u32 },
                _ => FaultKind::QueueFull,
            };
            events.push(FaultEvent { shard, at, kind });
        }
        Self::new(events)
    }

    /// The per-shard panic indices, sorted ascending — the submitter-side
    /// half of the scripted-panic synchronization.
    pub(crate) fn panic_indices(&self, shards: usize) -> Vec<Vec<u64>> {
        let mut out = vec![Vec::new(); shards];
        for e in &self.events {
            if e.kind == FaultKind::Panic && e.shard < shards {
                out[e.shard].push(e.at);
            }
        }
        // `events` is sorted by (shard, at); each per-shard list is too, but
        // dedup defensively against hand-built plans.
        for v in &mut out {
            v.dedup();
        }
        out
    }
}

/// Sort rank so that at one `(shard, at)` a delay/queue-full fault fires
/// before a panic (the panic ends the incarnation).
fn fault_rank(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::Delay { .. } => 0,
        FaultKind::QueueFull => 1,
        FaultKind::CorruptCheckpoint { .. } => 2,
        FaultKind::CorruptStandby => 3,
        FaultKind::Panic => 4,
    }
}

/// The worker-side view of a plan: the events of one shard, at indices at or
/// beyond the incarnation's first request, consumed in order as the worker
/// counts its requests.
#[derive(Debug, Default)]
pub(crate) struct ShardFaultCursor {
    events: Vec<(u64, FaultKind)>,
    next: usize,
}

impl ShardFaultCursor {
    /// Cursor over `shard`'s events with per-shard index ≥ `from` (the first
    /// index this incarnation will see).
    pub(crate) fn for_shard(plan: &FaultPlan, shard: usize, from: u64) -> Self {
        let events = plan
            .events
            .iter()
            .filter(|e| e.shard == shard && e.at >= from)
            .map(|e| (e.at, e.kind))
            .collect();
        Self { events, next: 0 }
    }

    /// Pops the next fault scheduled at per-shard index `idx`, if any.
    /// Callers loop until `None`: several non-panic faults may share an index.
    pub(crate) fn take(&mut self, idx: u64) -> Option<FaultKind> {
        // Skip events the incarnation raced past (defensive; `from` filtering
        // makes this a no-op in practice).
        while self.events.get(self.next).is_some_and(|&(at, _)| at < idx) {
            self.next += 1;
        }
        match self.events.get(self.next) {
            Some(&(at, kind)) if at == idx => {
                self.next += 1;
                Some(kind)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_and_dedup_panics() {
        let plan = FaultPlan::new(vec![
            FaultEvent { shard: 1, at: 50, kind: FaultKind::Panic },
            FaultEvent { shard: 0, at: 10, kind: FaultKind::Panic },
            FaultEvent { shard: 1, at: 50, kind: FaultKind::Panic },
            FaultEvent { shard: 1, at: 50, kind: FaultKind::Delay { spins: 5 } },
        ]);
        assert_eq!(plan.events().len(), 3, "duplicate panic collapsed");
        assert_eq!(plan.panics(), 2);
        // Delay sorts before the panic at the shared index.
        assert_eq!(plan.events()[1].kind, FaultKind::Delay { spins: 5 });
        assert_eq!(plan.events()[2].kind, FaultKind::Panic);
        assert_eq!(plan.panic_indices(2), vec![vec![10], vec![50]]);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(7, 4, 10_000, 12);
        let b = FaultPlan::random(7, 4, 10_000, 12);
        let c = FaultPlan::random(8, 4, 10_000, 12);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert!(a.events().iter().all(|e| e.shard < 4 && e.at < 10_000));
    }

    #[test]
    fn cursor_yields_events_in_index_order() {
        let plan = FaultPlan::new(vec![
            FaultEvent { shard: 0, at: 3, kind: FaultKind::Delay { spins: 1 } },
            FaultEvent { shard: 0, at: 3, kind: FaultKind::QueueFull },
            FaultEvent { shard: 0, at: 9, kind: FaultKind::Panic },
            FaultEvent { shard: 1, at: 4, kind: FaultKind::Panic },
        ]);
        let mut cur = ShardFaultCursor::for_shard(&plan, 0, 0);
        assert_eq!(cur.take(0), None);
        assert_eq!(cur.take(3), Some(FaultKind::Delay { spins: 1 }));
        assert_eq!(cur.take(3), Some(FaultKind::QueueFull));
        assert_eq!(cur.take(3), None);
        assert_eq!(cur.take(9), Some(FaultKind::Panic));

        // A respawned incarnation starting at index 5 skips earlier events.
        let mut cur = ShardFaultCursor::for_shard(&plan, 0, 5);
        assert_eq!(cur.take(9), Some(FaultKind::Panic));

        let mut other = ShardFaultCursor::for_shard(&plan, 1, 0);
        assert_eq!(other.take(4), Some(FaultKind::Panic));
    }

    #[test]
    fn plan_serde_roundtrips() {
        let plan = FaultPlan::random(42, 3, 1_000, 6);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
