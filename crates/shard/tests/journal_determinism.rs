//! The journal determinism contract, enforced end to end: two runs with the
//! same trace seed and the same [`FaultPlan`] produce **byte-identical**
//! fleet event frames ([`darwin_obs::encode_fleet_events`]) — every event,
//! every payload, every sequence stamp. Latency histograms are wall-clock
//! and deliberately outside this contract; the journal carries only request
//! sequence numbers and integer/string payloads derived from the stream.
//!
//! Verified at 1, 2 and 8 shards with scripted deaths, warm restores and
//! checkpoint cuts (static drivers), and separately with per-shard Darwin
//! controllers so expert-switch, drift and switching-cost events are under
//! the gate too. `verify.sh` runs all of it.

use darwin::{DarwinModel, Expert, ExpertGrid, OfflineConfig, OfflineTrainer, OnlineConfig};
use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_nn::TrainConfig;
use darwin_obs::{encode_fleet_events, EventKind, JournalSnapshot};
use darwin_shard::{
    Backpressure, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter, RestartBudget, ShardedFleet,
};
use darwin_testbed::{DarwinDriver, StaticDriver};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::{Arc, OnceLock};

fn trace(n: usize, seed: u64) -> Trace {
    TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
}

/// A plan that guarantees real journal traffic on shard 0: a mid-run death
/// (after at least one checkpoint, so the respawn restores warm), a delay
/// and a checkpoint corruption.
fn plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent { shard: 0, at: 700, kind: FaultKind::Delay { spins: 50 } },
        FaultEvent { shard: 0, at: 900, kind: FaultKind::Panic },
        FaultEvent { shard: 0, at: 1_300, kind: FaultKind::CorruptCheckpoint { torn: true } },
        FaultEvent { shard: 0, at: 1_500, kind: FaultKind::Panic },
    ])
}

/// One seeded static-driver run: returns the sealed fleet event frame plus
/// the decoded journals for shape assertions.
fn static_run(shards: usize) -> (Vec<u8>, Vec<(u32, JournalSnapshot)>) {
    let t = trace(8_000, 42);
    let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
        FleetConfig {
            shards,
            queue_capacity: 128,
            batch: 32,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: RestartBudget { max_restarts: 2, window_requests: 100_000 },
            checkpoint_every: Some(512),
            shed_watermark: None,
            replicas: 0,
        },
        CacheConfig::small_test(),
        Box::new(HashRouter),
        |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
        plan(),
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&t);
    fleet.finish();
    let journals = handle.journals();
    (encode_fleet_events(&journals), journals)
}

fn check_static_determinism(shards: usize) {
    let (frame_a, journals) = static_run(shards);
    let (frame_b, _) = static_run(shards);
    assert_eq!(frame_a, frame_b, "{shards}-shard journals must be byte-identical across runs");

    for (shard, j) in &journals {
        assert_eq!(j.dropped, 0, "shard {shard}: the journal must not shed events");
    }
    let events: Vec<&EventKind> =
        journals.iter().flat_map(|(_, j)| j.events.iter().map(|e| &e.kind)).collect();
    let has = |pred: fn(&&&EventKind) -> bool| events.iter().any(|k| pred(&k));
    assert!(!events.is_empty(), "the scripted plan must journal something");
    assert!(has(|k| matches!(k, EventKind::WorkerDeath)), "deaths journaled");
    assert!(has(|k| matches!(k, EventKind::RestartGranted { .. })), "restart verdicts journaled");
    assert!(has(|k| matches!(k, EventKind::CheckpointCut { .. })), "checkpoint cuts journaled");
    assert!(has(|k| matches!(k, EventKind::FaultInjected { .. })), "fault injections journaled");
    assert!(
        has(|k| matches!(k, EventKind::RestoreWarm { .. })),
        "a post-checkpoint death must restore warm"
    );
}

/// One seeded replicated run under a failover-forcing plan: a budgeted
/// death, a standby loss (detected and re-seeded at the next cut), then a
/// past-budget death answered by promotion. Exercises every replication
/// event tag — `ReplicaSeeded`, `ReplicaLag`, `StandbyLost`, `Failover` —
/// under the byte-determinism gate.
fn failover_run(shards: usize) -> (Vec<u8>, Vec<(u32, JournalSnapshot)>) {
    let t = trace(24_000, 42);
    let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
        FleetConfig {
            shards,
            queue_capacity: 128,
            batch: 32,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: RestartBudget { max_restarts: 1, window_requests: 100_000 },
            checkpoint_every: Some(256),
            shed_watermark: None,
            replicas: 1,
        },
        CacheConfig::small_test(),
        Box::new(HashRouter),
        |_| StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024)),
        FaultPlan::new(vec![
            FaultEvent { shard: 0, at: 512, kind: FaultKind::Panic },
            FaultEvent { shard: 0, at: 600, kind: FaultKind::CorruptStandby },
            FaultEvent { shard: 0, at: 1_024, kind: FaultKind::Panic },
        ]),
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&t);
    fleet.finish();
    let journals = handle.journals();
    (encode_fleet_events(&journals), journals)
}

fn check_failover_determinism(shards: usize) {
    let (frame_a, journals) = failover_run(shards);
    let (frame_b, _) = failover_run(shards);
    assert_eq!(frame_a, frame_b, "{shards}-shard failover journals must be byte-identical across runs");

    for (shard, j) in &journals {
        assert_eq!(j.dropped, 0, "shard {shard}: the journal must not shed events");
    }
    let events: Vec<&EventKind> =
        journals.iter().flat_map(|(_, j)| j.events.iter().map(|e| &e.kind)).collect();
    let has = |pred: fn(&&&EventKind) -> bool| events.iter().any(|k| pred(&k));
    assert!(has(|k| matches!(k, EventKind::ReplicaSeeded { .. })), "standby seeding journaled");
    assert!(has(|k| matches!(k, EventKind::ReplicaLag { .. })), "delta feeds journal their lag");
    assert!(has(|k| matches!(k, EventKind::StandbyLost { .. })), "the scripted loss is detected");
    assert!(
        has(|k| matches!(k, EventKind::Failover { checkpoint_seq: 1_024, .. })),
        "the past-budget death promotes at the boundary cut"
    );
}

#[test]
fn failover_journal_deterministic_at_1_shard() {
    check_failover_determinism(1);
}

#[test]
fn failover_journal_deterministic_at_2_shards() {
    check_failover_determinism(2);
}

#[test]
fn failover_journal_deterministic_at_8_shards() {
    check_failover_determinism(8);
}

#[test]
fn journal_deterministic_at_1_shard() {
    check_static_determinism(1);
}

#[test]
fn journal_deterministic_at_2_shards() {
    check_static_determinism(2);
}

#[test]
fn journal_deterministic_at_8_shards() {
    check_static_determinism(8);
}

/// Small offline model for the Darwin-controller variant (same shape as the
/// equivalence suite's).
fn model() -> Arc<DarwinModel> {
    static MODEL: OnceLock<Arc<DarwinModel>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = OfflineConfig {
                grid: ExpertGrid::new(vec![
                    Expert::new(1, 20),
                    Expert::new(1, 500),
                    Expert::new(5, 20),
                    Expert::new(5, 500),
                ]),
                hoc_bytes: 2 * 1024 * 1024,
                nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
                n_clusters: 2,
                ..OfflineConfig::default()
            };
            let traces: Vec<Trace> = (0..4)
                .map(|i| {
                    TraceGenerator::new(
                        MixSpec::two_class(
                            TrafficClass::image(),
                            TrafficClass::download(),
                            i as f64 / 3.0,
                        ),
                        10 + i as u64,
                    )
                    .generate(10_000)
                })
                .collect();
            Arc::new(OfflineTrainer::new(cfg).train(&traces))
        })
        .clone()
}

fn darwin_run() -> (Vec<u8>, Vec<(u32, JournalSnapshot)>) {
    let model = model();
    let t = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        4242,
    )
    .generate(48_000);
    let online = OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 1_000,
        round_requests: 300,
        ..OnlineConfig::default()
    };
    let mut fleet = ShardedFleet::new(
        FleetConfig {
            shards: 2,
            queue_capacity: 256,
            batch: 64,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() },
        Box::new(HashRouter),
        {
            let model = Arc::clone(&model);
            move |_| DarwinDriver::new(Arc::clone(&model), online)
        },
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&t);
    fleet.finish();
    let journals = handle.journals();
    (encode_fleet_events(&journals), journals)
}

#[test]
fn darwin_journal_deterministic_at_2_shards() {
    let (frame_a, journals) = darwin_run();
    let (frame_b, _) = darwin_run();
    assert_eq!(frame_a, frame_b, "controller journals must be byte-identical across runs");

    let events: Vec<&EventKind> =
        journals.iter().flat_map(|(_, j)| j.events.iter().map(|e| &e.kind)).collect();
    assert!(
        events.iter().any(|k| matches!(k, EventKind::ExpertSwitch { .. })),
        "controllers must journal expert switches"
    );
    assert!(
        events.iter().any(|k| matches!(k, EventKind::SwitchCost { .. })),
        "every switch opens a cost window that eventually closes"
    );
}
