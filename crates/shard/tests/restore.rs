//! The warm-recovery contract, enforced end to end.
//!
//! A shard killed **exactly at a checkpoint boundary** and restored warm
//! resumes bitwise-identical — cumulative cache metrics, final HOC/DC
//! occupancy, and the full deployed-expert sequence — to an uninterrupted
//! sequential run of its partition (minus the one fatal request every
//! scripted death drops). Verified at 1, 2 and 8 shards with the full
//! per-shard Darwin controller; `verify.sh` runs all three as the
//! restore-equivalence gate.
//!
//! The cold-fallback path is pinned just as tightly: with every checkpoint
//! candidate corrupted, the restart is *detected* as cold and its result
//! equals head-run + fresh tail-run ground truth. A disk-spill test proves
//! the atomic-rename spill file parses into a restorable checkpoint after
//! the fleet exits, and the conservation-law test (satellite: FleetMetrics
//! merge + warm/cold partition of `total_restarts`) closes the ledger.

use darwin::{DarwinModel, Expert, ExpertGrid, OfflineConfig, OfflineTrainer, OnlineConfig};
use darwin_cache::{CacheConfig, CacheMetrics, CacheServer, ThresholdPolicy};
use darwin_nn::TrainConfig;
use darwin_shard::{
    partition, run_partition, Backpressure, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter,
    ShardCheckpoint, ShardedFleet,
};
use darwin_testbed::{DarwinDriver, StaticDriver};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::{Arc, OnceLock};

/// Per-shard request index the scripted panic fires at: a multiple of
/// [`CKPT_EVERY`], so the dying incarnation checkpoints at exactly this
/// sequence number right before the fatal request arrives.
const KILL_AT: u64 = 3_000;
/// Checkpoint cadence; `KILL_AT` is a boundary of it.
const CKPT_EVERY: u64 = 1_000;

/// One small offline-trained model shared by every test in this file (same
/// shape as `tests/equivalence.rs`).
fn model() -> Arc<DarwinModel> {
    static MODEL: OnceLock<Arc<DarwinModel>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = OfflineConfig {
                grid: ExpertGrid::new(vec![
                    Expert::new(1, 20),
                    Expert::new(1, 500),
                    Expert::new(5, 20),
                    Expert::new(5, 500),
                ]),
                hoc_bytes: 2 * 1024 * 1024,
                nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
                n_clusters: 2,
                ..OfflineConfig::default()
            };
            let traces: Vec<Trace> = (0..4)
                .map(|i| {
                    TraceGenerator::new(
                        MixSpec::two_class(
                            TrafficClass::image(),
                            TrafficClass::download(),
                            i as f64 / 3.0,
                        ),
                        10 + i as u64,
                    )
                    .generate(10_000)
                })
                .collect();
            Arc::new(OfflineTrainer::new(cfg).train(&traces))
        })
        .clone()
}

fn cache_cfg() -> CacheConfig {
    CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() }
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 1_000,
        round_requests: 300,
        ..OnlineConfig::default()
    }
}

fn test_trace() -> Trace {
    // Long enough that shard 0 holds well over `KILL_AT` requests even at 8
    // shards, and that the checkpoint at `KILL_AT` lands mid-Identify (live
    // Track-and-Stop posterior in the frame, not just warm-up counters).
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 4242)
        .generate(48_000)
}

fn fleet_cfg(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 256,
        batch: 64,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: Some(CKPT_EVERY),
        shed_watermark: None,
        replicas: 0,
    }
}

/// `part` minus its element at per-shard index `at` — the request a scripted
/// panic at `at` answers `Dropped`. What remains is exactly the stream the
/// dying incarnation (indices `0..at`) plus the respawned one (`at+1..`)
/// process between them.
fn minus_fatal(part: &Trace, at: u64) -> Trace {
    let mut reqs = part.requests().to_vec();
    reqs.remove(at as usize);
    Trace::from_sorted(reqs)
}

/// Keystone (a): boundary-kill warm restore is bitwise-identical to the
/// uninterrupted run, with the full Darwin controller per shard.
fn check_warm_boundary_restore(shards: usize) {
    let model = model();
    let trace = test_trace();

    let mut fleet = ShardedFleet::with_fault_plan(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        {
            let model = Arc::clone(&model);
            move |_| DarwinDriver::new(Arc::clone(&model), online_cfg())
        },
        FaultPlan::new(vec![FaultEvent { shard: 0, at: KILL_AT, kind: FaultKind::Panic }]),
    );
    fleet.submit_trace(&trace);
    let report = fleet.finish();

    // Uninterrupted ground truth per shard; shard 0's partition loses the
    // one fatal request the death dropped.
    let parts = partition(&trace, &HashRouter, shards);
    assert!(
        parts[0].len() as u64 > KILL_AT + CKPT_EVERY,
        "trace too short for a meaningful post-restore tail at {shards} shards"
    );
    let seq: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(s, part)| {
            let ground = if s == 0 { minus_fatal(part, KILL_AT) } else { part.clone() };
            run_partition(cache_cfg(), DarwinDriver::new(Arc::clone(&model), online_cfg()), &ground)
        })
        .collect();

    // The death itself, as scripted: one warm restart, one dropped request,
    // nothing unavailable.
    let s0 = &report.shards[0];
    assert_eq!(s0.restarts, 1, "exactly one supervised restart");
    assert_eq!(s0.warm_restarts, 1, "the restart resumed warm from the boundary checkpoint");
    assert_eq!(s0.dropped, 1, "only the fatal request was lost");
    assert_eq!(report.total_unavailable(), 0);
    assert_eq!(
        report.total_processed() + report.total_dropped(),
        trace.len() as u64,
        "conservation across the warm restart"
    );

    // Bitwise identity, shard by shard: metrics, occupancy, expert sequence.
    let mut switched_anywhere = false;
    for (f, s) in report.shards.into_iter().zip(seq) {
        let shard = f.shard;
        assert_eq!(f.processed, s.processed, "shard {shard}: processed");
        assert_eq!(f.cache, s.cache, "shard {shard}: cache metrics across the restart");
        assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {shard}: HOC occupancy");
        assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {shard}: DC occupancy");
        let fleet_seq =
            f.driver.expect("restored shard keeps its driver").into_controller().expert_sequence();
        let replay_seq = s.driver.into_controller().expert_sequence();
        assert_eq!(fleet_seq, replay_seq, "shard {shard}: deployed-expert sequence");
        switched_anywhere |= fleet_seq.len() > 1;
    }
    assert!(
        switched_anywhere,
        "test must exercise real controller activity: no shard ever deployed a non-initial expert"
    );
}

#[test]
fn warm_boundary_restore_bitwise_at_1_shard() {
    check_warm_boundary_restore(1);
}

#[test]
fn warm_boundary_restore_bitwise_at_2_shards() {
    check_warm_boundary_restore(2);
}

#[test]
fn warm_boundary_restore_bitwise_at_8_shards() {
    check_warm_boundary_restore(8);
}

/// Cold fallback, pinned exactly: with every checkpoint candidate corrupted
/// the restart is *detected* cold (never a panic, never a silent mis-restore)
/// and the shard's result equals head-run + fresh-tail-run ground truth.
#[test]
fn corrupted_checkpoint_falls_back_cold_bitwise() {
    let model = model();
    let trace = test_trace();
    let shards = 2;

    let mut fleet = ShardedFleet::with_fault_plan(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        {
            let model = Arc::clone(&model);
            move |_| DarwinDriver::new(Arc::clone(&model), online_cfg())
        },
        FaultPlan::new(vec![
            // Bit rot on every candidate, then death at the same index: the
            // corruption fires first (fault ordering), so the respawn finds
            // no valid frame and must fall back cold — detectably.
            FaultEvent { shard: 0, at: KILL_AT, kind: FaultKind::CorruptCheckpoint { torn: false } },
            FaultEvent { shard: 0, at: KILL_AT, kind: FaultKind::Panic },
        ]),
    );
    fleet.submit_trace(&trace);
    let report = fleet.finish();

    let s0 = &report.shards[0];
    assert_eq!(s0.restarts, 1);
    assert_eq!(s0.warm_restarts, 0, "corrupted checkpoints must not restore warm");
    assert_eq!(s0.dropped, 1);
    assert_eq!(report.total_processed() + report.total_dropped(), trace.len() as u64);

    // Ground truth: the dying incarnation ran indices 0..KILL_AT; the cold
    // respawn ran a fresh server + fresh controller over KILL_AT+1.. .
    let parts = partition(&trace, &HashRouter, shards);
    let head = run_partition(
        cache_cfg(),
        DarwinDriver::new(Arc::clone(&model), online_cfg()),
        &parts[0].slice(0, KILL_AT as usize),
    );
    let tail = run_partition(
        cache_cfg(),
        DarwinDriver::new(Arc::clone(&model), online_cfg()),
        &parts[0].slice(KILL_AT as usize + 1, parts[0].len()),
    );
    assert_eq!(s0.processed, head.processed + tail.processed);
    assert_eq!(
        s0.cache,
        CacheMetrics::merge_all([&head.cache, &tail.cache]),
        "cumulative metrics = dead incarnation + cold tail"
    );
    assert_eq!(s0.hoc_used_bytes, tail.hoc_used_bytes, "occupancy is the cold tail's");
    assert_eq!(s0.dc_used_bytes, tail.dc_used_bytes);
    let fleet_seq = report.shards[0]
        .driver
        .as_ref()
        .expect("cold-restarted shard keeps its driver")
        .controller()
        .expert_sequence();
    assert_eq!(
        fleet_seq,
        tail.driver.into_controller().expert_sequence(),
        "the cold controller's history starts over with the tail"
    );
}

/// The torn-write flavor of the same fallback: truncated frames are caught
/// just like bit-flipped ones.
#[test]
fn torn_checkpoint_falls_back_cold() {
    let trace = test_trace();
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let mut fleet = ShardedFleet::with_fault_plan(
        fleet_cfg(2),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(policy),
        FaultPlan::new(vec![
            FaultEvent { shard: 0, at: KILL_AT, kind: FaultKind::CorruptCheckpoint { torn: true } },
            FaultEvent { shard: 0, at: KILL_AT, kind: FaultKind::Panic },
        ]),
    );
    fleet.submit_trace(&trace);
    let report = fleet.finish();
    assert_eq!(report.total_restarts(), 1);
    assert_eq!(report.total_warm_restarts(), 0, "torn frames must not restore warm");
    assert_eq!(report.total_cold_restarts(), 1);
    assert_eq!(report.total_processed() + report.total_dropped(), trace.len() as u64);
}

/// The on-disk spill: after a fleet with a checkpoint directory exits, each
/// shard's `shard-{s}.ckpt` holds a CRC-valid frame that decodes and restores
/// into a live `CacheServer` — the cross-process warm-restart artifact.
#[test]
fn disk_spill_parses_and_restores_after_exit() {
    let dir = std::env::temp_dir().join(format!("darwin-restore-spill-{}", std::process::id()));
    let shards = 2;
    let trace = test_trace();
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let mut fleet = ShardedFleet::with_recovery(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(policy),
        FaultPlan::new(vec![FaultEvent { shard: 0, at: KILL_AT, kind: FaultKind::Panic }]),
        Some(dir.clone()),
    );
    fleet.submit_trace(&trace);
    let report = fleet.finish();
    assert_eq!(report.total_warm_restarts(), 1, "memory candidates still serve the in-process path");

    let parts = partition(&trace, &HashRouter, shards);
    for (s, part) in parts.iter().enumerate().take(shards) {
        let path = dir.join(format!("shard-{s}.ckpt"));
        let frame = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("spill file {} must exist: {e}", path.display()));
        let ckpt = ShardCheckpoint::from_frame(&frame).expect("spill frame is CRC-valid");
        assert_eq!(ckpt.shard, s);
        // Latest boundary the shard reached (shard 0 keeps checkpointing
        // past the kill: the warm respawn re-arms the same slot).
        let expect_seq = (part.len() as u64 / CKPT_EVERY) * CKPT_EVERY;
        assert_eq!(ckpt.seq, expect_seq, "shard {s}: spill holds the latest boundary");
        let server = CacheServer::restore_state(cache_cfg(), &ckpt.cache)
            .expect("spilled cache state restores into a live server");
        // Shard 0's post-kill checkpoints are short the one request the death
        // dropped; every other shard's request count equals the boundary.
        let expect_requests = if s == 0 { expect_seq - 1 } else { expect_seq };
        assert_eq!(server.metrics().requests, expect_requests, "shard {s}: restored request count");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: `FleetMetrics::merge` and the conservation law across warm
/// restarts; warm and cold counters always partition `total_restarts`.
#[test]
fn fleet_metrics_merge_and_conservation_across_warm_restarts() {
    let trace = test_trace();
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let shards = 4;
    let mut fleet = ShardedFleet::with_fault_plan(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(policy),
        FaultPlan::new(vec![
            // One warm restart (boundary kill on shard 0) and one cold: shard
            // 1's candidates are corrupted right before its death.
            FaultEvent { shard: 0, at: KILL_AT, kind: FaultKind::Panic },
            FaultEvent { shard: 1, at: KILL_AT, kind: FaultKind::CorruptCheckpoint { torn: false } },
            FaultEvent { shard: 1, at: KILL_AT, kind: FaultKind::Panic },
        ]),
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&trace);
    let report = fleet.finish();
    let snap = handle.snapshot();

    // Conservation, on both the report and the live snapshot.
    let submitted = trace.len() as u64;
    assert_eq!(
        report.total_processed() + report.total_dropped() + report.total_unavailable(),
        submitted
    );
    assert_eq!(snap.total_processed() + snap.total_dropped() + snap.total_unavailable(), submitted);

    // Warm + cold partitions the restart count, fleet-wide and per shard.
    assert_eq!(snap.total_restarts(), 2);
    assert_eq!(snap.total_warm_restarts(), 1);
    assert_eq!(snap.total_cold_restarts(), 1);
    assert_eq!(snap.total_warm_restarts() + snap.total_cold_restarts(), snap.total_restarts());
    for s in &snap.shards {
        assert!(s.warm_restarts + s.cold_restarts() == s.restarts, "shard {}: partition", s.shard);
    }
    // Checkpoint gauges: every shard checkpointed, and the age counts the
    // requests it processed past its latest boundary.
    for s in &snap.shards {
        let seq = s.checkpoint_seq.unwrap_or_else(|| panic!("shard {} checkpointed", s.shard));
        assert_eq!(s.checkpoint_age, s.processed.saturating_sub(seq), "shard {}: age gauge", s.shard);
    }

    // Merging per-shard-group snapshots (a split STATS view) loses nothing:
    // every total of the merged snapshot equals the sum of the parts'.
    let left = darwin_shard::FleetMetrics::from_shards(snap.shards[..2].to_vec());
    let right = darwin_shard::FleetMetrics::from_shards(snap.shards[2..].to_vec());
    let merged = left.merge(right);
    assert_eq!(merged.shards.len(), shards);
    assert_eq!(merged.total_processed(), snap.total_processed());
    assert_eq!(merged.total_dropped(), snap.total_dropped());
    assert_eq!(merged.total_unavailable(), snap.total_unavailable());
    assert_eq!(merged.total_restarts(), snap.total_restarts());
    assert_eq!(merged.total_warm_restarts(), snap.total_warm_restarts());
    assert_eq!(merged.max_checkpoint_age(), snap.max_checkpoint_age());
    assert_eq!(merged.fleet_cache(), snap.fleet_cache());
    assert_eq!(
        merged.total_processed() + merged.total_dropped() + merged.total_unavailable(),
        submitted,
        "conservation survives the merge"
    );
}
