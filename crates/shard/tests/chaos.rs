//! The chaos contract, enforced end to end: under **any** scripted
//! [`FaultPlan`] — panics, delays, queue-full stalls, at any per-shard
//! request index, against any restart budget — every submitted request is
//! answered exactly once (completed, dropped, or unavailable), the client's
//! view of those answers agrees with the fleet's own counters, and the empty
//! plan leaves the fleet bitwise identical to the sequential replay the
//! equivalence suite trusts.

use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_shard::{
    run_sequential, Backpressure, Envelope, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter,
    RestartBudget, ShardedFleet, Verdict,
};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Request, Trace, TraceGenerator, TrafficClass};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn trace(n: usize, seed: u64) -> Trace {
    TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
}

fn driver(_shard: usize) -> StaticDriver {
    StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024))
}

/// The client's independent ledger: one counter bump per envelope, from
/// whichever of the three answer paths fired.
#[derive(Default)]
struct Counts {
    completed: AtomicU64,
    dropped: AtomicU64,
    unavailable: AtomicU64,
}

struct CountingEnvelope {
    req: Request,
    counts: Arc<Counts>,
    answered: bool,
}

impl Envelope for CountingEnvelope {
    fn request(&self) -> &Request {
        &self.req
    }
    fn complete(mut self, _verdict: Verdict) {
        self.answered = true;
        self.counts.completed.fetch_add(1, Ordering::Relaxed);
    }
    fn unavailable(mut self) {
        self.answered = true;
        self.counts.unavailable.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for CountingEnvelope {
    fn drop(&mut self) {
        if !self.answered {
            self.counts.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs `trace` through a faulted fleet and checks the conservation law on
/// both sides of the envelope boundary.
fn check_conservation(shards: usize, plan: FaultPlan, budget: RestartBudget, bp: Backpressure) {
    let n = 6_000usize;
    let t = trace(n, 7);
    let counts = Arc::new(Counts::default());
    let mut fleet: ShardedFleet<StaticDriver, CountingEnvelope> = ShardedFleet::with_fault_plan(
        FleetConfig {
            shards,
            queue_capacity: 128,
            batch: 32,
            backpressure: bp,
            snapshot_every: None,
            restart_budget: budget,
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        CacheConfig::small_test(),
        Box::new(HashRouter),
        driver,
        plan,
    );
    for req in t.iter() {
        fleet.submit(CountingEnvelope { req: *req, counts: Arc::clone(&counts), answered: false });
    }
    let report = fleet.finish();

    let completed = counts.completed.load(Ordering::Relaxed);
    let dropped = counts.dropped.load(Ordering::Relaxed);
    let unavailable = counts.unavailable.load(Ordering::Relaxed);
    assert_eq!(
        completed + dropped + unavailable,
        n as u64,
        "client side: every envelope answered exactly once \
         (completed {completed}, dropped {dropped}, unavailable {unavailable})"
    );
    assert_eq!(
        report.total_processed() + report.total_dropped() + report.total_unavailable(),
        n as u64,
        "fleet side: processed + dropped + unavailable == submitted"
    );
    assert_eq!(completed, report.total_processed(), "both ledgers agree: processed");
    assert_eq!(dropped, report.total_dropped(), "both ledgers agree: dropped");
    assert_eq!(unavailable, report.total_unavailable(), "both ledgers agree: unavailable");
    assert_eq!(
        report.fleet_cache().requests,
        report.total_processed(),
        "cache metrics count exactly the processed requests"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation holds at 1, 2 and 8 shards under arbitrary seeded fault
    /// plans and arbitrary (small) restart budgets, with blocking
    /// backpressure.
    #[test]
    fn any_fault_plan_conserves_answers(seed in 0u64..1 << 48, n_events in 0usize..6) {
        let budget = RestartBudget {
            max_restarts: (seed % 3) as u32, // 0 exercises bury-on-first-death
            window_requests: 100_000,
        };
        for &shards in &[1usize, 2, 8] {
            let plan = FaultPlan::random(seed, shards, 4_000, n_events);
            check_conservation(shards, plan, budget, Backpressure::Block);
        }
    }

    /// Same law under `DropNewest`, where shedding adds a fourth way for an
    /// envelope to die — still exactly once each.
    #[test]
    fn fault_plans_conserve_answers_under_drop_newest(seed in 0u64..1 << 48, n_events in 1usize..5) {
        let plan = FaultPlan::random(seed, 2, 4_000, n_events);
        let budget = RestartBudget { max_restarts: 1, window_requests: 100_000 };
        check_conservation(2, plan, budget, Backpressure::DropNewest);
    }
}

/// Regression for the determinism contract: threading an **empty** fault
/// plan through the fleet is the identity — bitwise identical to the
/// sequential per-partition replay, exactly like a fleet built without a
/// plan, at every shard count the equivalence suite covers.
#[test]
fn empty_fault_plan_is_bitwise_identical_to_sequential_replay() {
    let t = trace(30_000, 4242);
    for &shards in &[1usize, 2, 8] {
        let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
            FleetConfig {
                shards,
                queue_capacity: 64,
                batch: 16,
                backpressure: Backpressure::Block,
                snapshot_every: None,
                restart_budget: RestartBudget::default(),
                checkpoint_every: None,
                shed_watermark: None,
                replicas: 0,
            },
            CacheConfig::small_test(),
            Box::new(HashRouter),
            driver,
            FaultPlan::default(),
        );
        fleet.submit_trace(&t);
        let report = fleet.finish();
        assert_eq!(report.total_restarts(), 0);
        assert_eq!(report.dead_shards(), 0);
        assert_eq!(report.total_unavailable(), 0);
        assert_eq!(report.total_dropped(), 0);

        let seq = run_sequential(shards, CacheConfig::small_test(), &HashRouter, driver, &t);
        for (f, s) in report.shards.iter().zip(&seq) {
            assert_eq!(f.processed, s.processed, "shard {}: processed", f.shard);
            assert_eq!(f.cache, s.cache, "shard {}: cache metrics", f.shard);
            assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {}: HOC occupancy", f.shard);
            assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {}: DC occupancy", f.shard);
        }
    }
}

/// The harness's whole point: the same plan over the same trace reproduces
/// the same run, bit for bit — per-shard cache metrics, answer counts,
/// restart counts, dead flags — under blocking backpressure.
#[test]
fn fault_runs_reproduce_bit_for_bit() {
    let run = || {
        let t = trace(9_000, 11);
        let plan = FaultPlan::random(99, 2, 3_000, 4);
        let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
            FleetConfig {
                shards: 2,
                queue_capacity: 128,
                batch: 32,
                backpressure: Backpressure::Block,
                snapshot_every: None,
                restart_budget: RestartBudget { max_restarts: 1, window_requests: 100_000 },
                checkpoint_every: None,
                shed_watermark: None,
                replicas: 0,
            },
            CacheConfig::small_test(),
            Box::new(HashRouter),
            driver,
            plan,
        );
        fleet.submit_trace(&t);
        let report = fleet.finish();
        report
            .shards
            .iter()
            .map(|s| {
                (
                    s.cache,
                    s.processed,
                    s.dropped,
                    s.unavailable,
                    s.restarts,
                    s.dead,
                    s.hoc_used_bytes,
                    s.dc_used_bytes,
                )
            })
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "identical plan + trace must reproduce identically");
    assert!(
        first.iter().any(|(_, _, dropped, ..)| *dropped > 0),
        "the plan must actually kill something for this test to mean anything"
    );
}

/// A delay or queue-full fault is observable (it stalls the worker) but must
/// never change the results — only panics do.
#[test]
fn stall_faults_are_result_invisible() {
    let t = trace(8_000, 5);
    let run = |plan: FaultPlan| {
        let mut fleet: ShardedFleet<StaticDriver> = ShardedFleet::with_fault_plan(
            FleetConfig {
                shards: 2,
                queue_capacity: 64,
                batch: 16,
                backpressure: Backpressure::Block,
                snapshot_every: None,
                restart_budget: RestartBudget::default(),
                checkpoint_every: None,
                shed_watermark: None,
                replicas: 0,
            },
            CacheConfig::small_test(),
            Box::new(HashRouter),
            driver,
            plan,
        );
        fleet.submit_trace(&t);
        fleet.finish()
    };
    let clean = run(FaultPlan::default());
    let stalled = run(FaultPlan::new(vec![
        FaultEvent { shard: 0, at: 50, kind: FaultKind::Delay { spins: 2_000 } },
        FaultEvent { shard: 1, at: 200, kind: FaultKind::QueueFull },
        FaultEvent { shard: 0, at: 1_000, kind: FaultKind::Delay { spins: 500 } },
    ]));
    assert_eq!(stalled.total_restarts(), 0);
    for (c, s) in clean.shards.iter().zip(&stalled.shards) {
        assert_eq!(c.cache, s.cache, "shard {}: stalls must not change metrics", c.shard);
        assert_eq!(c.processed, s.processed);
    }
}
