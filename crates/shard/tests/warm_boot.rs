//! Cross-process warm boot, enforced end to end.
//!
//! Regression for the startup bug where `ShardedFleet` unconditionally
//! wiped the checkpoint spill directory: a *second* fleet instance pointed
//! at the first instance's spill directory must restore every shard warm
//! and continue bitwise-identically to an uninterrupted run. The cold
//! fallback is pinned too — a truncated spill file is *detected* cold
//! (journaled `RestoreCold`, spill removed) while intact shards still boot
//! warm.

use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_shard::{
    partition, run_partition, Backpressure, EventKind, FaultPlan, FleetBoot, FleetConfig, HashRouter,
    ShardedFleet,
};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};

const CKPT_EVERY: u64 = 1_000;

fn cache_cfg() -> CacheConfig {
    CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() }
}

fn fleet_cfg(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 256,
        batch: 64,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: Some(CKPT_EVERY),
        shed_watermark: None,
        replicas: 0,
    }
}

fn test_trace() -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 77)
        .generate(24_000)
}

fn split(trace: &Trace, at: usize) -> (Trace, Trace) {
    let reqs = trace.requests();
    (Trace::from_sorted(reqs[..at].to_vec()), Trace::from_sorted(reqs[at..].to_vec()))
}

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::new(2, 100 * 1024)
}

/// Runs the first "process": a fleet over `head` that cuts a final
/// checkpoint into `dir` on shutdown. Returns its per-shard published
/// cache metrics.
fn first_instance(
    dir: &std::path::Path,
    shards: usize,
    head: &Trace,
) -> Vec<darwin_cache::CacheMetrics> {
    let p = policy();
    let mut fleet = ShardedFleet::with_recovery(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(p),
        FaultPlan::default(),
        Some(dir.to_path_buf()),
    );
    fleet.submit_trace(head);
    let report = fleet.finish_with_cut(shards);
    report.shards.iter().map(|s| s.cache).collect()
}

/// Keystone: a second fleet instance pointed at the first's spill directory
/// warm-boots every shard and its published window equals the uninterrupted
/// full run minus the first instance's window — the restore path is bitwise.
#[test]
fn second_instance_warm_boots_from_first_spill() {
    let dir = std::env::temp_dir().join(format!("darwin-warm-boot-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let shards = 4;
    let trace = test_trace();
    let (head, tail) = split(&trace, trace.len() / 2);
    let first = first_instance(&dir, shards, &head);

    let p = policy();
    let mut fleet = ShardedFleet::with_boot(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(p),
        FaultPlan::default(),
        FleetBoot::warm_from(dir.clone()),
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&tail);
    let report = fleet.finish();
    let snap = handle.snapshot();

    assert_eq!(snap.total_warm_boots(), shards as u32, "every shard restores from the spill");
    assert_eq!(snap.total_restarts(), 0, "a warm boot is not a restart");

    // Bitwise restore certificate: the second instance continued the first's
    // cache servers, so full-run cumulative metrics minus the first window
    // must equal the second window exactly, per shard.
    let parts = partition(&trace, &HashRouter, shards);
    for (s, part) in parts.iter().enumerate() {
        let p = policy();
        let full = run_partition(cache_cfg(), StaticDriver::new(p), part);
        assert_eq!(
            report.shards[s].cache,
            full.cache.diff(&first[s]),
            "shard {s}: warm-booted window diverges from the uninterrupted run"
        );
    }

    // Journal: the boot restore is recorded as a warm boot (not a handoff).
    for cell in handle.cells() {
        let events = cell.obs().journal.snapshot().events;
        assert!(
            events.iter().any(|e| matches!(e.kind, EventKind::HandoffRestore { warm_boot: true, .. })),
            "shard {}: missing HandoffRestore journal entry",
            cell.shard_index()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Cold fallback: a truncated spill file never restores and never panics —
/// the shard detects cold, journals it, and drops the bad file; intact
/// shards on the same directory still boot warm.
#[test]
fn corrupt_spill_detects_cold_per_shard() {
    let dir = std::env::temp_dir().join(format!("darwin-warm-boot-cold-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let shards = 2;
    let trace = test_trace();
    let (head, tail) = split(&trace, trace.len() / 2);
    first_instance(&dir, shards, &head);

    // Truncate shard 0's spill mid-frame: CRC can no longer validate.
    let bad = dir.join("shard-0.ckpt");
    let bytes = std::fs::read(&bad).expect("first instance spilled shard 0");
    std::fs::write(&bad, &bytes[..bytes.len() / 2]).unwrap();

    let p = policy();
    let mut fleet = ShardedFleet::with_boot(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(p),
        FaultPlan::default(),
        FleetBoot::warm_from(dir.clone()),
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&tail);
    fleet.finish();
    let snap = handle.snapshot();

    assert_eq!(snap.shards[0].warm_boots, 0, "truncated spill must not restore");
    assert_eq!(snap.shards[1].warm_boots, 1, "intact sibling still boots warm");
    // The invalid spill was dropped at boot; anything on disk now is a valid
    // frame cut by the cold restart itself (per-process sequence numbers).
    if bad.exists() {
        let frame = std::fs::read(&bad).unwrap();
        let ckpt = darwin_shard::ShardCheckpoint::from_frame(&frame)
            .expect("post-boot spill is a valid frame, not the truncated leftover");
        assert!(
            ckpt.seq <= tail.len() as u64,
            "spill seq {} must come from the fresh cold run, not the stale head run",
            ckpt.seq
        );
    }
    let events = handle.cells()[0].obs().journal.snapshot().events;
    assert!(
        events.iter().any(|e| e.kind == EventKind::RestoreCold),
        "shard 0 journals the detected-cold boot"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The pre-fix semantics stay pinned for cold constructors: `with_recovery`
/// clears stale spill files up front, so a rerun never resurrects a previous
/// run's state.
#[test]
fn cold_constructor_still_clears_stale_spills() {
    let dir = std::env::temp_dir().join(format!("darwin-warm-boot-clear-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let shards = 2;
    let trace = test_trace();
    let (head, _) = split(&trace, trace.len() / 2);
    first_instance(&dir, shards, &head);
    assert!(dir.join("shard-0.ckpt").exists());

    let p = policy();
    let fleet: ShardedFleet<_> = ShardedFleet::with_recovery(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(p),
        FaultPlan::default(),
        Some(dir.clone()),
    );
    let handle = fleet.metrics_handle();
    fleet.finish();
    assert_eq!(handle.snapshot().total_warm_boots(), 0, "cold constructor never warm-boots");
    std::fs::remove_dir_all(&dir).ok();
}
