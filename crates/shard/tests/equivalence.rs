//! The fleet determinism contract, enforced end to end: an N-shard
//! [`ShardedFleet`] over a hash-partitioned trace is **bitwise identical** —
//! per-shard cache metrics, final HOC/DC occupancy, deployed policy, and the
//! full per-shard Darwin deployed-expert sequence — to N sequential
//! single-shard runs of the same partitions (`replay::run_sequential`).
//!
//! Verified at 1, 2 and 8 shards (`verify.sh` runs all three), with the full
//! Darwin online controller per shard and, separately, with static experts
//! on a longer trace.

use darwin::{DarwinModel, Expert, ExpertGrid, OfflineConfig, OfflineTrainer, OnlineConfig};
use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_nn::TrainConfig;
use darwin_shard::{run_sequential, Backpressure, FleetConfig, HashRouter, ShardedFleet};
use darwin_testbed::{DarwinDriver, StaticDriver};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::{Arc, OnceLock};

/// One small offline-trained model, shared by every test in this file (the
/// per-shard controllers each get their own `OnlineController` around it —
/// the model itself is immutable shared state, as in the paper's deployment).
fn model() -> Arc<DarwinModel> {
    static MODEL: OnceLock<Arc<DarwinModel>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = OfflineConfig {
                grid: ExpertGrid::new(vec![
                    Expert::new(1, 20),
                    Expert::new(1, 500),
                    Expert::new(5, 20),
                    Expert::new(5, 500),
                ]),
                hoc_bytes: 2 * 1024 * 1024,
                nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
                n_clusters: 2,
                ..OfflineConfig::default()
            };
            let traces: Vec<Trace> = (0..4)
                .map(|i| {
                    TraceGenerator::new(
                        MixSpec::two_class(
                            TrafficClass::image(),
                            TrafficClass::download(),
                            i as f64 / 3.0,
                        ),
                        10 + i as u64,
                    )
                    .generate(10_000)
                })
                .collect();
            Arc::new(OfflineTrainer::new(cfg).train(&traces))
        })
        .clone()
}

fn cache_cfg() -> CacheConfig {
    CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() }
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 1_000,
        round_requests: 300,
        ..OnlineConfig::default()
    }
}

fn test_trace() -> Trace {
    // Two-class mix so per-shard sub-workloads genuinely differ; long enough
    // that even at 8 shards each controller gets past warm-up and several
    // bandit rounds.
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 4242)
        .generate(48_000)
}

/// The contract, with per-shard Darwin controllers.
fn check_darwin_equivalence(shards: usize) {
    let model = model();
    let trace = test_trace();

    // Threaded fleet over small queues (so backpressure actually engages).
    let mut fleet = ShardedFleet::new(
        FleetConfig {
            shards,
            queue_capacity: 256,
            batch: 64,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        cache_cfg(),
        Box::new(HashRouter),
        {
            let model = Arc::clone(&model);
            move |_| DarwinDriver::new(Arc::clone(&model), online_cfg())
        },
    );
    fleet.submit_trace(&trace);
    let fleet_report = fleet.finish();

    // Ground truth: N sequential single-shard runs of the partitions.
    let seq = run_sequential(
        shards,
        cache_cfg(),
        &HashRouter,
        |_| DarwinDriver::new(Arc::clone(&model), online_cfg()),
        &trace,
    );

    assert_eq!(fleet_report.shards.len(), shards);
    assert_eq!(seq.len(), shards);
    assert_eq!(fleet_report.total_dropped(), 0, "Block backpressure is lossless");
    assert_eq!(fleet_report.total_processed(), trace.len() as u64);

    let mut switched_anywhere = false;
    for (f, s) in fleet_report.shards.into_iter().zip(seq) {
        let shard = f.shard;
        assert_eq!(f.processed, s.processed, "shard {shard}: processed");
        assert_eq!(f.cache, s.cache, "shard {shard}: cache metrics");
        assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {shard}: HOC occupancy");
        assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {shard}: DC occupancy");
        let fleet_seq =
            f.driver.expect("live shard keeps its driver").into_controller().expert_sequence();
        let replay_seq = s.driver.into_controller().expert_sequence();
        assert_eq!(fleet_seq, replay_seq, "shard {shard}: deployed-expert sequence");
        switched_anywhere |= fleet_seq.len() > 1;
    }
    assert!(
        switched_anywhere,
        "test must exercise real controller activity: no shard ever deployed a non-initial expert"
    );
}

#[test]
fn darwin_fleet_equivalent_at_1_shard() {
    check_darwin_equivalence(1);
}

#[test]
fn darwin_fleet_equivalent_at_2_shards() {
    check_darwin_equivalence(2);
}

#[test]
fn darwin_fleet_equivalent_at_8_shards() {
    check_darwin_equivalence(8);
}

#[test]
fn static_fleet_equivalent_at_8_shards_long_trace() {
    // Static experts are cheap: push a longer trace through tighter queues to
    // stress ordering under sustained backpressure.
    let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 77).generate(120_000);
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let mut fleet = ShardedFleet::new(
        FleetConfig {
            shards: 8,
            queue_capacity: 32,
            batch: 16,
            backpressure: Backpressure::Block,
            snapshot_every: Some(25_000),
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        CacheConfig::small_test(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(policy),
    );
    fleet.submit_trace(&trace);
    let report = fleet.finish();
    let seq =
        run_sequential(8, CacheConfig::small_test(), &HashRouter, |_| StaticDriver::new(policy), &trace);
    for (f, s) in report.shards.iter().zip(&seq) {
        assert_eq!(f.cache, s.cache, "shard {}: cache metrics", f.shard);
        assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes);
        assert_eq!(f.dc_used_bytes, s.dc_used_bytes);
    }
    // Fleet-wide aggregate equals the merged sequential metrics too.
    let fleet_total = report.fleet_cache();
    let seq_total = darwin_cache::CacheMetrics::merge_all(seq.iter().map(|r| &r.cache));
    assert_eq!(fleet_total, seq_total);
}
