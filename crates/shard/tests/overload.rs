//! Overload-shedding conservation: with a `shed_watermark` armed, the fleet
//! ledger extends by one term — **processed + dropped + unavailable + shed
//! == submitted** — and it must hold exactly, on both sides of the envelope
//! boundary, however the queues back up.
//!
//! The runs here manufacture a flash crowd deterministically: scripted
//! `Delay` faults stall each shard worker early in its stream while a
//! producer floods frames at memcpy speed, so queue depth punches through
//! the watermark and the producer-side shed path (`Envelope::shed`) fires
//! for real. `verify.sh` runs these gates at 1, 2 and 8 shards.

use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_shard::{
    Backpressure, Envelope, EventKind, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter,
    ShardedFleet, Verdict,
};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Request, Trace, TraceGenerator, TrafficClass};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn trace(n: usize, seed: u64) -> Trace {
    TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
}

fn driver(_shard: usize) -> StaticDriver {
    StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024))
}

#[derive(Default)]
struct Counts {
    completed: AtomicU64,
    dropped: AtomicU64,
    unavailable: AtomicU64,
    shed: AtomicU64,
}

/// Counts exactly one answer per envelope; panics if a shed hint is outside
/// the 1–7 range the producer promises.
struct CountingEnvelope {
    req: Request,
    counts: Arc<Counts>,
    answered: bool,
}

impl Envelope for CountingEnvelope {
    fn request(&self) -> &Request {
        &self.req
    }

    fn complete(mut self, _v: Verdict) {
        self.answered = true;
        self.counts.completed.fetch_add(1, Ordering::Relaxed);
    }

    fn unavailable(mut self) {
        self.answered = true;
        self.counts.unavailable.fetch_add(1, Ordering::Relaxed);
    }

    fn shed(mut self, retry_after: u8) {
        assert!(
            (1..=7).contains(&retry_after),
            "shed hint must be expressible and non-zero, got {retry_after}"
        );
        self.answered = true;
        self.counts.shed.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for CountingEnvelope {
    fn drop(&mut self) {
        if !self.answered {
            self.counts.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Floods a stalled fleet through the producer path and checks the extended
/// conservation law plus the shed journal protocol.
fn check_shed_conservation(shards: usize) {
    const WATERMARK: usize = 32;
    let n = 16_000usize;
    let t = trace(n, 11);
    // Stall every worker on its first 8 requests so the producer's flood
    // outruns the drain and queue depth punches through the watermark.
    let plan = FaultPlan::new(
        (0..shards)
            .flat_map(|s| {
                (0..8).map(move |at| FaultEvent {
                    shard: s,
                    at,
                    kind: FaultKind::Delay { spins: 500_000 },
                })
            })
            .collect(),
    );
    let counts = Arc::new(Counts::default());
    let fleet: ShardedFleet<StaticDriver, CountingEnvelope> = ShardedFleet::with_fault_plan(
        FleetConfig {
            shards,
            queue_capacity: 128,
            batch: 32,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: Some(WATERMARK),
            replicas: 0,
        },
        CacheConfig::small_test(),
        Box::new(HashRouter),
        driver,
        plan,
    );
    let metrics = fleet.metrics_handle();
    let ingest = fleet.ingest();
    {
        let mut producer = ingest.producer();
        for chunk in t.requests().chunks(64) {
            producer.submit_frame(chunk.iter().map(|req| CountingEnvelope {
                req: *req,
                counts: Arc::clone(&counts),
                answered: false,
            }));
        }
    }
    let report = fleet.finish();

    let completed = counts.completed.load(Ordering::Relaxed);
    let dropped = counts.dropped.load(Ordering::Relaxed);
    let unavailable = counts.unavailable.load(Ordering::Relaxed);
    let shed = counts.shed.load(Ordering::Relaxed);
    assert!(shed > 0, "the stall must force real shedding ({shards} shards)");
    assert_eq!(
        completed + dropped + unavailable + shed,
        n as u64,
        "client side: every envelope answered exactly once (completed {completed}, \
         dropped {dropped}, unavailable {unavailable}, shed {shed})"
    );
    assert_eq!(
        report.total_processed()
            + report.total_dropped()
            + report.total_unavailable()
            + report.total_shed(),
        n as u64,
        "fleet side: processed + dropped + unavailable + shed == submitted"
    );
    assert_eq!(completed, report.total_processed(), "both ledgers agree: processed");
    assert_eq!(shed, report.total_shed(), "both ledgers agree: shed");

    // The journal brackets every shed episode: ShedStart when the watermark
    // engages, ShedStop when depth recovers — at most one episode can still
    // be open per shard at shutdown.
    let mut starts = 0usize;
    let mut stops = 0usize;
    for (shard, journal) in metrics.journals() {
        let (s, e) = journal.events.iter().fold((0usize, 0usize), |(s, e), ev| match ev.kind {
            EventKind::ShedStart { .. } => (s + 1, e),
            EventKind::ShedStop { .. } => (s, e + 1),
            _ => (s, e),
        });
        assert!(s >= e && s - e <= 1, "shard {shard}: shed episodes must nest (starts {s}, stops {e})");
        starts += s;
        stops += e;
    }
    assert!(starts > 0, "shedding must journal at least one ShedStart");
    assert!(starts >= stops, "episodes can only close after opening");
}

#[test]
fn shed_conservation_holds_at_1_shard() {
    check_shed_conservation(1);
}

#[test]
fn shed_conservation_holds_at_2_shards() {
    check_shed_conservation(2);
}

#[test]
fn shed_conservation_holds_at_8_shards() {
    check_shed_conservation(8);
}

/// Without a watermark the shed path must stay cold: the historical
/// three-term ledger and a zero shed column.
#[test]
fn no_watermark_means_no_shedding() {
    let n = 4_000usize;
    let t = trace(n, 13);
    let counts = Arc::new(Counts::default());
    let fleet: ShardedFleet<StaticDriver, CountingEnvelope> = ShardedFleet::new(
        FleetConfig {
            shards: 2,
            queue_capacity: 128,
            batch: 32,
            backpressure: Backpressure::Block,
            snapshot_every: None,
            restart_budget: Default::default(),
            checkpoint_every: None,
            shed_watermark: None,
            replicas: 0,
        },
        CacheConfig::small_test(),
        Box::new(HashRouter),
        driver,
    );
    let ingest = fleet.ingest();
    {
        let mut producer = ingest.producer();
        for chunk in t.requests().chunks(64) {
            producer.submit_frame(chunk.iter().map(|req| CountingEnvelope {
                req: *req,
                counts: Arc::clone(&counts),
                answered: false,
            }));
        }
    }
    let report = fleet.finish();
    assert_eq!(counts.shed.load(Ordering::Relaxed), 0);
    assert_eq!(report.total_shed(), 0);
    assert_eq!(report.total_processed(), n as u64, "Block backpressure stays lossless");
}
