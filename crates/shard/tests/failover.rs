//! The failover contract, enforced end to end.
//!
//! With one hot standby per shard ([`FleetConfig::replicas`] = 1) a shard
//! whose restart budget is exhausted is **promoted**, not buried: the
//! standby's last applied checkpoint frame is installed as the newest
//! restore candidate and the worker warm-restarts from it through the same
//! validated restore path every respawn uses. The result is
//! bitwise-identical — cumulative cache metrics, final HOC/DC occupancy,
//! and the full deployed-expert sequence — to an uninterrupted sequential
//! run of the partition (minus the one fatal request every scripted death
//! drops), with **zero** `Unavailable` verdicts. Verified at 1, 2 and 8
//! shards with the full per-shard Darwin controller; `verify.sh` runs all
//! three as the failover-equivalence gate.
//!
//! The fallback is pinned just as tightly: a standby lost right before the
//! budget-exhausting death is *detected* (journaled `StandbyLost`, counted
//! in the metrics) and the shard is buried exactly as an unreplicated
//! fleet would — degraded, conserved, never silent.

use darwin::{DarwinModel, Expert, ExpertGrid, OfflineConfig, OfflineTrainer, OnlineConfig};
use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_nn::TrainConfig;
use darwin_obs::EventKind;
use darwin_shard::{
    partition, run_partition, Backpressure, FaultEvent, FaultKind, FaultPlan, FleetConfig, HashRouter,
    RestartBudget, ShardedFleet,
};
use darwin_testbed::{DarwinDriver, StaticDriver};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::sync::{Arc, OnceLock};

/// Per-shard index of the first scripted death — within the restart budget,
/// so it warm-restarts. A multiple of [`CKPT_EVERY`].
const KILL1_AT: u64 = 2_000;
/// Per-shard index of the second death — past the budget, so it must
/// promote the standby. Also a checkpoint boundary: the dying incarnation
/// cuts (and feeds the standby) at exactly this sequence number right
/// before the fatal request arrives.
const KILL2_AT: u64 = 4_000;
/// Checkpoint cadence; both kill indices are boundaries of it.
const CKPT_EVERY: u64 = 1_000;

/// One small offline-trained model shared by every test in this file (same
/// shape as `tests/restore.rs`).
fn model() -> Arc<DarwinModel> {
    static MODEL: OnceLock<Arc<DarwinModel>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = OfflineConfig {
                grid: ExpertGrid::new(vec![
                    Expert::new(1, 20),
                    Expert::new(1, 500),
                    Expert::new(5, 20),
                    Expert::new(5, 500),
                ]),
                hoc_bytes: 2 * 1024 * 1024,
                nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
                n_clusters: 2,
                ..OfflineConfig::default()
            };
            let traces: Vec<Trace> = (0..4)
                .map(|i| {
                    TraceGenerator::new(
                        MixSpec::two_class(
                            TrafficClass::image(),
                            TrafficClass::download(),
                            i as f64 / 3.0,
                        ),
                        10 + i as u64,
                    )
                    .generate(10_000)
                })
                .collect();
            Arc::new(OfflineTrainer::new(cfg).train(&traces))
        })
        .clone()
}

fn cache_cfg() -> CacheConfig {
    CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() }
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 1_000,
        round_requests: 300,
        ..OnlineConfig::default()
    }
}

fn test_trace() -> Trace {
    // Long enough that shard 0 holds well over `KILL2_AT` requests even at
    // 8 shards, with a real post-promotion tail.
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 4242)
        .generate(48_000)
}

/// One standby per shard, one in-window restart allowed: the second death
/// is past budget by construction.
fn fleet_cfg(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 256,
        batch: 64,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: RestartBudget { max_restarts: 1, window_requests: 100_000 },
        checkpoint_every: Some(CKPT_EVERY),
        shed_watermark: None,
        replicas: 1,
    }
}

/// `part` minus its elements at per-shard indices `at` (each the one fatal
/// request a scripted panic answers `Dropped`).
fn minus_fatal(part: &Trace, at: &[u64]) -> Trace {
    let mut reqs = part.requests().to_vec();
    let mut sorted = at.to_vec();
    sorted.sort_unstable();
    for &i in sorted.iter().rev() {
        reqs.remove(i as usize);
    }
    Trace::from_sorted(reqs)
}

/// A budget-exhausting plan on shard 0: one within-budget death, then a
/// checkpoint corruption immediately followed by a past-budget death. The
/// corruption damages every primary-side restore candidate, so the *only*
/// frame the promoted worker can restore is the one the standby applied —
/// the promotion path is load-bearing, not decorative.
fn exhausting_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent { shard: 0, at: KILL1_AT, kind: FaultKind::Panic },
        FaultEvent { shard: 0, at: KILL2_AT, kind: FaultKind::CorruptCheckpoint { torn: false } },
        FaultEvent { shard: 0, at: KILL2_AT, kind: FaultKind::Panic },
    ])
}

/// Keystone: the promoted shard is bitwise-identical to the uninterrupted
/// sequential run, with the full Darwin controller per shard, and nothing
/// is ever answered `Unavailable`.
fn check_promoted_failover_bitwise(shards: usize) {
    let model = model();
    let trace = test_trace();

    let mut fleet = ShardedFleet::with_fault_plan(
        fleet_cfg(shards),
        cache_cfg(),
        Box::new(HashRouter),
        {
            let model = Arc::clone(&model);
            move |_| DarwinDriver::new(Arc::clone(&model), online_cfg())
        },
        exhausting_plan(),
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&trace);
    let report = fleet.finish();

    let parts = partition(&trace, &HashRouter, shards);
    assert!(
        parts[0].len() as u64 > KILL2_AT + CKPT_EVERY,
        "trace too short for a meaningful post-promotion tail at {shards} shards"
    );
    let seq: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(s, part)| {
            let ground = if s == 0 { minus_fatal(part, &[KILL1_AT, KILL2_AT]) } else { part.clone() };
            run_partition(cache_cfg(), DarwinDriver::new(Arc::clone(&model), online_cfg()), &ground)
        })
        .collect();

    // The two deaths, as scripted: one budgeted warm restart, one
    // promotion (also warm — the standby frame restores through the normal
    // path), two dropped requests, zero Unavailable, exact conservation.
    let s0 = &report.shards[0];
    assert_eq!(s0.restarts, 2, "both deaths were answered with a running worker");
    assert_eq!(s0.warm_restarts, 2, "the budgeted restart and the promotion both restored warm");
    assert_eq!(s0.failovers, 1, "exactly one past-budget death promoted the standby");
    assert_eq!(s0.dropped, 2, "only the two fatal requests were lost");
    assert_eq!(report.total_unavailable(), 0, "zero Unavailable: the budget never buried anyone");
    assert_eq!(report.total_failovers(), 1);
    assert_eq!(report.dead_shards(), 0);
    assert_eq!(
        report.total_processed() + report.total_dropped(),
        trace.len() as u64,
        "conservation across the failover"
    );
    // The replication lane kept feeding after the promotion re-seeded it:
    // the last fed cut is the partition's final boundary (live snapshot —
    // the replica gauges are metrics-handle state, not report state).
    let snap = handle.snapshot();
    let final_boundary = (parts[0].len() as u64 / CKPT_EVERY) * CKPT_EVERY;
    assert_eq!(snap.shards[0].replica_seq, Some(final_boundary), "standby tracks the latest cut");
    assert!(snap.shards[0].replica_shipped_bytes > 0, "replication shipped real bytes");
    assert_eq!(snap.shards[0].standby_lost, 0, "the standby never failed");

    // The journal tells the same story, deterministically: a Failover stamp
    // at the promoted boundary, a ReplicaSeeded for the post-promotion
    // re-seed, and never a StandbyLost.
    let journals = handle.journals();
    let shard0: Vec<&EventKind> = journals
        .iter()
        .filter(|(s, _)| *s == 0)
        .flat_map(|(_, j)| j.events.iter().map(|e| &e.kind))
        .collect();
    assert!(
        shard0.iter().any(
            |k| matches!(k, EventKind::Failover { checkpoint_seq, .. } if *checkpoint_seq == KILL2_AT)
        ),
        "failover journaled at the promoted checkpoint boundary"
    );
    assert!(
        shard0.iter().any(|k| matches!(k, EventKind::ReplicaSeeded { .. })),
        "the standby's (re-)seeding is journaled"
    );
    assert!(
        !shard0.iter().any(|k| matches!(k, EventKind::StandbyLost { .. })),
        "no standby loss in the promotion run"
    );

    // Bitwise identity, shard by shard: metrics, occupancy, expert sequence.
    let mut switched_anywhere = false;
    for (f, s) in report.shards.into_iter().zip(seq) {
        let shard = f.shard;
        assert_eq!(f.processed, s.processed, "shard {shard}: processed");
        assert_eq!(f.cache, s.cache, "shard {shard}: cache metrics across the failover");
        assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {shard}: HOC occupancy");
        assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {shard}: DC occupancy");
        let fleet_seq =
            f.driver.expect("promoted shard keeps its driver").into_controller().expert_sequence();
        let replay_seq = s.driver.into_controller().expert_sequence();
        assert_eq!(fleet_seq, replay_seq, "shard {shard}: deployed-expert sequence");
        switched_anywhere |= fleet_seq.len() > 1;
    }
    assert!(
        switched_anywhere,
        "test must exercise real controller activity: no shard ever deployed a non-initial expert"
    );
}

#[test]
fn promoted_failover_bitwise_at_1_shard() {
    check_promoted_failover_bitwise(1);
}

#[test]
fn promoted_failover_bitwise_at_2_shards() {
    check_promoted_failover_bitwise(2);
}

#[test]
fn promoted_failover_bitwise_at_8_shards() {
    check_promoted_failover_bitwise(8);
}

/// The same budget-exhausting plan *without* replicas is the degraded
/// baseline the tentpole erases: the second death buries the shard and its
/// remaining requests are answered `Unavailable`.
#[test]
fn without_replicas_the_same_plan_buries_and_degrades() {
    let trace = test_trace();
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let mut fleet = ShardedFleet::with_fault_plan(
        FleetConfig { replicas: 0, ..fleet_cfg(2) },
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(policy),
        exhausting_plan(),
    );
    fleet.submit_trace(&trace);
    let report = fleet.finish();

    let s0 = &report.shards[0];
    assert_eq!(s0.restarts, 1, "only the budgeted restart was granted");
    assert_eq!(s0.failovers, 0);
    assert!(s0.dead, "past-budget death without a standby buries the shard");
    assert_eq!(report.dead_shards(), 1);
    assert!(report.total_unavailable() > 0, "the buried shard's tail degrades");
    assert_eq!(
        report.total_processed() + report.total_dropped() + report.total_unavailable(),
        trace.len() as u64,
        "conservation still exact in degraded mode"
    );
}

/// Standby failure falls back to today's behavior — detected, journaled,
/// never silent: a standby poisoned right before the budget-exhausting
/// death leaves nothing to promote, so the shard is buried exactly as an
/// unreplicated fleet would be.
#[test]
fn lost_standby_falls_back_to_burial_detected() {
    let trace = test_trace();
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let mut fleet = ShardedFleet::with_fault_plan(
        fleet_cfg(2),
        cache_cfg(),
        Box::new(HashRouter),
        move |_| StaticDriver::new(policy),
        FaultPlan::new(vec![
            FaultEvent { shard: 0, at: KILL1_AT, kind: FaultKind::Panic },
            // The standby dies at the same index as the primary's fatal
            // request: no cut lands in between, so there is no re-seed and
            // nothing to promote.
            FaultEvent { shard: 0, at: KILL2_AT, kind: FaultKind::CorruptStandby },
            FaultEvent { shard: 0, at: KILL2_AT, kind: FaultKind::Panic },
        ]),
    );
    let handle = fleet.metrics_handle();
    fleet.submit_trace(&trace);
    let report = fleet.finish();

    let s0 = &report.shards[0];
    assert_eq!(s0.restarts, 1);
    assert_eq!(s0.failovers, 0, "a lost standby must not be promoted");
    assert!(s0.dead, "without a ready standby the past-budget death buries");
    assert!(report.total_unavailable() > 0);
    assert_eq!(
        report.total_processed() + report.total_dropped() + report.total_unavailable(),
        trace.len() as u64,
        "conservation exact through the fallback"
    );

    // Detected, never silent: the loss is journaled (either at the next
    // feed or at the failed promotion) and the denial is on the record.
    let journals = handle.journals();
    let shard0: Vec<&EventKind> = journals
        .iter()
        .filter(|(s, _)| *s == 0)
        .flat_map(|(_, j)| j.events.iter().map(|e| &e.kind))
        .collect();
    assert!(
        shard0.iter().any(|k| matches!(k, EventKind::RestartDenied { .. })),
        "the burial verdict is journaled"
    );
}
