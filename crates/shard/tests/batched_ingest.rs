//! The batched-ingest half of the determinism contract: routing whole frames
//! into per-shard runs and delivering each run with one `push_batch` — from
//! one submitter or from many concurrent [`FleetIngest`] producers — yields
//! **bitwise identical** per-shard results (cache metrics, final occupancy,
//! deployed-expert sequences) to the per-request sequential replay the
//! equivalence suite trusts.
//!
//! Multi-producer runs keep per-shard order deterministic by giving each
//! producer a disjoint shard group (every shard hears from exactly one
//! producer, so lane interleaving between producers cannot reorder any one
//! shard's stream) — the same topology a gateway reaches when connections
//! are sharded by keyspace. `verify.sh` runs the named gates below.

use darwin::{DarwinModel, Expert, ExpertGrid, OfflineConfig, OfflineTrainer, OnlineConfig};
use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_nn::TrainConfig;
use darwin_shard::{
    partition, run_sequential, Backpressure, FleetConfig, FleetReport, HashRouter, ShardedFleet,
};
use darwin_testbed::{DarwinDriver, StaticDriver};
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn trace(n: usize, seed: u64) -> Trace {
    TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
}

fn static_driver(_shard: usize) -> StaticDriver {
    StaticDriver::new(ThresholdPolicy::new(1, 100 * 1024))
}

fn fleet_cfg(shards: usize, queue: usize, batch: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: queue,
        batch,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: None,
        shed_watermark: None,
        replicas: 0,
    }
}

/// Drives `t` through a fleet with `producers` concurrent [`FleetIngest`]
/// producers, each owning a disjoint shard group (shard `s` belongs to
/// producer `s % producers`) and submitting its shards' partitions in frames
/// of `frame` requests via `submit_frame`.
fn run_multi_producer(
    cfg: FleetConfig,
    cache: CacheConfig,
    producers: usize,
    frame: usize,
    t: &Trace,
) -> FleetReport<StaticDriver> {
    let fleet: ShardedFleet<StaticDriver> =
        ShardedFleet::new(cfg, cache, Box::new(HashRouter), static_driver);
    let parts = partition(t, &HashRouter, cfg.shards);
    let ingest = fleet.ingest();
    std::thread::scope(|scope| {
        for p in 0..producers.min(cfg.shards) {
            let mut producer = ingest.producer();
            let mine: Vec<&Trace> = parts.iter().skip(p).step_by(producers.min(cfg.shards)).collect();
            scope.spawn(move || {
                for part in mine {
                    for chunk in part.requests().chunks(frame) {
                        producer.submit_frame(chunk.iter().copied());
                    }
                }
            });
        }
    });
    fleet.finish()
}

fn check_static_equivalence(seed: u64, shards: usize, queue: usize, batch: usize, frame: usize) {
    let t = trace(4_000, seed);
    let cache = CacheConfig::small_test();
    let seq = run_sequential(shards, cache.clone(), &HashRouter, static_driver, &t);

    // Single submitter, per-request staging over push_batch delivery.
    let mut single: ShardedFleet<StaticDriver> = ShardedFleet::new(
        fleet_cfg(shards, queue, batch),
        cache.clone(),
        Box::new(HashRouter),
        static_driver,
    );
    single.submit_trace(&t);
    let single = single.finish();

    // Four concurrent producers over disjoint shard groups.
    let multi = run_multi_producer(fleet_cfg(shards, queue, batch), cache, 4, frame, &t);

    for report in [&single, &multi] {
        assert_eq!(report.total_dropped(), 0, "Block backpressure is lossless");
        assert_eq!(report.total_processed(), t.len() as u64);
        for (f, s) in report.shards.iter().zip(&seq) {
            assert_eq!(f.processed, s.processed, "shard {}: processed", f.shard);
            assert_eq!(f.cache, s.cache, "shard {}: cache metrics", f.shard);
            assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {}: HOC bytes", f.shard);
            assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {}: DC bytes", f.shard);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (seed, queue, batch, frame) × {1, 2, 8} shards: batched single-
    /// submitter ingest and contended multi-producer ingest both reproduce
    /// the sequential replay bitwise.
    #[test]
    fn batched_and_multi_producer_ingest_match_replay(
        seed in 0u64..1_000,
        shard_sel in 0usize..3,
        queue_sel in 0usize..3,
        batch_sel in 0usize..3,
        frame_sel in 0usize..3,
    ) {
        let shards = [1usize, 2, 8][shard_sel];
        let queue = [16usize, 64, 256][queue_sel];
        let batch = [1usize, 7, 64][batch_sel];
        let frame = [1usize, 33, 256][frame_sel];
        check_static_equivalence(seed, shards, queue, batch, frame);
    }
}

/// A small offline-trained Darwin model shared by the expert-sequence gates
/// (smaller than the equivalence suite's: these tests add coverage for the
/// ingest path, not for controller behaviour).
fn model() -> Arc<DarwinModel> {
    static MODEL: OnceLock<Arc<DarwinModel>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = OfflineConfig {
                grid: ExpertGrid::new(vec![
                    Expert::new(1, 20),
                    Expert::new(1, 500),
                    Expert::new(5, 20),
                    Expert::new(5, 500),
                ]),
                hoc_bytes: 2 * 1024 * 1024,
                nn_train: TrainConfig { epochs: 20, ..TrainConfig::default() },
                n_clusters: 2,
                ..OfflineConfig::default()
            };
            let traces: Vec<Trace> = (0..2)
                .map(|i| {
                    TraceGenerator::new(
                        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64),
                        10 + i as u64,
                    )
                    .generate(8_000)
                })
                .collect();
            Arc::new(OfflineTrainer::new(cfg).train(&traces))
        })
        .clone()
}

fn check_darwin_frames(shards: usize) {
    let model = model();
    let cache = CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() };
    let online = OnlineConfig {
        epoch_requests: 12_000,
        warmup_requests: 500,
        round_requests: 200,
        ..OnlineConfig::default()
    };
    let t = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        991,
    )
    .generate(30_000);

    let seq = run_sequential(
        shards,
        cache.clone(),
        &HashRouter,
        |_| DarwinDriver::new(Arc::clone(&model), online),
        &t,
    );

    // One producer per shard group, frames of 128, live Darwin controllers.
    let fleet: ShardedFleet<DarwinDriver> =
        ShardedFleet::new(fleet_cfg(shards, 128, 32), cache, Box::new(HashRouter), {
            let model = Arc::clone(&model);
            move |_| DarwinDriver::new(Arc::clone(&model), online)
        });
    let parts = partition(&t, &HashRouter, shards);
    let ingest = fleet.ingest();
    std::thread::scope(|scope| {
        for (s, part) in parts.iter().enumerate() {
            let mut producer = ingest.producer();
            scope.spawn(move || {
                for chunk in part.requests().chunks(128) {
                    producer.submit_frame(chunk.iter().copied());
                }
            });
            let _ = s;
        }
    });
    let report = fleet.finish();

    let mut switched_anywhere = false;
    for (f, s) in report.shards.into_iter().zip(seq) {
        let shard = f.shard;
        assert_eq!(f.processed, s.processed, "shard {shard}: processed");
        assert_eq!(f.cache, s.cache, "shard {shard}: cache metrics");
        assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {shard}: HOC occupancy");
        assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {shard}: DC occupancy");
        let fleet_seq =
            f.driver.expect("live shard keeps its driver").into_controller().expert_sequence();
        let replay_seq = s.driver.into_controller().expert_sequence();
        assert_eq!(fleet_seq, replay_seq, "shard {shard}: deployed-expert sequence");
        switched_anywhere |= fleet_seq.len() > 1;
    }
    assert!(
        switched_anywhere,
        "test must exercise real controller activity: no shard ever deployed a non-initial expert"
    );
}

#[test]
fn darwin_expert_sequences_survive_frame_ingest_at_1_shard() {
    check_darwin_frames(1);
}

#[test]
fn darwin_expert_sequences_survive_frame_ingest_at_2_shards() {
    check_darwin_frames(2);
}

#[test]
fn darwin_expert_sequences_survive_frame_ingest_at_8_shards() {
    check_darwin_frames(8);
}
