//! End-to-end elastic resize: the 4 → 8 → 4 acceptance scenario.
//!
//! Certifies, at test scale, what `experiments rebalance` certifies at
//! benchmark scale: a live fleet resized under load answers zero
//! `Unavailable`, keeps the exactly-once conservation ledger
//! (`processed + dropped + unavailable == submitted`) across every
//! cutover, journals the full drain/handoff/cutover event sequence at
//! deterministic request-sequence boundaries, ships survivor state as
//! delta-compressed transfer envelopes, and reproduces bit-for-bit when
//! rerun from the same seed.

use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_rebalance::{ElasticFleet, RingRouter, DEFAULT_SEED, DEFAULT_VNODES};
use darwin_shard::{Backpressure, EventKind, FleetConfig, ShardPhase};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Request, Trace, TraceGenerator, TrafficClass};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const CKPT_EVERY: u64 = 500;

fn cache_cfg() -> CacheConfig {
    CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() }
}

fn fleet_cfg(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 256,
        batch: 64,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: Some(CKPT_EVERY),
        shed_watermark: None,
        replicas: 0,
    }
}

fn test_trace(len: usize) -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 99)
        .generate(len)
}

fn elastic(shards: usize, dir: Option<std::path::PathBuf>, warm: bool) -> ElasticFleet<StaticDriver> {
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    ElasticFleet::new(
        fleet_cfg(shards),
        cache_cfg(),
        RingRouter::new(DEFAULT_SEED, DEFAULT_VNODES),
        move |_| StaticDriver::new(policy),
        dir,
        warm,
    )
}

fn frames(trace: &Trace, frame_len: usize) -> Vec<Vec<Request>> {
    trace.requests().chunks(frame_len).map(|c| c.to_vec()).collect()
}

/// The acceptance scenario, single-threaded so every boundary is exact:
/// 4 shards → resize to 8 under a drained-but-live fleet → resize back
/// to 4 → finish. Every conservation, journal and transfer property the
/// issue pins is asserted here.
#[test]
fn resize_4_8_4_conserves_and_journals() {
    let dir = std::env::temp_dir().join(format!("darwin-resize-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let trace = test_trace(30_000);
    let fs = frames(&trace, 1_000);
    let fleet = elastic(4, Some(dir.clone()), false);

    for f in &fs[..10] {
        fleet.submit_frame(f.iter().cloned());
    }
    let gen0 = fleet.metrics_handle();
    let up = fleet.resize(8).expect("4 -> 8 resize");
    let gen1 = fleet.metrics_handle();

    // The drained generation journaled its drain at the cut boundary.
    for cell in gen0.cells() {
        let events = cell.obs().journal.snapshot().events;
        assert!(
            events.iter().any(|e| e.kind == EventKind::DrainStart { target_shards: 8 }),
            "gen0 shard {}: missing DrainStart",
            cell.shard_index()
        );
        let cut = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::HandoffCut { .. }))
            .expect("gen0 shard journals its final cut");
        match cut.kind {
            EventKind::HandoffCut { checkpoint_seq } => {
                assert_eq!(checkpoint_seq, cut.seq, "cut sits at its own sequence boundary")
            }
            _ => unreachable!(),
        }
        assert_eq!(cell.phase(), ShardPhase::Retired, "drained cells end Retired");
    }

    // Every survivor shipped exactly one envelope; bases existed (periodic
    // checkpoints ran), so the envelopes are delta-compressed.
    assert_eq!(up.len(), 4, "4 survivors of 4 -> 8");
    for t in &up {
        assert_eq!((t.from_generation, t.to_generation), (0, 1));
        assert!(t.seq > 0, "shard {} cut at a live boundary", t.shard);
        assert!(t.delta, "shard {}: periodic base exists, handoff ships a delta", t.shard);
        assert!(
            t.shipped_bytes < t.full_bytes,
            "shard {}: delta ({}) must undercut the full frame ({})",
            t.shard,
            t.shipped_bytes,
            t.full_bytes
        );
    }

    // The successor generation journaled the cutover and restored warm.
    let events = gen1.cells()[0].obs().journal.snapshot().events;
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::RingResize { from_shards: 4, to_shards: 8, generation: 1 }));
    assert!(events.iter().any(|e| e.kind == EventKind::Cutover { generation: 1 }));

    for f in &fs[10..20] {
        fleet.submit_frame(f.iter().cloned());
    }
    let down = fleet.resize(4).expect("8 -> 4 resize");

    // Generation 1 is fully drained now, so its journals are complete: the
    // survivors of 4 -> 8 recorded their warm handoff restores.
    for cell in &gen1.cells()[..4] {
        let events = cell.obs().journal.snapshot().events;
        assert!(
            events.iter().any(|e| matches!(e.kind, EventKind::HandoffRestore { warm_boot: false, .. })),
            "gen1 survivor {}: missing HandoffRestore",
            cell.shard_index()
        );
    }
    assert_eq!(down.len(), 4, "4 survivors of 8 -> 4");
    assert_eq!(fleet.generation(), 2);
    assert_eq!(fleet.shards(), 4);

    for f in &fs[20..] {
        fleet.submit_frame(f.iter().cloned());
    }
    let report = fleet.finish(false);

    assert_eq!(report.submitted, trace.len() as u64);
    assert!(report.conserved(), "processed + dropped + unavailable == submitted");
    assert_eq!(report.metrics.total_unavailable(), 0, "Block backpressure: zero Unavailable");
    assert_eq!(report.metrics.total_dropped(), 0);
    assert_eq!(report.metrics.total_processed(), trace.len() as u64);

    // Per-generation ledger: three generations, the right widths, and the
    // windows partition the submitted total exactly.
    let gens = &report.metrics.generations;
    assert_eq!(
        gens.iter().map(|g| (g.generation, g.shards)).collect::<Vec<_>>(),
        vec![(0, 4), (1, 8), (2, 4)]
    );
    assert_eq!(gens.iter().map(|g| g.processed).sum::<u64>(), trace.len() as u64);
    assert_eq!(gens[1].warm_boots, 4, "4 -> 8: the 4 survivors restore warm");
    assert_eq!(gens[2].warm_boots, 4, "8 -> 4: the 4 survivors restore warm");
    assert_eq!(report.transfers.len(), 8);

    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent submitters across both resizes: nothing is refused, nothing
/// is lost. The generation lock hands frames over atomically, so the
/// ledger balances even with four threads racing the cutovers.
#[test]
fn live_submitters_see_zero_unavailable_across_resizes() {
    let dir = std::env::temp_dir().join(format!("darwin-resize-live-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let trace = test_trace(24_000);
    let fleet = Arc::new(elastic(4, Some(dir.clone()), false));
    let fs = Arc::new(frames(&trace, 250));
    let next = Arc::new(AtomicUsize::new(0));

    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let fleet = Arc::clone(&fleet);
            let fs = Arc::clone(&fs);
            let next = Arc::clone(&next);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= fs.len() {
                    return;
                }
                fleet.submit_frame(fs[i].iter().cloned());
            })
        })
        .collect();

    // Resize twice while the submitters hammer the generation lock.
    fleet.resize(8).expect("4 -> 8 under load");
    std::thread::sleep(std::time::Duration::from_millis(20));
    fleet.resize(4).expect("8 -> 4 under load");

    for t in submitters {
        t.join().unwrap();
    }
    let fleet = Arc::into_inner(fleet).expect("submitters dropped their handles");
    let report = fleet.finish(false);

    assert_eq!(report.submitted, trace.len() as u64);
    assert!(report.conserved());
    assert_eq!(report.metrics.total_unavailable(), 0, "a resize never answers Unavailable");
    assert_eq!(report.metrics.total_dropped(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Determinism certificate: the same seeded trace through the same resize
/// schedule produces byte-identical transfers (same cut sequences, same
/// frame sizes, same delta framing) and an identical per-generation
/// ledger — the property that makes a rebalance auditable after the fact.
#[test]
fn seeded_resize_runs_reproduce_bitwise() {
    let run = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("darwin-resize-det-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let trace = test_trace(16_000);
        let fs = frames(&trace, 1_000);
        let fleet = elastic(4, Some(dir.clone()), false);
        for f in &fs[..8] {
            fleet.submit_frame(f.iter().cloned());
        }
        fleet.resize(8).expect("grow");
        for f in &fs[8..] {
            fleet.submit_frame(f.iter().cloned());
        }
        fleet.resize(4).expect("shrink");
        let report = fleet.finish(false);
        std::fs::remove_dir_all(&dir).ok();
        report
    };
    let a = run("a");
    let b = run("b");
    assert_eq!(a.transfers, b.transfers, "transfer envelopes are bit-reproducible");
    assert_eq!(a.metrics.generations, b.metrics.generations, "ledger is bit-reproducible");
    assert_eq!(a.submitted, b.submitted);
}

/// Cross-process warm boot at the elastic layer: a second `ElasticFleet`
/// pointed at the first one's checkpoint directory restores every shard
/// warm and the combined ledger still balances.
#[test]
fn second_elastic_process_warm_boots() {
    let dir = std::env::temp_dir().join(format!("darwin-resize-warm-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let trace = test_trace(16_000);
    let fs = frames(&trace, 1_000);

    let first = elastic(4, Some(dir.clone()), false);
    for f in &fs[..8] {
        first.submit_frame(f.iter().cloned());
    }
    let head = first.finish(true); // final cut -> spill files for the successor
    assert!(head.conserved());

    let second = elastic(4, Some(dir.clone()), true);
    for f in &fs[8..] {
        second.submit_frame(f.iter().cloned());
    }
    let tail = second.finish(false);
    assert!(tail.conserved());
    assert_eq!(tail.metrics.total_warm_boots(), 4, "every shard restores from the spill");
    assert_eq!(tail.metrics.total_restarts(), 0, "a warm boot is not a restart");
    assert_eq!(head.metrics.total_processed() + tail.metrics.total_processed(), trace.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}
