//! Property tests for the consistent-hash ring.
//!
//! The stability statements are *exact* (no tolerance): they follow from
//! the ring-subset construction, so the proptests assert them per object
//! over arbitrary seeds. The statistical bounds (load skew, remap
//! fraction) are asserted loosely over arbitrary seeds and tightly for
//! [`DEFAULT_SEED`], which was searched offline to certify the acceptance
//! bounds (`crates/rebalance/src/ring.rs` unit tests pin the tight form).

use darwin_rebalance::{theoretical_remap, RingRouter, DEFAULT_VNODES};
use darwin_shard::Router;
use proptest::prelude::*;

const SAMPLE: u64 = 20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Construction is deterministic: two routers built from the same
    /// `(seed, vnodes)` route every object identically — the cross-process
    /// half of the determinism contract.
    #[test]
    fn construction_is_deterministic(seed in 0u64..=u64::MAX, shards in 1usize..12) {
        let a = RingRouter::new(seed, DEFAULT_VNODES);
        let b = RingRouter::new(seed, DEFAULT_VNODES);
        for id in 0..2_000u64 {
            prop_assert_eq!(a.route(id, shards), b.route(id, shards));
        }
    }

    /// Growth `N → M` is exactly stable: every object either keeps its
    /// owner or moves to a brand-new shard (index ≥ N). No object ever
    /// shuffles between two surviving shards.
    #[test]
    fn growth_moves_objects_only_to_new_shards(
        seed in 0u64..=u64::MAX,
        from in 1usize..9,
        extra in 1usize..8,
    ) {
        let r = RingRouter::new(seed, DEFAULT_VNODES);
        let to = from + extra;
        for id in 0..SAMPLE {
            let before = r.route(id, from);
            let after = r.route(id, to);
            prop_assert!(
                after == before || after >= from,
                "id {id}: {from}->{to} moved {before} -> {after} (a surviving shard)"
            );
        }
    }

    /// Shrink `N → M` is the mirror: an object owned by a surviving shard
    /// keeps its owner; only retired shards' objects move.
    #[test]
    fn shrink_preserves_surviving_owners(
        seed in 0u64..=u64::MAX,
        to in 1usize..9,
        extra in 1usize..8,
    ) {
        let r = RingRouter::new(seed, DEFAULT_VNODES);
        let from = to + extra;
        for id in 0..SAMPLE {
            let before = r.route(id, from);
            if before < to {
                prop_assert_eq!(
                    r.route(id, to),
                    before,
                    "id {}: surviving shard {} lost its object in {}->{}",
                    id, before, from, to
                );
            }
        }
    }

    /// Load skew stays under 2× the mean at the fleet sizes the issue pins
    /// (1, 2, 8, 9 shards), for arbitrary seeds at 64 vnodes/shard.
    #[test]
    fn load_skew_is_bounded(seed in 0u64..=u64::MAX) {
        let r = RingRouter::new(seed, DEFAULT_VNODES);
        for shards in [1usize, 2, 8, 9] {
            let counts = r.load_histogram(shards, SAMPLE);
            let mean = SAMPLE as f64 / shards as f64;
            let max = *counts.iter().max().unwrap() as f64;
            prop_assert!(
                max <= 2.0 * mean,
                "seed {seed:#x}, {shards} shards: max load {max} vs mean {mean}"
            );
        }
    }

    /// The measured remap fraction tracks `|M−N|/max(N,M)` for every resize
    /// pair in {1,2,4,8}², within a loose 50% relative band for arbitrary
    /// seeds (the tight 10% band is certified for the searched default
    /// seed by the unit tests and `experiments rebalance`).
    #[test]
    fn remap_fraction_tracks_theory(seed in 0u64..=u64::MAX) {
        let r = RingRouter::new(seed, DEFAULT_VNODES);
        for from in [1usize, 2, 4, 8] {
            for to in [1usize, 2, 4, 8] {
                let measured = r.remap_fraction(from, to, SAMPLE);
                let theory = theoretical_remap(from, to);
                if from == to {
                    prop_assert_eq!(measured, 0.0, "resize to self must remap nothing");
                } else {
                    prop_assert!(
                        (measured - theory).abs() <= 0.5 * theory,
                        "seed {seed:#x} {from}->{to}: measured {measured:.4} theory {theory:.4}"
                    );
                }
            }
        }
    }

    /// Remapping is symmetric: the set of objects whose owner differs
    /// between the N-ring and M-ring does not depend on direction.
    #[test]
    fn remap_fraction_is_symmetric(seed in 0u64..=u64::MAX, a in 1usize..10, b in 1usize..10) {
        let r = RingRouter::new(seed, DEFAULT_VNODES);
        let ab = r.remap_fraction(a, b, SAMPLE);
        let ba = r.remap_fraction(b, a, SAMPLE);
        prop_assert_eq!(ab, ba);
    }
}
