//! Corpus and property tests for the handoff wire formats.
//!
//! The safety statement the fleet depends on: a truncated, bit-flipped,
//! junk or wrong-generation transfer/delta frame never panics the decoder
//! and never silently mis-restores — every failure is a typed error, and
//! every success reconstructs the exact original bytes.

use darwin_ckpt::{seal, CkptError};
use darwin_rebalance::{
    DeltaFrame, HandoffError, ReplicaError, ReplicaFrame, ReplicaPayload, ReplicaRole, TransferFrame,
    TransferPayload, REPLICA_MAGIC, REPLICA_VERSION, TRANSFER_MAGIC, TRANSFER_VERSION,
};
use darwin_shard::{CKPT_MAGIC, CKPT_VERSION};
use proptest::prelude::*;

/// A sealed checkpoint-shaped frame to ride inside transfer payloads.
fn ckpt_frame(body: &[u8]) -> Vec<u8> {
    seal(CKPT_MAGIC, CKPT_VERSION, body)
}

fn envelope(to_generation: u32, payload: TransferPayload) -> TransferFrame {
    TransferFrame {
        source_shard: 1,
        target_shard: 1,
        from_generation: to_generation.wrapping_sub(1),
        to_generation,
        seq: 4_000,
        payload,
    }
}

fn replica(shard: usize, generation: u32, role: ReplicaRole, payload: ReplicaPayload) -> ReplicaFrame {
    ReplicaFrame { shard, generation, role, seq: 7_000, payload }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer envelopes round-trip exactly, for both payload kinds.
    #[test]
    fn transfer_roundtrip(
        source in 0usize..64, target in 0usize..64,
        from_gen in 0u32..=u32::MAX, seq in 0u64..=u64::MAX,
        body in proptest::collection::vec(0u8..=255, 0..2048),
        base_seq in 0u64..=u64::MAX, is_delta in proptest::bool::ANY,
    ) {
        let payload = if is_delta {
            TransferPayload::Delta { base_seq, frame: body.clone() }
        } else {
            TransferPayload::Full(body.clone())
        };
        let t = TransferFrame {
            source_shard: source,
            target_shard: target,
            from_generation: from_gen,
            to_generation: from_gen.wrapping_add(1),
            seq,
            payload,
        };
        prop_assert_eq!(TransferFrame::from_frame(&t.to_frame()).unwrap(), t);
    }

    /// Truncating a transfer envelope at any point yields an error, never a
    /// panic and never a decoded frame.
    #[test]
    fn truncated_transfer_never_decodes(
        body in proptest::collection::vec(0u8..=255, 0..512),
        cut in 0usize..1 << 20,
    ) {
        let frame = envelope(3, TransferPayload::Full(ckpt_frame(&body))).to_frame();
        let cut = cut % frame.len(); // 0..len, strictly shorter
        prop_assert!(TransferFrame::from_frame(&frame[..cut]).is_err());
    }

    /// A single flipped bit anywhere in a transfer envelope is caught by
    /// the CRC (or magic/version check) — corrupted envelopes never decode.
    #[test]
    fn bit_flipped_transfer_never_decodes(
        body in proptest::collection::vec(0u8..=255, 0..512),
        pos in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let mut frame = envelope(3, TransferPayload::Full(ckpt_frame(&body))).to_frame();
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        prop_assert!(TransferFrame::from_frame(&frame).is_err());
    }

    /// Arbitrary junk never decodes as a transfer envelope and never
    /// panics the decoder.
    #[test]
    fn junk_never_decodes_as_transfer(junk in proptest::collection::vec(0u8..=255, 0..512)) {
        // Skip the astronomically unlikely junk that opens with the real
        // magic AND carries a matching CRC-64 trailer; everything else must
        // be refused.
        if junk.len() < 4 || junk[..4] != TRANSFER_MAGIC.to_le_bytes() {
            prop_assert!(TransferFrame::from_frame(&junk).is_err());
        }
    }

    /// A wrong-generation envelope is refused before any payload work —
    /// even a perfectly valid one never restores into the wrong epoch.
    #[test]
    fn wrong_generation_never_resolves(
        expect in 0u32..1 << 30,
        skew in 1u32..1 << 30,
        body in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let addressed = expect + skew; // always != expect
        let t = envelope(addressed, TransferPayload::Full(ckpt_frame(&body)));
        prop_assert_eq!(
            t.resolve(expect, None),
            Err(HandoffError::WrongGeneration { expected: expect, found: addressed })
        );
    }

    /// Delta compute→apply is the identity on arbitrary image pairs, and
    /// the sealed delta frame round-trips.
    #[test]
    fn delta_reconstructs_exactly(
        base in proptest::collection::vec(0u8..=255, 0..4096),
        target in proptest::collection::vec(0u8..=255, 0..4096),
    ) {
        let delta = DeltaFrame::compute(&base, &target);
        prop_assert_eq!(delta.apply(&base).unwrap(), target.clone());
        let reparsed = DeltaFrame::from_frame(&delta.to_frame()).unwrap();
        prop_assert_eq!(reparsed.apply(&base).unwrap(), target);
    }

    /// A structured image pair (shared blocks + churn) still reconstructs
    /// exactly and ships less than the full image once enough is shared.
    #[test]
    fn delta_on_shared_blocks_reconstructs(
        block in proptest::collection::vec(0u8..=255, 256..512),
        churn in proptest::collection::vec(0u8..=255, 0..128),
        repeat in 2usize..6,
    ) {
        let base: Vec<u8> = block.iter().cycle().take(block.len() * repeat).copied().collect();
        let mut target = base.clone();
        let mid = target.len() / 2;
        for (i, &b) in churn.iter().enumerate() {
            target[mid + i] = b;
        }
        let delta = DeltaFrame::compute(&base, &target);
        prop_assert_eq!(delta.apply(&base).unwrap(), target);
    }

    /// Applying a delta to the wrong base fails loudly — never a silent
    /// mis-restore.
    #[test]
    fn delta_refuses_wrong_base(
        base in proptest::collection::vec(0u8..=255, 1..2048),
        target in proptest::collection::vec(0u8..=255, 0..2048),
        pos in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let delta = DeltaFrame::compute(&base, &target);
        let mut wrong = base.clone();
        let at = pos % wrong.len();
        wrong[at] ^= 1 << bit;
        prop_assert_eq!(delta.apply(&wrong), Err(CkptError::BadCrc));
    }

    /// Replica envelopes round-trip exactly, for both payload kinds and
    /// both roles.
    #[test]
    fn replica_roundtrip(
        shard in 0usize..64, generation in 0u32..=u32::MAX,
        seq in 0u64..=u64::MAX, base_seq in 0u64..=u64::MAX,
        body in proptest::collection::vec(0u8..=255, 0..2048),
        is_delta in proptest::bool::ANY, standby in proptest::bool::ANY,
    ) {
        let payload = if is_delta {
            ReplicaPayload::Delta { base_seq, frame: body.clone() }
        } else {
            ReplicaPayload::Full(body.clone())
        };
        let role = if standby { ReplicaRole::Standby } else { ReplicaRole::Primary };
        let r = ReplicaFrame { shard, generation, role, seq, payload };
        prop_assert_eq!(ReplicaFrame::from_frame(&r.to_frame()).unwrap(), r);
    }

    /// Truncating a replica envelope at any point yields an error, never a
    /// panic and never a decoded frame.
    #[test]
    fn truncated_replica_never_decodes(
        body in proptest::collection::vec(0u8..=255, 0..512),
        cut in 0usize..1 << 20,
    ) {
        let frame =
            replica(2, 5, ReplicaRole::Primary, ReplicaPayload::Full(ckpt_frame(&body))).to_frame();
        let cut = cut % frame.len(); // 0..len, strictly shorter
        prop_assert!(ReplicaFrame::from_frame(&frame[..cut]).is_err());
    }

    /// A single flipped bit anywhere in a replica envelope is caught by the
    /// CRC (or magic/version check) — corrupted replication never applies.
    #[test]
    fn bit_flipped_replica_never_decodes(
        body in proptest::collection::vec(0u8..=255, 0..512),
        pos in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let mut frame =
            replica(2, 5, ReplicaRole::Primary, ReplicaPayload::Full(ckpt_frame(&body))).to_frame();
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        prop_assert!(ReplicaFrame::from_frame(&frame).is_err());
    }

    /// Arbitrary junk never decodes as a replica envelope and never panics
    /// the decoder.
    #[test]
    fn junk_never_decodes_as_replica(junk in proptest::collection::vec(0u8..=255, 0..512)) {
        if junk.len() < 4 || junk[..4] != REPLICA_MAGIC.to_le_bytes() {
            prop_assert!(ReplicaFrame::from_frame(&junk).is_err());
        }
    }

    /// A wrong-generation replica is refused before any payload work — a
    /// standby never applies a cut from another fleet epoch.
    #[test]
    fn wrong_generation_replica_never_resolves(
        expect in 0u32..1 << 30,
        skew in 1u32..1 << 30,
        body in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let addressed = expect + skew; // always != expect
        let r = replica(0, addressed, ReplicaRole::Primary, ReplicaPayload::Full(ckpt_frame(&body)));
        prop_assert_eq!(
            r.resolve(0, expect, None),
            Err(ReplicaError::WrongGeneration { expected: expect, found: addressed })
        );
    }

    /// A wrong-shard replica is refused — cross-wired replication lanes
    /// fail loudly instead of poisoning a standby.
    #[test]
    fn wrong_shard_replica_never_resolves(
        expect in 0usize..1 << 16,
        skew in 1usize..1 << 16,
        body in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let addressed = expect + skew; // always != expect
        let r = replica(addressed, 3, ReplicaRole::Primary, ReplicaPayload::Full(ckpt_frame(&body)));
        prop_assert_eq!(
            r.resolve(expect, 3, None),
            Err(ReplicaError::WrongShard { expected: expect, found: addressed })
        );
    }

    /// A standby-originated frame is never applied as replication input —
    /// only a primary may feed a standby, whatever the payload.
    #[test]
    fn standby_role_never_resolves(
        body in proptest::collection::vec(0u8..=255, 0..256),
        is_delta in proptest::bool::ANY,
    ) {
        let payload = if is_delta {
            ReplicaPayload::Delta { base_seq: 100, frame: body }
        } else {
            ReplicaPayload::Full(body)
        };
        let r = replica(1, 1, ReplicaRole::Standby, payload);
        prop_assert_eq!(
            r.resolve(1, 1, None),
            Err(ReplicaError::WrongRole { found: ReplicaRole::Standby })
        );
    }

    /// Truncating or flipping a sealed delta frame yields an error, never a
    /// panic.
    #[test]
    fn corrupted_delta_frame_never_decodes(
        base in proptest::collection::vec(0u8..=255, 64..1024),
        target in proptest::collection::vec(0u8..=255, 64..1024),
        cut in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let frame = DeltaFrame::compute(&base, &target).to_frame();
        let cut_at = cut % frame.len();
        prop_assert!(DeltaFrame::from_frame(&frame[..cut_at]).is_err());
        let mut flipped = frame.clone();
        flipped[cut_at] ^= 1 << bit;
        prop_assert!(DeltaFrame::from_frame(&flipped).is_err());
    }
}

/// Hand-built corpus: payload-tag and version corner cases the fuzz loops
/// are unlikely to synthesize.
#[test]
fn corpus_of_hostile_frames() {
    // Unknown payload opcode inside an otherwise valid sealed body.
    let mut e = darwin_ckpt::Enc::new();
    e.usize(0);
    e.usize(0);
    e.u32(1);
    e.u32(2);
    e.u64(10);
    e.u8(0x7F); // no such payload tag
    let frame = seal(TRANSFER_MAGIC, TRANSFER_VERSION, &e.into_bytes());
    assert!(matches!(TransferFrame::from_frame(&frame), Err(CkptError::Malformed(_))));

    // Right magic, wrong version.
    let frame = seal(TRANSFER_MAGIC, TRANSFER_VERSION + 1, b"");
    assert!(matches!(TransferFrame::from_frame(&frame), Err(CkptError::BadVersion { .. })));

    // A checkpoint frame is not a transfer envelope.
    let frame = ckpt_frame(b"shard image");
    assert!(matches!(TransferFrame::from_frame(&frame), Err(CkptError::BadMagic { .. })));

    // A resolved Full payload must itself be a sealed checkpoint frame.
    let t = envelope(2, TransferPayload::Full(b"garbage".to_vec()));
    assert!(matches!(t.resolve(2, None), Err(HandoffError::Frame(_))));

    // Empty input.
    assert!(TransferFrame::from_frame(&[]).is_err());
    assert!(DeltaFrame::from_frame(&[]).is_err());
}

/// Hand-built replica corpus: role/payload-tag, version and cross-format
/// corner cases the fuzz loops are unlikely to synthesize.
#[test]
fn corpus_of_hostile_replica_frames() {
    // Unknown role byte inside an otherwise valid sealed body.
    let mut e = darwin_ckpt::Enc::new();
    e.usize(0);
    e.u32(0);
    e.u8(0x7F); // no such role
    e.u64(10);
    e.u8(0x01); // full payload tag
    e.bytes(b"body");
    let frame = seal(REPLICA_MAGIC, REPLICA_VERSION, &e.into_bytes());
    assert!(matches!(ReplicaFrame::from_frame(&frame), Err(CkptError::Malformed(_))));

    // Unknown payload opcode after a valid role byte.
    let mut e = darwin_ckpt::Enc::new();
    e.usize(0);
    e.u32(0);
    e.u8(0x01); // primary
    e.u64(10);
    e.u8(0x7F); // no such payload tag
    let frame = seal(REPLICA_MAGIC, REPLICA_VERSION, &e.into_bytes());
    assert!(matches!(ReplicaFrame::from_frame(&frame), Err(CkptError::Malformed(_))));

    // Right magic, wrong version.
    let frame = seal(REPLICA_MAGIC, REPLICA_VERSION + 1, b"");
    assert!(matches!(ReplicaFrame::from_frame(&frame), Err(CkptError::BadVersion { .. })));

    // Cross-format confusion: a checkpoint or transfer frame is not a
    // replica envelope, and a replica envelope is not a transfer frame.
    let frame = ckpt_frame(b"shard image");
    assert!(matches!(ReplicaFrame::from_frame(&frame), Err(CkptError::BadMagic { .. })));
    let transfer = envelope(2, TransferPayload::Full(b"image".to_vec())).to_frame();
    assert!(matches!(ReplicaFrame::from_frame(&transfer), Err(CkptError::BadMagic { .. })));
    let rep = replica(0, 0, ReplicaRole::Primary, ReplicaPayload::Full(b"image".to_vec())).to_frame();
    assert!(matches!(TransferFrame::from_frame(&rep), Err(CkptError::BadMagic { .. })));

    // A delta with no base held at the standby is refused, not applied.
    let r = replica(
        0,
        0,
        ReplicaRole::Primary,
        ReplicaPayload::Delta { base_seq: 512, frame: DeltaFrame::compute(b"a", b"b").to_frame() },
    );
    assert_eq!(r.resolve(0, 0, None), Err(ReplicaError::MissingBase { base_seq: 512 }));

    // A delta whose embedded frame is garbage fails as a frame error even
    // with a base on hand.
    let r = replica(
        0,
        0,
        ReplicaRole::Primary,
        ReplicaPayload::Delta { base_seq: 512, frame: b"garbage".to_vec() },
    );
    assert!(matches!(r.resolve(0, 0, Some(b"base")), Err(ReplicaError::Frame(_))));

    // Empty input.
    assert!(ReplicaFrame::from_frame(&[]).is_err());
}
