//! The live-handoff state machine and transfer envelope.
//!
//! A resize drains every shard of the serving generation through the
//! one-way phase sequence `Serving → Draining → Transferring → Retired`
//! ([`HandoffTracker`] enforces the order), cuts a final
//! [`ShardCheckpoint`](darwin_shard::ShardCheckpoint) at each shard's
//! request-sequence boundary, and ships it to the successor generation
//! inside a [`TransferFrame`]:
//!
//! ## Frame format (magic `DRBT`, version 1, CRC-64 sealed)
//!
//! | field             | type    | meaning                                 |
//! |-------------------|---------|-----------------------------------------|
//! | `source_shard`    | `usize` | shard index in the source generation     |
//! | `target_shard`    | `usize` | shard index in the destination           |
//! | `from_generation` | `u32`   | router generation being drained          |
//! | `to_generation`   | `u32`   | router generation being booted           |
//! | `seq`             | `u64`   | request-sequence boundary of the cut     |
//! | payload tag       | `u8`    | `0x01` full frame \| `0x02` delta        |
//! | `Full`            | bytes   | the sealed checkpoint frame              |
//! | `Delta`           | `u64` + bytes | base boundary + sealed [`DeltaFrame`] |
//!
//! [`TransferFrame::resolve`] is the destination's gate: it refuses a frame
//! addressed to another generation (`WrongGeneration`), refuses a delta
//! without its base (`MissingBase`), and re-validates the reconstructed
//! checkpoint frame end to end — so a truncated, bit-flipped or misrouted
//! transfer can fail loudly but never silently mis-restore.

use crate::delta::DeltaFrame;
use darwin_ckpt::{open, seal, CkptError, Dec, Enc};
use darwin_shard::{ShardPhase, CKPT_MAGIC, CKPT_VERSION};

/// Magic for sealed transfer frames: `DRBT`.
pub const TRANSFER_MAGIC: u32 = 0x4452_4254;
/// Current transfer frame version.
pub const TRANSFER_VERSION: u16 = 1;

/// Payload tag: the full sealed checkpoint frame rides inside.
const PAYLOAD_FULL: u8 = 0x01;
/// Payload tag: a delta against a base the destination already holds.
const PAYLOAD_DELTA: u8 = 0x02;

/// How the checkpoint bytes travel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferPayload {
    /// The whole sealed checkpoint frame — O(cache) bytes.
    Full(Vec<u8>),
    /// A [`DeltaFrame`] against the shard's checkpoint at `base_seq`, which
    /// the destination pre-copied — O(churn) bytes.
    Delta {
        /// Request-sequence boundary of the base image the delta needs.
        base_seq: u64,
        /// The sealed delta frame.
        frame: Vec<u8>,
    },
}

/// The envelope a draining shard ships its final cut in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferFrame {
    /// Shard index in the generation being drained.
    pub source_shard: usize,
    /// Shard index in the generation being booted.
    pub target_shard: usize,
    /// Generation the cut was taken from.
    pub from_generation: u32,
    /// Generation the frame is addressed to.
    pub to_generation: u32,
    /// Request-sequence boundary of the final cut.
    pub seq: u64,
    /// The checkpoint bytes, full or delta-compressed.
    pub payload: TransferPayload,
}

/// Why a transfer failed to resolve into a restorable checkpoint frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandoffError {
    /// The frame is addressed to a different router generation; restoring
    /// it would resurrect another epoch's keyspace.
    WrongGeneration {
        /// Generation the destination is booting.
        expected: u32,
        /// Generation the frame is addressed to.
        found: u32,
    },
    /// A delta payload arrived but the destination holds no base image.
    MissingBase,
    /// The envelope or its payload failed frame validation.
    Frame(CkptError),
}

impl std::fmt::Display for HandoffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandoffError::WrongGeneration { expected, found } => {
                write!(f, "transfer addressed to generation {found}, booting {expected}")
            }
            HandoffError::MissingBase => write!(f, "delta transfer without its base image"),
            HandoffError::Frame(e) => write!(f, "transfer frame invalid: {e}"),
        }
    }
}

impl std::error::Error for HandoffError {}

impl From<CkptError> for HandoffError {
    fn from(e: CkptError) -> Self {
        HandoffError::Frame(e)
    }
}

impl TransferFrame {
    /// Serializes into a sealed, CRC-guarded envelope.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.usize(self.source_shard);
        e.usize(self.target_shard);
        e.u32(self.from_generation);
        e.u32(self.to_generation);
        e.u64(self.seq);
        match &self.payload {
            TransferPayload::Full(bytes) => {
                e.u8(PAYLOAD_FULL);
                e.bytes(bytes);
            }
            TransferPayload::Delta { base_seq, frame } => {
                e.u8(PAYLOAD_DELTA);
                e.u64(*base_seq);
                e.bytes(frame);
            }
        }
        seal(TRANSFER_MAGIC, TRANSFER_VERSION, &e.into_bytes())
    }

    /// Parses a sealed envelope. Truncated, bit-flipped or wrong-versioned
    /// envelopes surface as [`CkptError`]s.
    pub fn from_frame(frame: &[u8]) -> Result<TransferFrame, CkptError> {
        let body = open(frame, TRANSFER_MAGIC, TRANSFER_VERSION)?;
        let mut d = Dec::new(body);
        let source_shard = d.usize()?;
        let target_shard = d.usize()?;
        let from_generation = d.u32()?;
        let to_generation = d.u32()?;
        let seq = d.u64()?;
        let payload = match d.u8()? {
            PAYLOAD_FULL => TransferPayload::Full(d.bytes()?.to_vec()),
            PAYLOAD_DELTA => TransferPayload::Delta { base_seq: d.u64()?, frame: d.bytes()?.to_vec() },
            tag => return Err(CkptError::Malformed(format!("transfer payload tag {tag:#x}"))),
        };
        d.finish()?;
        Ok(TransferFrame { source_shard, target_shard, from_generation, to_generation, seq, payload })
    }

    /// Resolves the payload into a restorable sealed checkpoint frame for a
    /// destination booting `expected_generation` that pre-copied `base`
    /// (the shard's periodic checkpoint frame, when it has one). Every
    /// failure is loud; the returned bytes always re-validate as a
    /// checkpoint frame of the expected shape before they are handed out.
    pub fn resolve(
        &self,
        expected_generation: u32,
        base: Option<&[u8]>,
    ) -> Result<Vec<u8>, HandoffError> {
        if self.to_generation != expected_generation {
            return Err(HandoffError::WrongGeneration {
                expected: expected_generation,
                found: self.to_generation,
            });
        }
        let bytes = match &self.payload {
            TransferPayload::Full(bytes) => bytes.clone(),
            TransferPayload::Delta { frame, .. } => {
                let base = base.ok_or(HandoffError::MissingBase)?;
                DeltaFrame::from_frame(frame)?.apply(base)?
            }
        };
        // End-to-end re-validation: whatever the payload path, the result
        // must be a sealed checkpoint frame before anyone restores from it.
        open(&bytes, CKPT_MAGIC, CKPT_VERSION)?;
        Ok(bytes)
    }
}

/// Enforces the one-way handoff phase order for every shard of a draining
/// generation.
#[derive(Debug)]
pub struct HandoffTracker {
    phases: Vec<ShardPhase>,
}

impl HandoffTracker {
    /// All shards start `Serving`.
    pub fn new(shards: usize) -> Self {
        Self { phases: vec![ShardPhase::Serving; shards] }
    }

    /// Current phase of `shard`.
    pub fn phase(&self, shard: usize) -> ShardPhase {
        self.phases[shard]
    }

    /// Advances `shard` to `to`, refusing any transition that is not the
    /// immediate next phase — a shard can never skip `Transferring` or move
    /// backwards out of `Retired`.
    pub fn advance(&mut self, shard: usize, to: ShardPhase) -> Result<(), String> {
        let from = self.phases[shard];
        if !from.can_advance_to(to) {
            return Err(format!("shard {shard}: illegal transition {from:?} -> {to:?}"));
        }
        self.phases[shard] = to;
        Ok(())
    }

    /// True when every shard reached `phase`.
    pub fn all_at(&self, phase: ShardPhase) -> bool {
        self.phases.iter().all(|&p| p == phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(payload: TransferPayload) -> TransferFrame {
        TransferFrame {
            source_shard: 3,
            target_shard: 3,
            from_generation: 1,
            to_generation: 2,
            seq: 9_000,
            payload,
        }
    }

    #[test]
    fn envelope_round_trips() {
        for payload in [
            TransferPayload::Full(vec![1, 2, 3]),
            TransferPayload::Delta { base_seq: 8_000, frame: vec![9, 9] },
        ] {
            let t = envelope(payload);
            assert_eq!(TransferFrame::from_frame(&t.to_frame()).unwrap(), t);
        }
    }

    #[test]
    fn wrong_generation_is_refused() {
        let ckpt = darwin_ckpt::seal(CKPT_MAGIC, CKPT_VERSION, b"body");
        let t = envelope(TransferPayload::Full(ckpt));
        assert_eq!(t.resolve(7, None), Err(HandoffError::WrongGeneration { expected: 7, found: 2 }));
        assert!(t.resolve(2, None).is_ok());
    }

    #[test]
    fn delta_without_base_is_refused() {
        let t = envelope(TransferPayload::Delta { base_seq: 1, frame: vec![] });
        assert_eq!(t.resolve(2, None), Err(HandoffError::MissingBase));
    }

    #[test]
    fn resolved_bytes_must_be_a_checkpoint_frame() {
        let t = envelope(TransferPayload::Full(b"not a checkpoint".to_vec()));
        assert!(matches!(t.resolve(2, None), Err(HandoffError::Frame(_))));
    }

    #[test]
    fn tracker_enforces_one_way_order() {
        let mut tr = HandoffTracker::new(2);
        assert!(tr.advance(0, ShardPhase::Transferring).is_err(), "cannot skip draining");
        tr.advance(0, ShardPhase::Draining).unwrap();
        assert!(tr.advance(0, ShardPhase::Draining).is_err(), "no self-loops");
        tr.advance(0, ShardPhase::Transferring).unwrap();
        tr.advance(0, ShardPhase::Retired).unwrap();
        assert!(tr.advance(0, ShardPhase::Serving).is_err(), "retired is terminal");
        assert!(!tr.all_at(ShardPhase::Retired));
        tr.advance(1, ShardPhase::Draining).unwrap();
        tr.advance(1, ShardPhase::Transferring).unwrap();
        tr.advance(1, ShardPhase::Retired).unwrap();
        assert!(tr.all_at(ShardPhase::Retired));
    }
}
