//! The elastic fleet: live resizes over a generation of `ShardedFleet`s.
//!
//! An [`ElasticFleet`] owns the serving generation behind an `RwLock`:
//! submitters hold the read side (so a whole frame lands in exactly one
//! generation), a [`resize`](ElasticFleet::resize) holds the write side.
//! Because submission uses [`Backpressure::Block`](darwin_shard::Backpressure) semantics and the lock
//! hands over atomically, a resize never answers `Unavailable` and never
//! drops a request — the exactly-once conservation ledger
//! (`processed + dropped + unavailable == submitted`) holds across any
//! resize sequence, which `experiments rebalance` certifies.
//!
//! A resize `N → M` drains the serving generation through the handoff state
//! machine, cuts every shard's final [`ShardCheckpoint`] at its
//! end-of-stream request-sequence boundary, ships each *surviving* shard's
//! cut to the successor generation in a [`TransferFrame`] (delta-compressed
//! against the shard's last periodic checkpoint when one exists), and boots
//! generation `g+1` with those frames as warm seeds. Keyspace slices that
//! *move* between shards arrive cold by design: the ring bounds them to
//! `|M−N|/max(N,M)` of the keyspace, which is exactly the bounded
//! post-resize hit-ratio dip the benchmark measures.

use crate::handoff::{HandoffError, HandoffTracker, TransferFrame, TransferPayload};
use crate::ring::RingRouter;
use crate::DeltaFrame;
use darwin_cache::CacheConfig;
use darwin_shard::{
    Envelope, EventKind, FaultPlan, FleetBoot, FleetConfig, FleetMetrics, GenerationSummary,
    MetricsHandle, ShardCheckpoint, ShardPhase, ShardedFleet,
};
use darwin_testbed::AdmissionDriver;
use darwin_trace::Request;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Factory shared across generations: every resize mints the new
/// generation's drivers from the same closure.
type DriverFactory<D> = Arc<Mutex<Box<dyn FnMut(usize) -> D + Send>>>;

/// The serving generation.
struct GenLive<D: AdmissionDriver + Send + 'static, E: Envelope> {
    fleet: Option<ShardedFleet<D, E>>,
    handle: MetricsHandle,
    generation: u32,
    shards: usize,
}

/// What one shard's handoff shipped at a cutover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferStat {
    /// Shard index (same in source and destination generation).
    pub shard: usize,
    /// Generation drained.
    pub from_generation: u32,
    /// Generation booted.
    pub to_generation: u32,
    /// Request-sequence boundary of the final cut.
    pub seq: u64,
    /// Size of the full sealed checkpoint frame.
    pub full_bytes: u64,
    /// Bytes actually shipped in the transfer envelope payload.
    pub shipped_bytes: u64,
    /// True when the payload was a delta against a pre-copied base.
    pub delta: bool,
}

/// Final accounting for an elastic run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticReport {
    /// Per-shard-id metrics merged across every generation, with the
    /// per-generation ledger attached.
    pub metrics: FleetMetrics,
    /// Transfer envelopes shipped by every resize, in order.
    pub transfers: Vec<TransferStat>,
    /// Requests submitted across the fleet's whole life.
    pub submitted: u64,
}

impl ElasticReport {
    /// The exactly-once conservation ledger.
    pub fn conserved(&self) -> bool {
        self.metrics.total_processed() + self.metrics.total_dropped() + self.metrics.total_unavailable()
            == self.submitted
    }
}

/// A fleet whose shard count can change under load. See the module docs.
///
/// Generic over the queue [`Envelope`] exactly like [`ShardedFleet`]: the
/// benchmark drives it with bare [`Request`]s (the default), the gateway
/// with its reply-routing envelopes.
pub struct ElasticFleet<D: AdmissionDriver + Send + 'static, E: Envelope = Request> {
    state: RwLock<GenLive<D, E>>,
    factory: DriverFactory<D>,
    cfg: FleetConfig,
    cache: CacheConfig,
    ring: RingRouter,
    checkpoint_dir: Option<PathBuf>,
    submitted: AtomicU64,
    /// Retired generations: exact post-drain snapshots, their ledger rows,
    /// and every transfer shipped.
    archive: Mutex<Archive>,
}

#[derive(Default)]
struct Archive {
    metrics: Vec<FleetMetrics>,
    generations: Vec<GenerationSummary>,
    transfers: Vec<TransferStat>,
}

impl<D: AdmissionDriver + Send + 'static, E: Envelope> ElasticFleet<D, E> {
    /// Boots generation 0 with `cfg.shards` shards routed by `ring`. With
    /// `warm` set (and a checkpoint directory in place), each shard
    /// restores from its spill file — the cross-process warm-boot path.
    pub fn new(
        cfg: FleetConfig,
        cache: CacheConfig,
        ring: RingRouter,
        factory: impl FnMut(usize) -> D + Send + 'static,
        checkpoint_dir: Option<PathBuf>,
        warm: bool,
    ) -> Self {
        let factory: DriverFactory<D> = Arc::new(Mutex::new(Box::new(factory)));
        let fleet: ShardedFleet<D, E> = ShardedFleet::with_boot(
            cfg,
            cache.clone(),
            Box::new(ring.clone()),
            mint(&factory),
            FaultPlan::default(),
            FleetBoot {
                checkpoint_dir: checkpoint_dir.clone(),
                warm_boot: warm,
                seeds: Vec::new(),
                generation: 0,
                handoff: false,
            },
        );
        let handle = fleet.metrics_handle();
        Self {
            state: RwLock::new(GenLive {
                fleet: Some(fleet),
                handle,
                generation: 0,
                shards: cfg.shards,
            }),
            factory,
            cfg,
            cache,
            ring,
            checkpoint_dir,
            submitted: AtomicU64::new(0),
            archive: Mutex::new(Archive::default()),
        }
    }

    /// The ring router every generation routes with.
    pub fn ring(&self) -> &RingRouter {
        &self.ring
    }

    /// Current router generation.
    pub fn generation(&self) -> u32 {
        self.state.read().expect("elastic state poisoned").generation
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.state.read().expect("elastic state poisoned").shards
    }

    /// Requests submitted so far, across every generation.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Metrics handle for the *serving* generation — live cells, journals
    /// and drain phases. A resize retires the cells behind a previously
    /// returned handle (their journals stay readable); grab a fresh handle
    /// after every cutover.
    pub fn metrics_handle(&self) -> MetricsHandle {
        self.state.read().expect("elastic state poisoned").handle.clone()
    }

    /// Routes one frame of requests into the serving generation. The whole
    /// frame lands in exactly one generation: the generation lock is held
    /// (shared) for the duration, so a concurrent resize waits for the
    /// frame and the frame never splits across a cutover.
    pub fn submit_frame(&self, reqs: impl IntoIterator<Item = E>) {
        let st = self.state.read().expect("elastic state poisoned");
        let fleet = st.fleet.as_ref().expect("fleet serving");
        let reqs: Vec<E> = reqs.into_iter().collect();
        self.submitted.fetch_add(reqs.len() as u64, Ordering::Relaxed);
        let mut producer = fleet.ingest().producer();
        producer.submit_frame(reqs);
    }

    /// Live metrics: the serving generation merged with every retired one,
    /// ledger rows attached.
    pub fn metrics(&self) -> FleetMetrics {
        let st = self.state.read().expect("elastic state poisoned");
        let live = st.handle.snapshot();
        drop(st);
        self.merged(live)
    }

    /// Metrics for the serving generation only (no archive folded in).
    pub fn live_metrics(&self) -> FleetMetrics {
        self.state.read().expect("elastic state poisoned").handle.snapshot()
    }

    fn merged(&self, live: FleetMetrics) -> FleetMetrics {
        let archive = self.archive.lock().expect("archive poisoned");
        let mut merged = archive.metrics.iter().cloned().fold(live, |acc, retired| acc.merge(retired));
        let mut generations = archive.generations.clone();
        merged.generations.clear();
        merged.generations.append(&mut generations);
        merged.generations.sort_by_key(|g| g.generation);
        merged.generations.dedup_by_key(|g| g.generation);
        merged
    }

    fn summarize(generation: u32, shards: usize, snap: &FleetMetrics) -> GenerationSummary {
        GenerationSummary {
            generation,
            shards: shards as u32,
            processed: snap.total_processed(),
            dropped: snap.total_dropped(),
            unavailable: snap.total_unavailable(),
            restarts: snap.total_restarts(),
            warm_restarts: snap.total_warm_restarts(),
            warm_boots: snap.total_warm_boots(),
        }
    }

    /// Resizes the fleet to `to_shards` shards: drains the serving
    /// generation through the handoff state machine, ships every surviving
    /// shard's final cut as a [`TransferFrame`] (delta-compressed when a
    /// pre-copied base exists) and boots the next generation warm from the
    /// resolved frames. Submitters blocked on the generation lock resume
    /// against the new generation; nothing is dropped or answered
    /// `Unavailable` by the resize itself.
    pub fn resize(&self, to_shards: usize) -> Result<Vec<TransferStat>, HandoffError> {
        assert!(to_shards > 0, "fleet needs at least one shard");
        let mut st = self.state.write().expect("elastic state poisoned");
        let from_shards = st.shards;
        let from_gen = st.generation;
        let to_gen = from_gen + 1;
        let fleet = st.fleet.take().expect("fleet serving");
        let slots = fleet.checkpoint_slots();
        let old_handle = st.handle.clone();

        // The "pre-copied" bases: each shard's newest checkpoint *before*
        // the final cut — what a real destination would have replicated
        // asynchronously while the source was still serving.
        let bases: Vec<Option<Vec<u8>>> =
            slots.iter().map(|slot| slot.candidates().into_iter().next()).collect();

        let mut tracker = HandoffTracker::new(from_shards);
        // Serving → Draining happens inside finish_with_cut (the fleet
        // flips its cells); mirror it in the tracker so the order is
        // machine-checked end to end.
        for s in 0..from_shards {
            tracker.advance(s, ShardPhase::Draining).map_err(state_err)?;
        }
        let report = fleet.finish_with_cut(to_shards);
        drop(report); // drivers retire with their generation

        let survivors = from_shards.min(to_shards);
        let mut seeds: Vec<Option<Vec<u8>>> = vec![None; to_shards];
        let mut transfers = Vec::with_capacity(survivors);
        for (s, slot) in slots.iter().enumerate() {
            tracker.advance(s, ShardPhase::Transferring).map_err(state_err)?;
            old_handle.cells()[s].set_phase(ShardPhase::Transferring);
            if s < survivors {
                let final_frame = slot
                    .candidates()
                    .into_iter()
                    .next()
                    .ok_or_else(|| state_err(format!("shard {s}: no final cut to hand off")))?;
                let seq = ShardCheckpoint::from_frame(&final_frame).map(|c| c.seq).unwrap_or(0);
                let base = bases[s].as_ref().filter(|b| *b != &final_frame);
                let payload = match base {
                    Some(base_frame) => {
                        let base_seq =
                            ShardCheckpoint::from_frame(base_frame).map(|c| c.seq).unwrap_or(0);
                        let delta = DeltaFrame::compute(base_frame, &final_frame);
                        TransferPayload::Delta { base_seq, frame: delta.to_frame() }
                    }
                    None => TransferPayload::Full(final_frame.clone()),
                };
                let envelope = TransferFrame {
                    source_shard: s,
                    target_shard: s,
                    from_generation: from_gen,
                    to_generation: to_gen,
                    seq,
                    payload,
                };
                // Round-trip through wire bytes: the destination decodes,
                // generation-checks and re-validates; the resolved frame
                // must be bitwise the final cut or the handoff fails loudly.
                let wire = envelope.to_frame();
                let parsed = TransferFrame::from_frame(&wire)?;
                let resolved = parsed.resolve(to_gen, base.map(|b| b.as_slice()))?;
                if resolved != final_frame {
                    return Err(HandoffError::Frame(darwin_ckpt::CkptError::Malformed(format!(
                        "shard {s}: resolved transfer diverges from the final cut"
                    ))));
                }
                let shipped = match &parsed.payload {
                    TransferPayload::Full(bytes) => bytes.len() as u64,
                    TransferPayload::Delta { frame, .. } => frame.len() as u64,
                };
                transfers.push(TransferStat {
                    shard: s,
                    from_generation: from_gen,
                    to_generation: to_gen,
                    seq,
                    full_bytes: final_frame.len() as u64,
                    shipped_bytes: shipped,
                    delta: matches!(parsed.payload, TransferPayload::Delta { .. }),
                });
                seeds[s] = Some(resolved);
            } else {
                // Retired shard: its keyspace disperses across survivors;
                // its spill must not resurrect under a later warm boot.
                slot.clear_disk();
            }
            tracker.advance(s, ShardPhase::Retired).map_err(state_err)?;
            old_handle.cells()[s].set_phase(ShardPhase::Retired);
        }
        debug_assert!(tracker.all_at(ShardPhase::Retired));

        // Archive the drained generation (exact: the fleet is finished).
        let snap = old_handle.snapshot();
        {
            let mut archive = self.archive.lock().expect("archive poisoned");
            archive.generations.push(Self::summarize(from_gen, from_shards, &snap));
            archive.metrics.push(snap);
            archive.transfers.extend(transfers.iter().cloned());
        }

        // Boot the successor generation warm from the resolved transfers.
        let mut cfg = self.cfg;
        cfg.shards = to_shards;
        let fleet = ShardedFleet::with_boot(
            cfg,
            self.cache.clone(),
            Box::new(self.ring.clone()),
            mint(&self.factory),
            FaultPlan::default(),
            FleetBoot {
                checkpoint_dir: self.checkpoint_dir.clone(),
                warm_boot: true,
                seeds,
                generation: to_gen,
                handoff: true,
            },
        );
        let handle = fleet.metrics_handle();
        let journal = &handle.cells()[0].obs().journal;
        journal.record(
            0,
            EventKind::RingResize {
                from_shards: from_shards as u32,
                to_shards: to_shards as u32,
                generation: to_gen,
            },
        );
        journal.record(0, EventKind::Cutover { generation: to_gen });
        st.fleet = Some(fleet);
        st.handle = handle;
        st.generation = to_gen;
        st.shards = to_shards;
        Ok(transfers)
    }

    /// Drains the serving generation and closes the book, by reference —
    /// the seam for callers that hold the fleet behind an `Arc` (the
    /// gateway's shared state) and cannot move it out. With `final_cut`
    /// set, every shard cuts a final checkpoint into the spill directory
    /// first — the artifact a successor process warm-boots from. Panics on
    /// a second call: the fleet serves (and finishes) exactly once.
    pub fn finish_live(&self, final_cut: bool) -> ElasticReport {
        let mut st = self.state.write().expect("elastic state poisoned");
        let fleet = st.fleet.take().expect("fleet serving");
        let report = if final_cut { fleet.finish_with_cut(st.shards) } else { fleet.finish() };
        drop(report);
        let snap = st.handle.snapshot();
        let generation = st.generation;
        let shards = st.shards;
        drop(st);
        let transfers = {
            let mut archive = self.archive.lock().expect("archive poisoned");
            archive.generations.push(Self::summarize(generation, shards, &snap));
            archive.transfers.clone()
        };
        let metrics = self.merged(snap);
        ElasticReport { metrics, transfers, submitted: self.submitted.load(Ordering::Relaxed) }
    }

    /// Drains the serving generation and closes the book. With `final_cut`
    /// set, every shard cuts a final checkpoint into the spill directory
    /// first — the artifact a successor process warm-boots from.
    pub fn finish(self, final_cut: bool) -> ElasticReport {
        self.finish_live(final_cut)
    }
}

/// A per-generation driver factory borrowing the shared closure.
fn mint<D: AdmissionDriver + Send + 'static>(
    factory: &DriverFactory<D>,
) -> impl FnMut(usize) -> D + Send + 'static {
    let factory = Arc::clone(factory);
    move |s| (factory.lock().expect("driver factory poisoned"))(s)
}

/// Wraps a state-machine violation (a bug, not an I/O condition) into the
/// handoff error space so `resize` has one error type.
fn state_err(msg: impl Into<String>) -> HandoffError {
    HandoffError::Frame(darwin_ckpt::CkptError::Malformed(msg.into()))
}
