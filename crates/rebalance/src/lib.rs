#![warn(missing_docs)]

//! # darwin-rebalance
//!
//! Elastic fleet rebalancing for the sharded serving layer: resize a live
//! Darwin cache fleet `N → M` shards without losing a request, a counter,
//! or (for the surviving keyspace) a warm cache.
//!
//! ```text
//!  generation g (N shards)                generation g+1 (M shards)
//!  ┌──────────────────────┐   transfer    ┌──────────────────────────┐
//!  │ Serving → Draining   │   envelopes   │  warm boot from resolved │
//!  │  final cut @ seq ────┼──────────────▶│  frames (survivors) /    │
//!  │  Transferring        │  Full | Delta │  cold (moved keyspace)   │
//!  │  Retired             │               │  Serving                 │
//!  └──────────────────────┘               └──────────────────────────┘
//!            ▲                                        ▲
//!            └────────── RingRouter(seed, vnodes) ────┘
//!                 same ring family at every fleet size
//! ```
//!
//! * [`ring`] — [`RingRouter`]: consistent-hash ring with virtual nodes;
//!   resizing `N → M` remaps only `|M−N|/max(N,M)` of the keyspace, with
//!   exact per-object stability guarantees (see the module docs).
//! * [`delta`] — [`DeltaFrame`]: rsync-style block diff between two
//!   checkpoint images, so a handoff ships O(churn) not O(cache) bytes
//!   (hosted in [`darwin_ckpt`], re-exported here; the shard replication
//!   layer shares it).
//! * [`replica`] — [`ReplicaFrame`]: the role-tagged envelope primaries
//!   feed hot standbys with (also hosted in [`darwin_ckpt`]).
//! * [`handoff`] — [`TransferFrame`] (the sealed transfer envelope, full or
//!   delta payload, generation-addressed) and [`HandoffTracker`] (the
//!   one-way `Serving → Draining → Transferring → Retired` state machine).
//! * [`elastic`] — [`ElasticFleet`]: the orchestrator that drains a
//!   generation, ships the envelopes and boots the successor warm, keeping
//!   the exactly-once conservation ledger intact across any resize
//!   sequence.
//!
//! Every rebalance is byte-auditable: `DrainStart`, `HandoffCut`,
//! `HandoffRestore`, `Cutover` and `RingResize` events land in the shards'
//! journals keyed on request sequence numbers, and seeded runs reproduce
//! bit-for-bit.

pub mod elastic;
pub mod handoff;
pub mod ring;

/// The block-delta codec, re-exported from [`darwin_ckpt`] where it now
/// lives so the shard replication layer can share it (see that module's
/// docs for the history).
pub use darwin_ckpt::delta;
/// The role-tagged replica envelope, re-exported from [`darwin_ckpt`].
pub use darwin_ckpt::replica;

pub use darwin_ckpt::delta::{DeltaFrame, DELTA_MAGIC, DELTA_VERSION};
pub use darwin_ckpt::replica::{
    ReplicaError, ReplicaFrame, ReplicaPayload, ReplicaRole, REPLICA_MAGIC, REPLICA_VERSION,
};
pub use elastic::{ElasticFleet, ElasticReport, TransferStat};
pub use handoff::{
    HandoffError, HandoffTracker, TransferFrame, TransferPayload, TRANSFER_MAGIC, TRANSFER_VERSION,
};
pub use ring::{theoretical_remap, RingRouter, DEFAULT_SEED, DEFAULT_VNODES};
