//! Consistent-hash ring routing with virtual nodes.
//!
//! A [`RingRouter`] places `vnodes` points per shard on a 64-bit hash ring;
//! an object routes to the shard owning the first point clockwise of the
//! object's hash. Each shard's points depend only on `(seed, shard, vnode)`
//! — never on the total shard count — so the ring for `N` shards is a
//! strict subset of the ring for `M > N` shards. That subset structure is
//! what makes resizing cheap and *provable*:
//!
//! * **Growth `N → M`**: an object's owner either stays exactly the same or
//!   moves to one of the new shards `N..M` (its successor point either
//!   survives or is preempted by a new shard's point). Expected remap
//!   fraction ≈ `(M − N) / M`.
//! * **Shrink `N → M`**: the mirror image — every object owned by a
//!   surviving shard keeps its owner; only the retired shards' arcs move.
//!
//! Both bounds match the classic `|M − N| / max(N, M)` consistent-hashing
//! remap fraction, and both are *exact* set statements (no tolerance), so
//! the proptests in `tests/ring_props.rs` assert them per object.
//!
//! Point and key hashing use the same SplitMix64 finalizer the fleet's
//! [`HashRouter`](darwin_shard::HashRouter) scatters with; construction is
//! deterministic from `(seed, vnodes)` alone, so every process that holds
//! the router config partitions identically — the cross-process half of the
//! determinism contract.

use darwin_shard::Router;
use darwin_trace::ObjectId;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Default virtual nodes per shard. 64 keeps max/mean load skew well under
/// 2× at every fleet size the tests pin while keeping rings tiny (a
/// 16-shard ring is 1024 points = 12 KiB).
pub const DEFAULT_VNODES: usize = 64;

/// Default ring seed. Chosen (by offline search over the certification
/// sample) so the measured remap fraction for every resize pair in
/// `{1,2,4,8}²` sits within 10% of the theoretical `|M−N|/max(N,M)` and
/// load skew stays ≤ 2× mean at 1, 2, 8 and 9 shards — the acceptance
/// bounds `experiments rebalance` certifies.
pub const DEFAULT_SEED: u64 = 0xDA00_0000;

/// The 64-bit avalanche mix (SplitMix64 finalizer) shared with the fleet's
/// `HashRouter`; duplicated here because the shard crate keeps it private.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard's vnode point: a pure function of `(seed, shard, vnode)`,
/// independent of the fleet size — the subset property every stability
/// guarantee rests on.
#[inline]
fn vnode_point(seed: u64, shard: usize, vnode: usize) -> u64 {
    mix64(seed ^ mix64(((shard as u64) << 32) | vnode as u64))
}

/// A sorted `(point, shard)` ring for one shard count.
type Ring = Arc<Vec<(u64, u32)>>;

/// Consistent-hash ring router with virtual nodes. Cheap to clone: clones
/// share the per-shard-count ring cache, so a fleet and its resizer never
/// rebuild the same ring twice.
#[derive(Debug, Clone)]
pub struct RingRouter {
    seed: u64,
    vnodes: usize,
    /// Rings keyed by shard count, built on demand.
    rings: Arc<RwLock<HashMap<usize, Ring>>>,
}

impl Default for RingRouter {
    fn default() -> Self {
        Self::new(DEFAULT_SEED, DEFAULT_VNODES)
    }
}

impl RingRouter {
    /// A ring over `vnodes` points per shard, placed by `seed`.
    pub fn new(seed: u64, vnodes: usize) -> Self {
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        Self { seed, vnodes, rings: Arc::new(RwLock::new(HashMap::new())) }
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The sorted ring for `shards`, built once and cached.
    fn ring(&self, shards: usize) -> Ring {
        if let Some(ring) = self.rings.read().expect("ring cache poisoned").get(&shards) {
            return Arc::clone(ring);
        }
        let mut points = Vec::with_capacity(shards * self.vnodes);
        for shard in 0..shards {
            for vnode in 0..self.vnodes {
                points.push((vnode_point(self.seed, shard, vnode), shard as u32));
            }
        }
        // Ties (point collisions across shards) are astronomically rare but
        // must break deterministically and *stably across sizes*: the lower
        // shard wins, matching the subset argument (an old point beats a new
        // one at the same position in both the N- and M-sized rings).
        points.sort_unstable();
        let ring = Arc::new(points);
        self.rings.write().expect("ring cache poisoned").insert(shards, Arc::clone(&ring));
        ring
    }

    /// Fraction of a deterministic `sample`-object sample whose owner
    /// changes when resizing `from → to` shards. The theoretical value is
    /// [`theoretical_remap`]; `experiments rebalance` certifies the two
    /// agree within 10% for the default seed.
    pub fn remap_fraction(&self, from: usize, to: usize, sample: u64) -> f64 {
        assert!(sample > 0, "remap fraction needs a sample");
        let moved = (0..sample).filter(|&id| self.route(id, from) != self.route(id, to)).count();
        moved as f64 / sample as f64
    }

    /// Per-shard object counts over a deterministic `sample`-object sample;
    /// the load-skew proptests bound `max / mean` over this.
    pub fn load_histogram(&self, shards: usize, sample: u64) -> Vec<u64> {
        let mut counts = vec![0u64; shards];
        for id in 0..sample {
            counts[self.route(id, shards)] += 1;
        }
        counts
    }
}

/// The classic consistent-hashing remap bound: resizing `from → to` shards
/// moves `|to − from| / max(from, to)` of the keyspace in expectation.
pub fn theoretical_remap(from: usize, to: usize) -> f64 {
    if from == to || from == 0 || to == 0 {
        return 0.0;
    }
    (from.abs_diff(to)) as f64 / from.max(to) as f64
}

impl Router for RingRouter {
    #[inline]
    fn route(&self, id: ObjectId, shards: usize) -> usize {
        debug_assert!(shards > 0, "fleet has at least one shard");
        if shards == 1 {
            return 0;
        }
        let ring = self.ring(shards);
        let h = mix64(id);
        // First point clockwise of `h`, wrapping past the top of the ring.
        let idx = ring.partition_point(|&(p, _)| p < h);
        let (_, shard) = ring[if idx == ring.len() { 0 } else { idx }];
        shard as usize
    }

    fn label(&self) -> String {
        format!("ring(vnodes={},seed={:#x})", self.vnodes, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_pure_and_in_range() {
        let r = RingRouter::default();
        for shards in [1usize, 2, 3, 8, 16] {
            for id in 0..2_000u64 {
                let s = r.route(id, shards);
                assert!(s < shards);
                assert_eq!(s, r.route(id, shards));
            }
        }
    }

    #[test]
    fn clones_share_the_ring_cache() {
        let a = RingRouter::default();
        let b = a.clone();
        a.route(1, 8);
        assert!(b.rings.read().unwrap().contains_key(&8), "clone sees the cached ring");
        for id in 0..1_000u64 {
            assert_eq!(a.route(id, 8), b.route(id, 8));
        }
    }

    #[test]
    fn theoretical_remap_matches_formula() {
        assert_eq!(theoretical_remap(4, 4), 0.0);
        assert_eq!(theoretical_remap(4, 8), 0.5);
        assert_eq!(theoretical_remap(8, 4), 0.5);
        assert_eq!(theoretical_remap(1, 8), 7.0 / 8.0);
    }

    #[test]
    fn default_seed_certifies_remap_and_skew_bounds() {
        // The offline-searched DEFAULT_SEED must hold the acceptance bounds
        // exactly as `experiments rebalance` measures them.
        let r = RingRouter::default();
        const SAMPLE: u64 = 200_000;
        for from in [1usize, 2, 4, 8] {
            for to in [1usize, 2, 4, 8] {
                if from == to {
                    continue;
                }
                let measured = r.remap_fraction(from, to, SAMPLE);
                let theory = theoretical_remap(from, to);
                assert!(
                    (measured - theory).abs() <= 0.10 * theory,
                    "remap {from}->{to}: measured {measured:.4} vs theory {theory:.4}"
                );
            }
        }
        for shards in [1usize, 2, 8, 9] {
            let counts = r.load_histogram(shards, SAMPLE);
            let mean = SAMPLE as f64 / shards as f64;
            let max = *counts.iter().max().unwrap() as f64;
            assert!(max <= 2.0 * mean, "skew at {shards} shards: max {max} vs mean {mean}");
        }
    }
}
