//! Standalone gateway server: a sharded fleet with static-expert admission
//! behind the TCP wire protocol.
//!
//! ```text
//! gateway [--addr HOST:PORT] [--shards N] [--queue N] [--batch N]
//!         [--drop-newest] [--hoc-mb N] [--freq F] [--size-kb S]
//!         [--max-restarts N] [--restart-window N]
//!         [--checkpoint-every N] [--checkpoint-dir DIR] [--cold-boot]
//!         [--router ring|hash] [--vnodes N]
//!         [--read-timeout-ms N] [--idle-timeout-ms N]
//!         [--shed-watermark N] [--conn-rate N] [--write-stall-ms N]
//!         [--replicas N] [--elastic]
//! ```
//!
//! Serves until a client sends `SHUTDOWN` (e.g. `loadgen --shutdown`), then
//! drains, joins the shard workers and prints the final metrics snapshot.
//! Shard workers that panic are restarted against the
//! `--max-restarts`-per-`--restart-window` budget; a shard that exhausts it
//! is buried and its requests are answered `Unavailable` (degraded mode).
//! With `--checkpoint-every N` each shard checkpoints its cache + driver
//! state every N per-shard requests and restarts resume *warm* from the
//! latest valid checkpoint (cold when none validates); `--checkpoint-dir`
//! additionally spills each checkpoint to `DIR/shard-{s}.ckpt` via atomic
//! rename. A restarted gateway process pointed at the same
//! `--checkpoint-dir` boots *warm*: each shard restores its spill file
//! (falling back detected-cold per shard on validation failure) instead of
//! starting empty. `--cold-boot` restores the old wipe-at-startup
//! semantics. `--router ring` routes by the consistent-hash ring
//! (`--vnodes` virtual nodes per shard) so a later fleet at a different
//! shard count remaps only `|M−N|/max(N,M)` of the keyspace; the default
//! `hash` router keeps the historical fixed-fleet routing.
//!
//! Overload control: `--shed-watermark N` sheds whole ingest batches with
//! `Busy` verdicts while a shard's queue sits at N or more requests
//! (recovering at N/2); `--conn-rate N` caps each connection at N records
//! per second via a token bucket (excess answered `Busy`); and
//! `--write-stall-ms N` evicts clients that stop reading replies for N ms.
//!
//! Replication: `--replicas 1` runs a hot standby per shard, fed at every
//! checkpoint cut (requires `--checkpoint-every`). A shard whose restart
//! budget is exhausted then *promotes* its standby instead of being buried,
//! so nothing is answered `Unavailable` past the budget.
//!
//! Elasticity: `--elastic` serves through an `ElasticFleet` on the
//! consistent-hash ring (`--router` is implied `ring`), and clients may
//! re-shard it live with `RESIZE` frames (`loadgen --resize M`); the
//! `RESIZE_ACK` carries the per-generation ledger.

use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_gateway::{Gateway, GatewayConfig};
use darwin_rebalance::{RingRouter, DEFAULT_SEED, DEFAULT_VNODES};
use darwin_shard::{Backpressure, FleetConfig, HashRouter, RestartBudget, Router};
use darwin_testbed::StaticDriver;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:4870".to_string();
    let mut shards = 4usize;
    let mut queue = 8192usize;
    let mut batch = 256usize;
    let mut backpressure = Backpressure::Block;
    let mut hoc_mb = 100u64;
    let mut freq = 2u32;
    let mut size_kb = 100u64;
    let mut restart_budget = RestartBudget::default();
    let mut checkpoint_every: Option<u64> = None;
    let mut router = "hash".to_string();
    let mut vnodes = DEFAULT_VNODES;
    let mut shed_watermark: Option<usize> = None;
    let mut replicas = 0usize;
    let mut elastic = false;
    let mut gw = GatewayConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args[i].clone();
            }
            "--shards" => {
                i += 1;
                shards = args[i].parse().expect("shards");
            }
            "--queue" => {
                i += 1;
                queue = args[i].parse().expect("queue capacity");
            }
            "--batch" => {
                i += 1;
                batch = args[i].parse().expect("batch");
            }
            "--drop-newest" => backpressure = Backpressure::DropNewest,
            "--hoc-mb" => {
                i += 1;
                hoc_mb = args[i].parse().expect("hoc mb");
            }
            "--freq" => {
                i += 1;
                freq = args[i].parse().expect("frequency threshold");
            }
            "--size-kb" => {
                i += 1;
                size_kb = args[i].parse().expect("size threshold kb");
            }
            "--max-restarts" => {
                i += 1;
                restart_budget.max_restarts = args[i].parse().expect("max restarts");
            }
            "--restart-window" => {
                i += 1;
                restart_budget.window_requests = args[i].parse().expect("restart window");
            }
            "--checkpoint-every" => {
                i += 1;
                checkpoint_every = Some(args[i].parse().expect("checkpoint cadence"));
            }
            "--checkpoint-dir" => {
                i += 1;
                gw.checkpoint_dir = Some(std::path::PathBuf::from(&args[i]));
            }
            "--cold-boot" => gw.warm_boot = false,
            "--router" => {
                i += 1;
                router = args[i].clone();
                assert!(
                    router == "ring" || router == "hash",
                    "--router takes ring or hash, got {router:?}"
                );
            }
            "--vnodes" => {
                i += 1;
                vnodes = args[i].parse().expect("vnodes per shard");
            }
            "--read-timeout-ms" => {
                i += 1;
                gw.read_timeout = Duration::from_millis(args[i].parse().expect("read timeout ms"));
            }
            "--idle-timeout-ms" => {
                i += 1;
                gw.idle_timeout = Some(Duration::from_millis(args[i].parse().expect("idle timeout ms")));
            }
            "--shed-watermark" => {
                i += 1;
                shed_watermark = Some(args[i].parse().expect("shed watermark"));
            }
            "--replicas" => {
                i += 1;
                replicas = args[i].parse().expect("replicas per shard");
            }
            "--elastic" => elastic = true,
            "--conn-rate" => {
                i += 1;
                gw.conn_rate = Some(args[i].parse().expect("records per second"));
            }
            "--write-stall-ms" => {
                i += 1;
                gw.write_stall = Some(Duration::from_millis(args[i].parse().expect("write stall ms")));
            }
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }

    let cfg = FleetConfig {
        shards,
        queue_capacity: queue,
        batch,
        backpressure,
        snapshot_every: None,
        restart_budget,
        checkpoint_every,
        shed_watermark,
        replicas,
    };
    let cache = CacheConfig { hoc_bytes: hoc_mb * 1024 * 1024, ..CacheConfig::paper_default() };
    let policy = ThresholdPolicy::new(freq, size_kb * 1024);
    if elastic {
        let ring = RingRouter::new(DEFAULT_SEED, vnodes);
        let gateway = Gateway::bind_elastic(addr.as_str(), cfg, cache, ring, gw, move |_| {
            StaticDriver::new(policy)
        })
        .expect("bind gateway");
        println!(
            "gateway listening on {} ({} shards, ring(elastic), {:?})",
            gateway.local_addr(),
            shards,
            backpressure
        );
        gateway.wait_shutdown();
        let metrics = gateway.metrics();
        let report = gateway.finish_elastic().expect("gateway finished cleanly");
        println!("{}", metrics.to_json());
        println!(
            "served {} requests ({} dropped, {} unavailable, {} shed), fleet OHR {:.4}, {} generation(s), {} handoff transfer(s)",
            report.metrics.total_processed(),
            report.metrics.total_dropped(),
            report.metrics.total_unavailable(),
            report.metrics.total_shed(),
            report.metrics.fleet_cache().hoc_ohr(),
            report.metrics.generations.len(),
            report.transfers.len(),
        );
        return;
    }

    let routing: Box<dyn Router> = match router.as_str() {
        "ring" => Box::new(RingRouter::new(DEFAULT_SEED, vnodes)),
        _ => Box::new(HashRouter),
    };
    let router_label = routing.label();
    let gateway =
        Gateway::bind_with(addr.as_str(), cfg, cache, routing, gw, move |_| StaticDriver::new(policy))
            .expect("bind gateway");
    println!(
        "gateway listening on {} ({} shards, {}, {:?})",
        gateway.local_addr(),
        shards,
        router_label,
        backpressure
    );

    gateway.wait_shutdown();
    let metrics = gateway.metrics();
    let report = gateway.finish().expect("gateway finished cleanly");
    println!("{}", metrics.to_json());
    println!(
        "served {} requests ({} dropped, {} unavailable, {} shed), fleet OHR {:.4}, {} restart(s) ({} warm), {} dead shard(s)",
        report.total_processed(),
        report.total_dropped(),
        report.total_unavailable(),
        report.total_shed(),
        report.fleet_cache().hoc_ohr(),
        report.total_restarts(),
        report.total_warm_restarts(),
        report.dead_shards(),
    );
}
