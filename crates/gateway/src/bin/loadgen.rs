//! Load generator: replays a generated trace against a running gateway and
//! reports throughput and latency percentiles.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--connections N]
//!         [--batch N] [--window N] [--seed S]
//!         [--retries N] [--backoff-ms N] [--backoff-cap-ms N]
//!         [--read-timeout-ms N] [--resize M] [--stats] [--events]
//!         [--shutdown]
//! ```
//!
//! `--resize M` asks an elastic gateway to re-shard to M shards after the
//! replay (before `--stats`), printing the acked generation ledger;
//! `--stats` fetches the gateway's JSON metrics snapshot after the replay;
//! `--events` dumps the per-shard event journals (deaths, restarts, expert
//! switches, checkpoint cuts — see `darwin-obs`);
//! `--shutdown` then asks the gateway to shut down gracefully. Transport
//! failures are retried with exponential backoff (`--retries` consecutive
//! failures before giving up) and reported as typed counters in the summary.

use darwin_gateway::loadgen;
use darwin_gateway::LoadgenConfig;
use darwin_trace::{MixSpec, TraceGenerator, TrafficClass};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:4870".to_string();
    let mut requests = 200_000usize;
    let mut cfg = LoadgenConfig::default();
    let mut seed = 2024u64;
    let mut stats = false;
    let mut events = false;
    let mut shutdown = false;
    let mut resize: Option<u32> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args[i].clone();
            }
            "--requests" => {
                i += 1;
                requests = args[i].parse().expect("requests");
            }
            "--connections" => {
                i += 1;
                cfg.connections = args[i].parse().expect("connections");
            }
            "--batch" => {
                i += 1;
                cfg.batch = args[i].parse().expect("batch");
            }
            "--window" => {
                i += 1;
                cfg.window = args[i].parse().expect("window");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("seed");
            }
            "--retries" => {
                i += 1;
                cfg.retries = args[i].parse().expect("retries");
            }
            "--backoff-ms" => {
                i += 1;
                cfg.backoff = Duration::from_millis(args[i].parse().expect("backoff ms"));
            }
            "--backoff-cap-ms" => {
                i += 1;
                cfg.backoff_cap = Duration::from_millis(args[i].parse().expect("backoff cap ms"));
            }
            "--read-timeout-ms" => {
                i += 1;
                cfg.read_timeout =
                    Some(Duration::from_millis(args[i].parse().expect("read timeout ms")));
            }
            "--resize" => {
                i += 1;
                resize = Some(args[i].parse().expect("resize target shards"));
            }
            "--stats" => stats = true,
            "--events" => events = true,
            "--shutdown" => shutdown = true,
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }

    // One seed drives the whole run: the generated trace AND the per-
    // connection full-jitter backoff RNG. Without this, two runs with the
    // same --seed could retry on different schedules and (under load
    // shedding) produce different verdict tallies.
    cfg.seed = seed;
    let trace = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        seed,
    )
    .generate(requests);

    let report = loadgen::run(addr.as_str(), &trace, cfg).expect("loadgen run");
    let t = report.tally;
    assert_eq!(t.total(), report.requests, "every request must receive a verdict");
    println!(
        "{} requests over {} connection(s): {:.0} rps, p50 {:?}, p99 {:?}",
        report.requests,
        cfg.connections,
        report.rps(),
        report.latency_percentile(50.0),
        report.latency_percentile(99.0),
    );
    println!(
        "verdicts: hoc_hits={} dc_hits={} origin={} dropped={} unavailable={} admitted={}",
        t.hoc_hits, t.dc_hits, t.origin_fetches, t.dropped, t.unavailable, t.admitted,
    );
    let e = report.errors;
    println!(
        "errors: connect_failures={} timeouts={} resets={} other_io={} reconnects={} resubmitted={}",
        e.connect_failures, e.timeouts, e.resets, e.other_io, e.reconnects, e.resubmitted,
    );
    println!("overload: shed={} (Busy records retried to completion)", e.shed);

    if let Some(target) = resize {
        let ack = loadgen::send_resize(addr.as_str(), target).expect("send resize");
        match &ack.error {
            Some(err) => println!("resize refused: {err}"),
            None => println!(
                "resized to {} shard(s), generation {}, {} transfer(s), {} retired generation(s)",
                ack.shards,
                ack.generation,
                ack.transferred_shards,
                ack.ledger.len(),
            ),
        }
    }
    if stats {
        println!("{}", loadgen::fetch_stats(addr.as_str()).expect("fetch stats"));
    }
    if events {
        for (shard, journal) in loadgen::fetch_events(addr.as_str()).expect("fetch events") {
            if journal.events.is_empty() && journal.dropped == 0 {
                continue;
            }
            println!("shard {shard}: {} event(s), {} dropped", journal.events.len(), journal.dropped);
            for ev in &journal.events {
                println!("  {}", ev.render());
            }
        }
    }
    if shutdown {
        loadgen::send_shutdown(addr.as_str()).expect("send shutdown");
        println!("gateway acknowledged shutdown");
    }
}
