//! The binary wire protocol spoken between the gateway and its clients.
//!
//! Every frame is a fixed 8-byte header followed by an opcode-specific body,
//! all integers little-endian:
//!
//! ```text
//! offset  size  field
//!      0     2  magic     0xDA57
//!      2     1  version   5
//!      3     1  opcode
//!      4     4  body_len  (≤ MAX_BODY_LEN)
//!      8     …  body
//! ```
//!
//! Version 2 widened the verdict byte from a 2-bit to a 3-bit outcome field
//! to make room for the degraded-mode `Unavailable` answer; version 3 added
//! the `EVENTS` opcode pair for draining the fleet's per-shard event
//! journals; version 4 added the overload-control `Busy` outcome with its
//! `retry_after` hint in the previously reserved bits 4–6 of the verdict
//! byte; version 5 added the `RESIZE` opcode pair driving an elastic fleet
//! resize over the wire. Older versions are rejected with
//! [`WireError::BadVersion`] (both ends of this repo speak v5).
//!
//! Client → server opcodes:
//!
//! | opcode | name       | body |
//! |--------|------------|------|
//! | `0x01` | `GET`      | 1..=`MAX_GET_BATCH` records of 24 bytes: `id:u64 size:u64 timestamp_us:u64` |
//! | `0x02` | `STATS`    | empty |
//! | `0x03` | `SHUTDOWN` | empty |
//! | `0x04` | `EVENTS`   | empty |
//! | `0x05` | `RESIZE`   | exactly 4 bytes: `target_shards:u32` (must be ≥ 1) |
//!
//! Server → client opcodes:
//!
//! | opcode | name           | body |
//! |--------|----------------|------|
//! | `0x81` | `VERDICTS`     | one byte per `GET` record: bits 0–2 outcome (0 = HOC hit, 1 = DC hit, 2 = origin fetch, 3 = dropped, 4 = unavailable, 5 = busy), bit 3 admitted-to-HOC, bits 4–6 `retry_after` backoff exponent (zero unless busy), bit 7 zero |
//! | `0x82` | `STATS_REPLY`  | UTF-8 JSON of a `FleetMetrics` snapshot |
//! | `0x83` | `SHUTDOWN_ACK` | empty |
//! | `0x84` | `EVENTS_REPLY` | a sealed `darwin_obs` fleet-events frame (CRC-guarded, decodable with [`darwin_obs::decode_fleet_events`]) |
//! | `0x85` | `RESIZE_ACK`   | UTF-8 JSON: the resize's `GenerationSummary` ledger on success, or `{"error": …}` when the gateway refused (not elastic, resize in flight, or a no-op target) |
//!
//! Each `GET` frame is answered by exactly one `VERDICTS` frame carrying one
//! verdict per record, in record order; replies on a connection are emitted
//! in the order the frames arrived, so clients may pipeline freely. The
//! `timestamp_us` field rides the wire because admission controllers are
//! time-aware (recency features, epoch boundaries): replaying a trace through
//! the gateway is bit-identical to replaying it in-process only if the
//! server sees the original timestamps.
//!
//! [`decode`] never panics on hostile input: malformed, truncated-at-EOF and
//! oversized frames all surface as [`WireError`]s (checked by the
//! `wire_codec` proptest suite).

use darwin_cache::RequestOutcome;
use darwin_trace::Request;
use std::io::Read;

/// First two header bytes of every frame.
pub const MAGIC: u16 = 0xDA57;
/// Protocol version this module speaks.
pub const VERSION: u8 = 5;
/// Fixed header size, bytes.
pub const HEADER_LEN: usize = 8;
/// Upper bound on a frame body; larger `body_len` headers are rejected
/// before any allocation happens.
pub const MAX_BODY_LEN: usize = 1 << 20;
/// Size of one `GET` record on the wire.
pub const GET_RECORD_LEN: usize = 24;
/// Most requests a single `GET` frame can carry.
pub const MAX_GET_BATCH: usize = MAX_BODY_LEN / GET_RECORD_LEN;

const OP_GET: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_SHUTDOWN: u8 = 0x03;
const OP_EVENTS: u8 = 0x04;
const OP_RESIZE: u8 = 0x05;
const OP_VERDICTS: u8 = 0x81;
const OP_STATS_REPLY: u8 = 0x82;
const OP_SHUTDOWN_ACK: u8 = 0x83;
const OP_EVENTS_REPLY: u8 = 0x84;
const OP_RESIZE_ACK: u8 = 0x85;

/// Body size of a `RESIZE` frame (one little-endian u32).
const RESIZE_BODY_LEN: usize = 4;

/// Where a request ended up, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictOutcome {
    /// Served from the Hot Object Cache.
    HocHit,
    /// Served from the Disk Cache.
    DcHit,
    /// Fetched from the origin (full miss).
    OriginFetch,
    /// Never processed: shed at a full shard queue (`DropNewest`
    /// backpressure) or in flight when a shard worker died.
    Dropped,
    /// Never processed: the request's shard was permanently dead (restart
    /// budget exhausted) when it arrived — the gateway's degraded mode.
    Unavailable,
    /// Never processed: the gateway shed the request under overload (queue
    /// watermark, per-connection rate limit, or reply-backlog bound). The
    /// client should retry after a backoff keyed to `retry_after`.
    Busy,
}

/// One request's reply: outcome plus the admission decision, plus the
/// overload backoff hint for `Busy` answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireVerdict {
    /// Where the request was served from.
    pub outcome: VerdictOutcome,
    /// True if the request's object was written into the HOC.
    pub admitted: bool,
    /// Backoff exponent hint (0–7) carried by `Busy` verdicts: the server's
    /// estimate of overload severity, fed into the client's exponential
    /// backoff. Always 0 for every other outcome.
    pub retry_after: u8,
}

impl WireVerdict {
    /// The verdict a shed request reports.
    pub const DROPPED: WireVerdict =
        WireVerdict { outcome: VerdictOutcome::Dropped, admitted: false, retry_after: 0 };

    /// The verdict a request routed to a permanently dead shard reports.
    pub const UNAVAILABLE: WireVerdict =
        WireVerdict { outcome: VerdictOutcome::Unavailable, admitted: false, retry_after: 0 };

    /// The verdict an overloaded gateway sheds a request with, carrying a
    /// backoff exponent hint (clamped to the 3-bit wire field).
    pub fn busy(retry_after: u8) -> WireVerdict {
        WireVerdict { outcome: VerdictOutcome::Busy, admitted: false, retry_after: retry_after.min(7) }
    }

    /// Wire encoding (bits 0–2 outcome, bit 3 admitted, bits 4–6
    /// `retry_after`).
    pub fn to_byte(self) -> u8 {
        let outcome = match self.outcome {
            VerdictOutcome::HocHit => 0,
            VerdictOutcome::DcHit => 1,
            VerdictOutcome::OriginFetch => 2,
            VerdictOutcome::Dropped => 3,
            VerdictOutcome::Unavailable => 4,
            VerdictOutcome::Busy => 5,
        };
        debug_assert!(self.retry_after <= 7, "retry_after exceeds the 3-bit wire field");
        debug_assert!(
            self.retry_after == 0 || self.outcome == VerdictOutcome::Busy,
            "retry_after rides only on Busy verdicts"
        );
        outcome | u8::from(self.admitted) << 3 | (self.retry_after & 0b111) << 4
    }

    /// Parses a wire byte, rejecting anything with the reserved bit set, an
    /// unassigned outcome, a `retry_after` hint on a non-`Busy` outcome, or
    /// the impossible never-processed-yet-admitted combinations.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        if b & 0b1000_0000 != 0 {
            return Err(WireError::BadVerdictByte(b));
        }
        let admitted = b & 0b1000 != 0;
        let retry_after = (b >> 4) & 0b111;
        let outcome = match b & 0b111 {
            0 => VerdictOutcome::HocHit,
            1 => VerdictOutcome::DcHit,
            2 => VerdictOutcome::OriginFetch,
            3 => VerdictOutcome::Dropped,
            4 => VerdictOutcome::Unavailable,
            5 => VerdictOutcome::Busy,
            _ => return Err(WireError::BadVerdictByte(b)),
        };
        let never_processed = matches!(
            outcome,
            VerdictOutcome::Dropped | VerdictOutcome::Unavailable | VerdictOutcome::Busy
        );
        if never_processed && admitted {
            return Err(WireError::BadVerdictByte(b));
        }
        if retry_after != 0 && outcome != VerdictOutcome::Busy {
            return Err(WireError::BadVerdictByte(b));
        }
        Ok(WireVerdict { outcome, admitted, retry_after })
    }
}

impl From<darwin_shard::Verdict> for WireVerdict {
    fn from(v: darwin_shard::Verdict) -> Self {
        let outcome = match v.outcome {
            RequestOutcome::HocHit => VerdictOutcome::HocHit,
            RequestOutcome::DcHit => VerdictOutcome::DcHit,
            RequestOutcome::OriginFetch => VerdictOutcome::OriginFetch,
        };
        WireVerdict { outcome, admitted: v.admitted, retry_after: 0 }
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client: process this batch of requests, answer with one `VERDICTS`.
    Get(Vec<Request>),
    /// Client: reply with a JSON fleet-metrics snapshot.
    Stats,
    /// Client: begin graceful gateway shutdown.
    Shutdown,
    /// Client: reply with the fleet's per-shard event journals.
    Events,
    /// Client: resize the elastic fleet to this many shards (drain, cut,
    /// remap, warm-restore), then answer with one `RESIZE_ACK`.
    Resize(u32),
    /// Server: one verdict per record of the corresponding `GET`.
    Verdicts(Vec<WireVerdict>),
    /// Server: the JSON `FleetMetrics` snapshot a `STATS` asked for.
    StatsReply(String),
    /// Server: shutdown acknowledged; the connection closes after this.
    ShutdownAck,
    /// Server: the sealed fleet-events frame an `EVENTS` asked for (decode
    /// with `darwin_obs::decode_fleet_events`).
    EventsReply(Vec<u8>),
    /// Server: the JSON outcome of a `RESIZE` — the generation ledger on
    /// success, an `{"error": …}` object on refusal.
    ResizeAck(String),
}

/// Why a frame (or byte stream) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Header magic was not [`MAGIC`].
    BadMagic(u16),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Opcode not in the protocol table.
    UnknownOpcode(u8),
    /// `body_len` exceeded [`MAX_BODY_LEN`].
    Oversized {
        /// Opcode of the offending frame.
        opcode: u8,
        /// Advertised body length.
        len: usize,
    },
    /// Body length illegal for the opcode (empty `GET`, non-empty `STATS`,
    /// a `GET` body not a multiple of the record size, …).
    BadBodyLen {
        /// Opcode of the offending frame.
        opcode: u8,
        /// Advertised body length.
        len: usize,
    },
    /// A verdict byte with reserved bits set or an impossible combination.
    BadVerdictByte(u8),
    /// A `STATS_REPLY` body that is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Oversized { opcode, len } => {
                write!(f, "oversized frame (opcode {opcode:#04x}, body {len} > {MAX_BODY_LEN})")
            }
            WireError::BadBodyLen { opcode, len } => {
                write!(f, "illegal body length {len} for opcode {opcode:#04x}")
            }
            WireError::BadVerdictByte(b) => write!(f, "malformed verdict byte {b:#04x}"),
            WireError::BadUtf8 => write!(f, "stats reply is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

fn push_header(opcode: u8, body_len: usize, out: &mut Vec<u8>) {
    debug_assert!(body_len <= MAX_BODY_LEN, "frame body exceeds protocol bound");
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(opcode);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
}

/// Encodes a `GET` frame straight from a request slice (the allocation-free
/// path the load generator uses).
///
/// # Panics
/// Panics if `records` is empty or longer than [`MAX_GET_BATCH`] — those
/// frames could never be decoded.
pub fn encode_get(records: &[Request], out: &mut Vec<u8>) {
    assert!(!records.is_empty(), "GET frames carry at least one record");
    assert!(records.len() <= MAX_GET_BATCH, "GET batch exceeds MAX_GET_BATCH");
    push_header(OP_GET, records.len() * GET_RECORD_LEN, out);
    for r in records {
        out.extend_from_slice(&r.id.to_le_bytes());
        out.extend_from_slice(&r.size.to_le_bytes());
        out.extend_from_slice(&r.timestamp_us.to_le_bytes());
    }
}

/// Encodes a `VERDICTS` frame from already-encoded verdict bytes (the
/// server's batched-write path).
pub(crate) fn encode_verdict_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    debug_assert!(!bytes.is_empty());
    push_header(OP_VERDICTS, bytes.len(), out);
    out.extend_from_slice(bytes);
}

/// Appends the frame encoding of `msg` to `out`.
///
/// # Panics
/// Panics on frames the protocol cannot express (empty `GET`/`VERDICTS`,
/// bodies beyond [`MAX_BODY_LEN`]) — constructing those is a caller bug.
pub fn encode(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Get(records) => encode_get(records, out),
        Message::Stats => push_header(OP_STATS, 0, out),
        Message::Shutdown => push_header(OP_SHUTDOWN, 0, out),
        Message::Verdicts(vs) => {
            assert!(!vs.is_empty(), "VERDICTS frames carry at least one verdict");
            assert!(vs.len() <= MAX_BODY_LEN, "VERDICTS batch exceeds MAX_BODY_LEN");
            push_header(OP_VERDICTS, vs.len(), out);
            out.extend(vs.iter().map(|v| v.to_byte()));
        }
        Message::StatsReply(json) => {
            assert!(json.len() <= MAX_BODY_LEN, "stats reply exceeds MAX_BODY_LEN");
            push_header(OP_STATS_REPLY, json.len(), out);
            out.extend_from_slice(json.as_bytes());
        }
        Message::ShutdownAck => push_header(OP_SHUTDOWN_ACK, 0, out),
        Message::Events => push_header(OP_EVENTS, 0, out),
        Message::EventsReply(frame) => {
            assert!(frame.len() <= MAX_BODY_LEN, "events reply exceeds MAX_BODY_LEN");
            push_header(OP_EVENTS_REPLY, frame.len(), out);
            out.extend_from_slice(frame);
        }
        Message::Resize(target) => {
            push_header(OP_RESIZE, RESIZE_BODY_LEN, out);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Message::ResizeAck(json) => {
            assert!(json.len() <= MAX_BODY_LEN, "resize ack exceeds MAX_BODY_LEN");
            push_header(OP_RESIZE_ACK, json.len(), out);
            out.extend_from_slice(json.as_bytes());
        }
    }
}

/// The frame encoding of `msg` as a fresh buffer.
pub fn encoded(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    encode(msg, &mut out);
    out
}

/// Tries to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some((message, consumed)))` on a complete frame,
/// `Ok(None)` when `buf` holds only a prefix of a valid frame (read more
/// bytes and retry), and `Err` as soon as the prefix is provably invalid.
pub fn decode(buf: &[u8]) -> Result<Option<(Message, usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        // Validate what we can see so garbage fails fast even when short.
        if buf.len() >= 2 {
            let magic = u16::from_le_bytes([buf[0], buf[1]]);
            if magic != MAGIC {
                return Err(WireError::BadMagic(magic));
            }
        }
        if buf.len() >= 3 && buf[2] != VERSION {
            return Err(WireError::BadVersion(buf[2]));
        }
        return Ok(None);
    }
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if buf[2] != VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    let opcode = buf[3];
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_BODY_LEN {
        return Err(WireError::Oversized { opcode, len });
    }
    let body_ok = match opcode {
        OP_GET => len > 0 && len.is_multiple_of(GET_RECORD_LEN),
        OP_VERDICTS => len > 0,
        OP_STATS | OP_SHUTDOWN | OP_SHUTDOWN_ACK | OP_EVENTS => len == 0,
        OP_RESIZE => len == RESIZE_BODY_LEN,
        OP_STATS_REPLY | OP_EVENTS_REPLY | OP_RESIZE_ACK => true,
        other => return Err(WireError::UnknownOpcode(other)),
    };
    if !body_ok {
        return Err(WireError::BadBodyLen { opcode, len });
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let body = &buf[HEADER_LEN..HEADER_LEN + len];
    let msg = match opcode {
        OP_GET => {
            let mut records = Vec::with_capacity(len / GET_RECORD_LEN);
            for rec in body.chunks_exact(GET_RECORD_LEN) {
                let word = |i: usize| {
                    u64::from_le_bytes(rec[i * 8..(i + 1) * 8].try_into().expect("8-byte chunk"))
                };
                records.push(Request::new(word(0), word(1), word(2)));
            }
            Message::Get(records)
        }
        OP_STATS => Message::Stats,
        OP_SHUTDOWN => Message::Shutdown,
        OP_VERDICTS => {
            let vs: Result<Vec<WireVerdict>, WireError> =
                body.iter().map(|&b| WireVerdict::from_byte(b)).collect();
            Message::Verdicts(vs?)
        }
        OP_STATS_REPLY => {
            Message::StatsReply(std::str::from_utf8(body).map_err(|_| WireError::BadUtf8)?.to_owned())
        }
        OP_SHUTDOWN_ACK => Message::ShutdownAck,
        OP_EVENTS => Message::Events,
        OP_EVENTS_REPLY => Message::EventsReply(body.to_vec()),
        OP_RESIZE => {
            Message::Resize(u32::from_le_bytes(body.try_into().expect("length validated above")))
        }
        OP_RESIZE_ACK => {
            Message::ResizeAck(std::str::from_utf8(body).map_err(|_| WireError::BadUtf8)?.to_owned())
        }
        _ => unreachable!("opcode validated above"),
    };
    Ok(Some((msg, HEADER_LEN + len)))
}

/// Why [`FrameReader::recv`] failed.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying transport failed (including `WouldBlock`/`TimedOut`
    /// on sockets with a read timeout — retryable — and `UnexpectedEof`
    /// when the peer vanished mid-frame).
    Io(std::io::Error),
    /// The byte stream violated the protocol.
    Wire(WireError),
}

impl RecvError {
    /// True when the error is a read-timeout expiry: no bytes were lost and
    /// the caller may simply call [`FrameReader::recv`] again.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            RecvError::Io(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
        )
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Incremental frame decoder over any [`Read`] stream.
///
/// Keeps partial frames buffered across calls, so it composes with socket
/// read timeouts: a timed-out [`recv`](Self::recv) can be retried without
/// losing stream position.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    bytes_read: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self { inner, buf: Vec::with_capacity(16 * 1024), start: 0, bytes_read: 0 }
    }

    /// Total bytes consumed from the underlying stream.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reads the next frame. `Ok(None)` means the peer closed the stream
    /// cleanly at a frame boundary; closing mid-frame is `UnexpectedEof`.
    pub fn recv(&mut self) -> Result<Option<Message>, RecvError> {
        loop {
            match decode(&self.buf[self.start..]).map_err(RecvError::Wire)? {
                Some((msg, used)) => {
                    self.start += used;
                    if self.start == self.buf.len() {
                        self.buf.clear();
                        self.start = 0;
                    } else if self.start > 64 * 1024 {
                        self.buf.drain(..self.start);
                        self.start = 0;
                    }
                    return Ok(Some(msg));
                }
                None => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = match self.inner.read(&mut chunk) {
                        Ok(n) => n,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(RecvError::Io(e)),
                    };
                    if n == 0 {
                        if self.start == self.buf.len() {
                            return Ok(None);
                        }
                        return Err(RecvError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "peer closed mid-frame",
                        )));
                    }
                    self.bytes_read += n as u64;
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_stable() {
        let bytes = encoded(&Message::Stats);
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), MAGIC);
        assert_eq!(bytes[2], VERSION);
        assert_eq!(bytes[3], OP_STATS);
        assert_eq!(&bytes[4..8], &[0, 0, 0, 0]);
    }

    #[test]
    fn events_frames_roundtrip() {
        let (msg, used) = decode(&encoded(&Message::Events)).unwrap().unwrap();
        assert_eq!((msg, used), (Message::Events, HEADER_LEN));

        let frame = vec![0xAB; 37];
        let bytes = encoded(&Message::EventsReply(frame.clone()));
        let (msg, used) = decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(msg, Message::EventsReply(frame));

        // An EVENTS request must carry no body.
        let mut bad = encoded(&Message::Events);
        bad[4] = 1;
        bad.push(0);
        assert_eq!(decode(&bad), Err(WireError::BadBodyLen { opcode: OP_EVENTS, len: 1 }));
    }

    #[test]
    fn resize_frames_roundtrip() {
        for target in [1u32, 8, u32::MAX] {
            let bytes = encoded(&Message::Resize(target));
            assert_eq!(bytes.len(), HEADER_LEN + RESIZE_BODY_LEN);
            let (msg, used) = decode(&bytes).unwrap().unwrap();
            assert_eq!((msg, used), (Message::Resize(target), bytes.len()));
        }
        let ack = Message::ResizeAck(r#"{"generation":2}"#.into());
        let bytes = encoded(&ack);
        let (msg, used) = decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(msg, ack);

        // A RESIZE body must be exactly 4 bytes.
        for bad_len in [0usize, 3, 5, 8] {
            let mut bad = encoded(&Message::Resize(2));
            bad.truncate(HEADER_LEN);
            bad[4..8].copy_from_slice(&(bad_len as u32).to_le_bytes());
            bad.extend(std::iter::repeat_n(0u8, bad_len));
            assert_eq!(
                decode(&bad),
                Err(WireError::BadBodyLen { opcode: OP_RESIZE, len: bad_len }),
                "body of {bad_len} bytes"
            );
        }
        // A RESIZE_ACK body must be UTF-8.
        let mut bad = encoded(&Message::ResizeAck("ok".into()));
        bad[HEADER_LEN] = 0xFF;
        assert_eq!(decode(&bad), Err(WireError::BadUtf8));
    }

    #[test]
    fn get_roundtrip_preserves_records() {
        let reqs = vec![Request::new(7, 1234, 0), Request::new(u64::MAX, 1, 99)];
        let bytes = encoded(&Message::Get(reqs.clone()));
        let (msg, used) = decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(msg, Message::Get(reqs));
    }

    #[test]
    fn verdict_bytes_roundtrip() {
        for outcome in [VerdictOutcome::HocHit, VerdictOutcome::DcHit, VerdictOutcome::OriginFetch] {
            for admitted in [false, true] {
                let v = WireVerdict { outcome, admitted, retry_after: 0 };
                assert_eq!(WireVerdict::from_byte(v.to_byte()).unwrap(), v);
            }
        }
        for v in [WireVerdict::DROPPED, WireVerdict::UNAVAILABLE] {
            assert_eq!(WireVerdict::from_byte(v.to_byte()).unwrap(), v);
        }
        for hint in 0..=7 {
            let v = WireVerdict::busy(hint);
            assert_eq!(WireVerdict::from_byte(v.to_byte()).unwrap(), v);
        }
        assert_eq!(WireVerdict::busy(200).retry_after, 7, "hints clamp to the wire field");
    }

    #[test]
    fn impossible_verdict_bytes_are_rejected() {
        // Dropped/Unavailable/Busy + admitted, unassigned outcomes, a
        // retry_after hint on a non-Busy outcome, and the reserved bit 7.
        for b in [0b1011u8, 0b1100, 0b1101, 0b110, 0b111, 0b1_0000, 0b111_0100, 0x80, 0xFF] {
            assert_eq!(WireVerdict::from_byte(b), Err(WireError::BadVerdictByte(b)), "byte {b:#b}");
        }
    }

    #[test]
    fn truncated_frames_ask_for_more() {
        let bytes = encoded(&Message::Get(vec![Request::new(1, 2, 3)]));
        for cut in 0..bytes.len() {
            assert_eq!(decode(&bytes[..cut]).unwrap(), None, "prefix of {cut} bytes");
        }
    }

    #[test]
    fn bad_magic_fails_before_full_header() {
        assert_eq!(decode(&[0x00, 0x00]), Err(WireError::BadMagic(0)));
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut stream = Vec::new();
        let reqs = vec![Request::new(1, 10, 0), Request::new(2, 20, 5)];
        encode(&Message::Get(reqs.clone()), &mut stream);
        encode(&Message::Stats, &mut stream);
        // A reader over a one-byte-at-a-time source.
        struct Dribble<'a>(&'a [u8], usize);
        impl Read for Dribble<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut r = FrameReader::new(Dribble(&stream, 0));
        assert_eq!(r.recv().unwrap(), Some(Message::Get(reqs)));
        assert_eq!(r.recv().unwrap(), Some(Message::Stats));
        assert_eq!(r.recv().unwrap(), None);
        assert_eq!(r.bytes_read(), stream.len() as u64);
    }

    #[test]
    fn frame_reader_flags_mid_frame_eof() {
        let bytes = encoded(&Message::Get(vec![Request::new(1, 2, 3)]));
        let mut r = FrameReader::new(&bytes[..bytes.len() - 1]);
        match r.recv() {
            Err(RecvError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }
}
