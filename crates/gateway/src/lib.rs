#![warn(missing_docs)]

//! # darwin-gateway
//!
//! The network serving layer: a compact binary wire protocol and a TCP
//! front-end over the sharded fleet, plus a load-generator client.
//!
//! The paper deploys Darwin inside a production proxy (Apache Traffic
//! Server, §5) where requests arrive over the network and the learning
//! logic stays off the critical path. This crate reproduces that boundary
//! with `std`-only networking:
//!
//! * [`wire`] — the length-prefixed frame protocol (`GET` / `STATS` /
//!   `EVENTS` / `SHUTDOWN` and their replies), an incremental
//!   [`wire::FrameReader`], and hostile-input-safe decoding.
//! * [`server`] — [`server::Gateway`]: an acceptor plus thread-per-connection
//!   workers that route decoded requests through the existing
//!   [`ShardedFleet`](darwin_shard::ShardedFleet) shard queues and stream
//!   verdicts back with batched writes; graceful shutdown drains connections
//!   and joins the shard workers.
//! * [`loadgen`] — a pipelined client that replays a
//!   [`Trace`](darwin_trace::Trace) over N concurrent connections and
//!   reports throughput and latency percentiles (log-bucketed
//!   [`darwin_obs`] histograms), plus one-shot [`loadgen::fetch_stats`] /
//!   [`loadgen::fetch_events`] monitoring clients.
//! * [`netfault`] — a deterministic transport-fault injector
//!   ([`netfault::NetFaultPlan`]): scripted connection resets, stalls,
//!   frame corruption and accept pauses keyed off frame sequence numbers,
//!   for bit-for-bit reproducible hostile-network runs.
//!
//! The contract inherited from `darwin-shard` is preserved end to end: a
//! trace served through a loopback gateway on one connection produces
//! bitwise-identical cache metrics and deployed-expert sequences to an
//! in-process replay (`tests/loopback.rs`).

pub mod loadgen;
pub mod netfault;
pub mod server;
pub mod wire;

mod conn;

pub use loadgen::{ConnReport, ErrorStats, LoadgenConfig, LoadgenReport, VerdictTally};
pub use netfault::{NetFaultEvent, NetFaultKind, NetFaultPlan};
pub use server::{Gateway, GatewayConfig, GatewayError, ResizeAck, GATEWAY_JOURNAL_SHARD};
pub use wire::{Message, VerdictOutcome, WireError, WireVerdict};
