//! Per-connection reply plumbing.
//!
//! Each connection runs two threads: the *reader* decodes frames and submits
//! requests into the fleet, the *writer* streams replies back. In between
//! sits a [`ConnSink`]: frames are numbered in arrival order, each frame's
//! reply is pushed under its sequence number as soon as it is complete, and
//! the writer emits replies strictly in sequence — so clients can pipeline
//! and still match the *k*-th reply to the *k*-th frame they sent.
//!
//! A `GET` frame's reply is assembled by a [`PendingBatch`]: its records
//! travel through the shard queues as [`GatewayEnvelope`]s, each completing
//! (or being dropped — shedding fills a `Dropped` verdict from the
//! envelope's `Drop` impl) into its slot of the batch; the last arrival
//! pushes the assembled `VERDICTS` reply into the sink. Record order is
//! preserved no matter how shards interleave.

use crate::wire::{encode, encode_verdict_bytes, Message, WireVerdict};
use darwin_shard::{Envelope, Verdict};
use darwin_trace::Request;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One frame's reply, keyed in the sink by the frame's sequence number.
pub(crate) enum Reply {
    /// Assembled verdict bytes of a `GET` frame, in record order.
    Verdicts(Vec<u8>),
    /// JSON snapshot answering a `STATS` frame.
    Stats(String),
    /// Sealed fleet-events frame answering an `EVENTS` frame.
    Events(Vec<u8>),
    /// JSON ledger (or `{"error": …}`) answering a `RESIZE` frame.
    ResizeAck(String),
    /// Acknowledges a `SHUTDOWN` frame.
    ShutdownAck,
}

struct SinkState {
    ready: BTreeMap<u64, Reply>,
    next_write: u64,
    end_seq: Option<u64>,
    aborted: bool,
}

/// The ordered reply buffer between a connection's frame decoding (and the
/// shard workers completing its batches) and its writer thread.
pub(crate) struct ConnSink {
    state: Mutex<SinkState>,
    cv: Condvar,
}

impl ConnSink {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(SinkState {
                ready: BTreeMap::new(),
                next_write: 0,
                end_seq: None,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queues `reply` as the answer to frame `seq`. No-op after abort.
    pub(crate) fn push(&self, seq: u64, reply: Reply) {
        let mut st = self.state.lock().expect("sink poisoned");
        if st.aborted {
            return;
        }
        st.ready.insert(seq, reply);
        self.cv.notify_one();
    }

    /// Declares the stream complete: the writer exits once every reply below
    /// `end_seq` has been written.
    pub(crate) fn finish_at(&self, end_seq: u64) {
        let mut st = self.state.lock().expect("sink poisoned");
        st.end_seq = Some(end_seq);
        self.cv.notify_one();
    }

    /// Tears the sink down immediately (client gone, protocol error, or a
    /// panicking reader): pending replies are discarded, the writer wakes
    /// and exits, later pushes are ignored.
    pub(crate) fn abort(&self) {
        let mut st = self.state.lock().expect("sink poisoned");
        st.aborted = true;
        st.ready.clear();
        self.cv.notify_one();
    }

    /// Reader side: how many frames are still unanswered or unwritten if
    /// the next frame gets sequence number `seq`. This bounds the sink's
    /// reorder/reply memory: when the backlog reaches the gateway's cap the
    /// reader answers new `GET` frames `Busy` without submitting them, so a
    /// client that pipelines faster than it reads cannot grow the reply
    /// buffer without bound.
    pub(crate) fn backlog(&self, seq: u64) -> u64 {
        seq - self.state.lock().expect("sink poisoned").next_write
    }

    /// Writer side: blocks for the next run of consecutive ready replies.
    /// Returns `None` once the sink is aborted or drained through `end_seq`.
    fn next_run(&self) -> Option<Vec<Reply>> {
        let mut st = self.state.lock().expect("sink poisoned");
        loop {
            if st.aborted {
                return None;
            }
            let mut run = Vec::new();
            loop {
                let next = st.next_write;
                match st.ready.remove(&next) {
                    Some(r) => {
                        run.push(r);
                        st.next_write += 1;
                    }
                    None => break,
                }
            }
            if !run.is_empty() {
                return Some(run);
            }
            if st.end_seq.is_some_and(|end| st.next_write >= end) {
                return None;
            }
            st = self.cv.wait(st).expect("sink poisoned");
        }
    }
}

/// Aborts the sink when dropped — placed in the reader thread so that even a
/// panic (e.g. a dead shard detected mid-submit) releases the writer and
/// closes the socket instead of wedging the connection.
pub(crate) struct SinkGuard(pub(crate) Arc<ConnSink>);

impl Drop for SinkGuard {
    fn drop(&mut self) {
        self.0.abort();
    }
}

/// What the writer thread reports back for the gateway's counters.
pub(crate) struct WriterStats {
    pub(crate) bytes_out: u64,
    pub(crate) verdicts_out: u64,
    /// True when the writer gave up on a stalled client: a reply write sat
    /// in the socket buffer past the write-stall budget because the peer
    /// stopped reading. The connection was torn down (slow-client
    /// eviction).
    pub(crate) stalled: bool,
}

/// The writer loop: drains the sink in sequence order, encoding each run of
/// ready replies into one buffer and writing it with a single syscall (the
/// protocol's batched-write path). Exits on sink abort/drain or the first
/// write error (client disconnected).
///
/// With `write_stall` set, writes carry a socket timeout: a client that
/// stops reading replies (slowloris) stalls the write until the OS buffers
/// fill and the timeout expires, at which point the writer reports
/// `stalled`, aborts the sink and shuts the whole socket down — which also
/// unblocks the reader, so one stuck client cannot pin its connection
/// threads or grow reply memory forever.
pub(crate) fn writer_loop(
    sink: &ConnSink,
    mut stream: TcpStream,
    write_stall: Option<std::time::Duration>,
) -> WriterStats {
    let mut stats = WriterStats { bytes_out: 0, verdicts_out: 0, stalled: false };
    if write_stall.is_some() {
        let _ = stream.set_write_timeout(write_stall);
    }
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    while let Some(run) = sink.next_run() {
        out.clear();
        for reply in run {
            match reply {
                Reply::Verdicts(bytes) => {
                    stats.verdicts_out += bytes.len() as u64;
                    encode_verdict_bytes(&bytes, &mut out);
                }
                Reply::Stats(json) => encode(&Message::StatsReply(json), &mut out),
                Reply::Events(frame) => encode(&Message::EventsReply(frame), &mut out),
                Reply::ResizeAck(json) => encode(&Message::ResizeAck(json), &mut out),
                Reply::ShutdownAck => encode(&Message::ShutdownAck, &mut out),
            }
        }
        if let Err(e) = stream.write_all(&out) {
            stats.stalled =
                matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut);
            sink.abort();
            if stats.stalled {
                // Evict the slow client: closing both directions makes the
                // reader's next recv fail, tearing the connection down.
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            return stats;
        }
        stats.bytes_out += out.len() as u64;
    }
    // Drained (or aborted): signal end-of-replies to a still-reading client.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    stats
}

/// Assembles one `GET` frame's `VERDICTS` reply from its records' verdicts,
/// which arrive concurrently from the shard workers.
pub(crate) struct PendingBatch {
    seq: u64,
    sink: Arc<ConnSink>,
    verdicts: Vec<AtomicU8>,
    remaining: AtomicUsize,
}

impl PendingBatch {
    pub(crate) fn new(seq: u64, sink: Arc<ConnSink>, records: usize) -> Arc<Self> {
        debug_assert!(records > 0);
        Arc::new(Self {
            seq,
            sink,
            verdicts: (0..records).map(|_| AtomicU8::new(WireVerdict::DROPPED.to_byte())).collect(),
            remaining: AtomicUsize::new(records),
        })
    }

    fn fill(&self, index: usize, byte: u8) {
        self.verdicts[index].store(byte, Ordering::Relaxed);
        // The release of this fetch_sub publishes the store above to the
        // thread that observes the count hit zero (acquire side), so the
        // assembling thread sees every slot.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let bytes = self.verdicts.iter().map(|v| v.load(Ordering::Relaxed)).collect();
            self.sink.push(self.seq, Reply::Verdicts(bytes));
        }
    }
}

/// The envelope a gateway request travels the shard queue in: completion
/// routes the verdict into slot `index` of the originating frame's batch.
/// If the envelope is shed before reaching a worker (queue overflow under
/// `DropNewest`, or in flight when a shard worker dies) its `Drop` impl
/// files a `Dropped` verdict instead, and a request routed to a permanently
/// dead shard files `Unavailable` via [`Envelope::unavailable`] — every
/// record of every accepted frame is answered exactly once.
pub(crate) struct GatewayEnvelope {
    req: Request,
    slot: Option<(Arc<PendingBatch>, usize)>,
}

impl GatewayEnvelope {
    pub(crate) fn new(req: Request, batch: Arc<PendingBatch>, index: usize) -> Self {
        Self { req, slot: Some((batch, index)) }
    }
}

impl Envelope for GatewayEnvelope {
    fn request(&self) -> &Request {
        &self.req
    }

    fn complete(mut self, verdict: Verdict) {
        if let Some((batch, index)) = self.slot.take() {
            batch.fill(index, WireVerdict::from(verdict).to_byte());
        }
    }

    fn unavailable(mut self) {
        // Taking the slot defuses the `Drop` impl below, so the record is
        // answered `Unavailable`, not `Dropped`.
        if let Some((batch, index)) = self.slot.take() {
            batch.fill(index, WireVerdict::UNAVAILABLE.to_byte());
        }
    }

    fn shed(mut self, retry_after: u8) {
        // Overload shedding: the record is answered `Busy` with the fleet's
        // retry hint, not `Dropped` — the client is expected to resubmit.
        if let Some((batch, index)) = self.slot.take() {
            batch.fill(index, WireVerdict::busy(retry_after).to_byte());
        }
    }
}

impl Drop for GatewayEnvelope {
    fn drop(&mut self) {
        if let Some((batch, index)) = self.slot.take() {
            batch.fill(index, WireVerdict::DROPPED.to_byte());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_ready(sink: &ConnSink) -> Vec<Reply> {
        sink.finish_at(u64::MAX);
        let mut out = Vec::new();
        // end_seq = MAX keeps the writer-side wait alive, so only pull runs
        // that are already consecutive-ready.
        let mut st = sink.state.lock().unwrap();
        loop {
            let next = st.next_write;
            match st.ready.remove(&next) {
                Some(r) => {
                    out.push(r);
                    st.next_write += 1;
                }
                None => break,
            }
        }
        out
    }

    #[test]
    fn batch_assembles_in_record_order_regardless_of_fill_order() {
        let sink = Arc::new(ConnSink::new());
        let batch = PendingBatch::new(0, Arc::clone(&sink), 3);
        batch.fill(2, 2);
        batch.fill(0, 0);
        assert!(drain_ready(&sink).is_empty(), "incomplete batch must not be pushed");
        batch.fill(1, 1);
        match drain_ready(&sink).as_slice() {
            [Reply::Verdicts(bytes)] => assert_eq!(bytes, &vec![0, 1, 2]),
            _ => panic!("expected exactly one assembled verdict reply"),
        }
    }

    #[test]
    fn dropped_envelope_files_dropped_verdict() {
        let sink = Arc::new(ConnSink::new());
        let batch = PendingBatch::new(0, Arc::clone(&sink), 2);
        let env0 = GatewayEnvelope::new(Request::new(1, 10, 0), Arc::clone(&batch), 0);
        let env1 = GatewayEnvelope::new(Request::new(2, 10, 1), Arc::clone(&batch), 1);
        env0.complete(Verdict {
            shard: 0,
            outcome: darwin_cache::RequestOutcome::HocHit,
            admitted: false,
        });
        drop(env1); // shed at the queue
        match drain_ready(&sink).as_slice() {
            [Reply::Verdicts(bytes)] => {
                assert_eq!(
                    WireVerdict::from_byte(bytes[0]).unwrap().outcome,
                    crate::wire::VerdictOutcome::HocHit
                );
                assert_eq!(WireVerdict::from_byte(bytes[1]).unwrap(), WireVerdict::DROPPED);
            }
            _ => panic!("expected one reply"),
        }
    }

    #[test]
    fn shed_envelope_files_busy_verdict_with_hint() {
        let sink = Arc::new(ConnSink::new());
        let batch = PendingBatch::new(0, Arc::clone(&sink), 1);
        let env = GatewayEnvelope::new(Request::new(1, 10, 0), Arc::clone(&batch), 0);
        env.shed(3);
        match drain_ready(&sink).as_slice() {
            [Reply::Verdicts(bytes)] => {
                let v = WireVerdict::from_byte(bytes[0]).unwrap();
                assert_eq!(v, WireVerdict::busy(3));
                assert_eq!(v.retry_after, 3);
            }
            _ => panic!("expected one reply"),
        }
    }

    #[test]
    fn unavailable_envelope_files_unavailable_verdict() {
        let sink = Arc::new(ConnSink::new());
        let batch = PendingBatch::new(0, Arc::clone(&sink), 1);
        let env = GatewayEnvelope::new(Request::new(1, 10, 0), Arc::clone(&batch), 0);
        env.unavailable();
        match drain_ready(&sink).as_slice() {
            [Reply::Verdicts(bytes)] => {
                assert_eq!(WireVerdict::from_byte(bytes[0]).unwrap(), WireVerdict::UNAVAILABLE);
            }
            _ => panic!("expected one reply"),
        }
    }

    #[test]
    fn aborted_sink_ignores_pushes_and_releases_writer() {
        let sink = Arc::new(ConnSink::new());
        sink.push(0, Reply::ShutdownAck);
        sink.abort();
        sink.push(1, Reply::ShutdownAck);
        assert!(sink.next_run().is_none(), "aborted sink releases the writer");
    }

    #[test]
    fn next_run_collects_consecutive_replies() {
        let sink = Arc::new(ConnSink::new());
        sink.push(1, Reply::ShutdownAck);
        sink.push(0, Reply::Stats("{}".into()));
        let run = sink.next_run().expect("two consecutive replies ready");
        assert_eq!(run.len(), 2);
        assert!(matches!(run[0], Reply::Stats(_)));
        assert!(matches!(run[1], Reply::ShutdownAck));
        sink.finish_at(2);
        assert!(sink.next_run().is_none(), "drained through end_seq");
    }
}
