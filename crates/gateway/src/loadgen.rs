//! Load-generator client: replays a trace over N concurrent connections.
//!
//! The trace is split into contiguous per-connection chunks; each connection
//! streams its chunk as pipelined `GET` frames, keeping up to `window` frames
//! in flight, and records one round-trip latency sample per frame. A single
//! connection therefore preserves trace order exactly — the configuration the
//! end-to-end equivalence tests use — while multiple connections trade
//! ordering for throughput, as a real CDN front-end would.

use crate::wire::{encode_get, FrameReader, Message, VerdictOutcome, WireVerdict};
use darwin_trace::{Request, Trace};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How a [`run`] replays its trace.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Concurrent connections; the trace is split contiguously across them.
    pub connections: usize,
    /// Requests per `GET` frame.
    pub batch: usize,
    /// Frames each connection keeps in flight before reading a reply.
    pub window: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self { connections: 1, batch: 64, window: 8 }
    }
}

/// Counts of the verdicts a run received.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictTally {
    /// Requests served from the Hot Object Cache.
    pub hoc_hits: u64,
    /// Requests served from the Disk Cache.
    pub dc_hits: u64,
    /// Requests that went to the origin.
    pub origin_fetches: u64,
    /// Requests shed before processing.
    pub dropped: u64,
    /// Requests whose object was admitted into the HOC.
    pub admitted: u64,
}

impl VerdictTally {
    fn absorb(&mut self, v: WireVerdict) {
        match v.outcome {
            VerdictOutcome::HocHit => self.hoc_hits += 1,
            VerdictOutcome::DcHit => self.dc_hits += 1,
            VerdictOutcome::OriginFetch => self.origin_fetches += 1,
            VerdictOutcome::Dropped => self.dropped += 1,
        }
        if v.admitted {
            self.admitted += 1;
        }
    }

    fn merge(&mut self, other: VerdictTally) {
        self.hoc_hits += other.hoc_hits;
        self.dc_hits += other.dc_hits;
        self.origin_fetches += other.origin_fetches;
        self.dropped += other.dropped;
        self.admitted += other.admitted;
    }

    /// Total verdicts received.
    pub fn total(&self) -> u64 {
        self.hoc_hits + self.dc_hits + self.origin_fetches + self.dropped
    }
}

/// What a [`run`] measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent (= trace length).
    pub requests: u64,
    /// Wall-clock of the whole replay.
    pub elapsed: Duration,
    /// Per-outcome verdict counts, summed over connections.
    pub tally: VerdictTally,
    /// Per-frame round-trip latencies, sorted ascending.
    pub latencies: Vec<Duration>,
}

impl LoadgenReport {
    /// Requests per second over the whole replay.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// The `p`-th percentile frame round-trip (nearest-rank on the sorted
    /// samples); zero when no frames were measured.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = (p / 100.0 * (self.latencies.len() - 1) as f64).round() as usize;
        self.latencies[rank.min(self.latencies.len() - 1)]
    }
}

fn contiguous_chunks(trace: &[Request], parts: usize) -> Vec<&[Request]> {
    let n = trace.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(&trace[at..at + len]);
        at += len;
    }
    out
}

/// One connection's replay: pipelined writes with a bounded in-flight window.
fn replay_chunk(
    addr: &std::net::SocketAddr,
    chunk: &[Request],
    batch: usize,
    window: usize,
) -> io::Result<(VerdictTally, Vec<Duration>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut tally = VerdictTally::default();
    let mut latencies = Vec::with_capacity(chunk.len() / batch.max(1) + 1);
    let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(window);
    let mut buf = Vec::with_capacity(batch * crate::wire::GET_RECORD_LEN + crate::wire::HEADER_LEN);

    let mut read_reply =
        |reader: &mut FrameReader<TcpStream>, inflight: &mut VecDeque<Instant>| -> io::Result<()> {
            let sent = inflight.pop_front().expect("reply awaited with no frame in flight");
            match reader.recv() {
                Ok(Some(Message::Verdicts(vs))) => {
                    latencies.push(sent.elapsed());
                    for v in vs {
                        tally.absorb(v);
                    }
                    Ok(())
                }
                Ok(other) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected VERDICTS reply, got {other:?}"),
                )),
                Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        };

    for frame in chunk.chunks(batch.max(1)) {
        while inflight.len() >= window.max(1) {
            read_reply(&mut reader, &mut inflight)?;
        }
        buf.clear();
        encode_get(frame, &mut buf);
        stream.write_all(&buf)?;
        inflight.push_back(Instant::now());
    }
    while !inflight.is_empty() {
        read_reply(&mut reader, &mut inflight)?;
    }
    stream.shutdown(std::net::Shutdown::Write)?;
    latencies.sort_unstable();
    Ok((tally, latencies))
}

/// Replays `trace` against a gateway at `addr` and reports throughput,
/// latency percentiles and the verdict tally.
pub fn run(addr: impl ToSocketAddrs, trace: &Trace, cfg: LoadgenConfig) -> io::Result<LoadgenReport> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved for gateway"))?;
    let requests = trace.len() as u64;
    let chunks = contiguous_chunks(trace.requests(), cfg.connections.max(1));
    let started = Instant::now();
    let results: Vec<io::Result<(VerdictTally, Vec<Duration>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(move || replay_chunk(&addr, chunk, cfg.batch, cfg.window)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panic!("loadgen connection thread panicked")))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut tally = VerdictTally::default();
    let mut latencies = Vec::new();
    for r in results {
        let (t, l) = r?;
        tally.merge(t);
        latencies.extend(l);
    }
    latencies.sort_unstable();
    Ok(LoadgenReport { requests, elapsed, tally, latencies })
}

/// Asks a gateway for its JSON fleet-metrics snapshot (`STATS`).
pub fn fetch_stats(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&crate::wire::encoded(&Message::Stats))?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = FrameReader::new(stream);
    match reader.recv() {
        Ok(Some(Message::StatsReply(json))) => Ok(json),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected STATS_REPLY, got {other:?}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Sends a graceful-shutdown request and waits for its acknowledgement.
pub fn send_shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&crate::wire::encoded(&Message::Shutdown))?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = FrameReader::new(stream);
    match reader.recv() {
        Ok(Some(Message::ShutdownAck)) => Ok(()),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected SHUTDOWN_ACK, got {other:?}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_trace_contiguously() {
        let reqs: Vec<Request> = (0..10).map(|i| Request::new(i, 1, i)).collect();
        let chunks = contiguous_chunks(&reqs, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
        let flat: Vec<Request> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(flat, reqs);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let report = LoadgenReport {
            requests: 4,
            elapsed: Duration::from_secs(2),
            tally: VerdictTally::default(),
            latencies: (1..=4).map(Duration::from_millis).collect(),
        };
        assert_eq!(report.rps(), 2.0);
        assert_eq!(report.latency_percentile(0.0), Duration::from_millis(1));
        assert_eq!(report.latency_percentile(50.0), Duration::from_millis(3));
        assert_eq!(report.latency_percentile(99.0), Duration::from_millis(4));
    }
}
