//! Load-generator client: replays a trace over N concurrent connections.
//!
//! The trace is split into contiguous per-connection chunks; each connection
//! streams its chunk as pipelined `GET` frames, keeping up to `window` frames
//! in flight, and records one round-trip latency sample per frame. A single
//! connection therefore preserves trace order exactly — the configuration the
//! end-to-end equivalence tests use — while multiple connections trade
//! ordering for throughput, as a real CDN front-end would.
//!
//! ## Resilience
//!
//! A broken transport (refused connect, read timeout, reset, early EOF) does
//! not abort the replay: the connection reconnects with exponential backoff
//! plus seeded jitter and resubmits every frame whose reply it has not yet
//! tallied. Replies arrive strictly in frame order on a connection, so "the
//! answered prefix" is exactly the frames that are done — resubmission never
//! double-counts a verdict. Each failure is classified into [`ErrorStats`].
//!
//! ## Overload
//!
//! A record answered `Busy` (wire v4) was shed by an overloaded gateway and
//! is the client's to resubmit: it joins a retry queue, counted in
//! [`ErrorStats::shed`], and is resent — after a full-jitter backoff scaled
//! by the largest `retry_after` hint received — once every outstanding reply
//! is in. Retries repeat until the record earns a final verdict, so
//! [`VerdictTally::total`] still equals the trace length: shedding defers
//! work, it never loses it.

use crate::wire::{encode_get, FrameReader, Message, RecvError, VerdictOutcome, WireVerdict};
use darwin_obs::{decode_fleet_events, Histogram, HistogramSnapshot, JournalSnapshot};
use darwin_trace::{Request, Trace};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How a [`run`] replays its trace.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Concurrent connections; the trace is split contiguously across them.
    pub connections: usize,
    /// Requests per `GET` frame.
    pub batch: usize,
    /// Frames each connection keeps in flight before reading a reply.
    pub window: usize,
    /// Consecutive transport failures a connection tolerates (reconnecting
    /// after each) before the run gives up. Progress — any answered frame —
    /// resets the count.
    pub retries: u32,
    /// Backoff before the first reconnect attempt; doubles per consecutive
    /// failure.
    pub backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff delay.
    pub backoff_cap: Duration,
    /// Socket read timeout while awaiting replies (`None` = block forever).
    /// A timed-out read counts as a transport failure and triggers a
    /// reconnect-and-resubmit.
    pub read_timeout: Option<Duration>,
    /// Seed for the backoff jitter (per-connection streams are derived from
    /// it, so a fixed seed gives a reproducible retry schedule).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 1,
            batch: 64,
            window: 8,
            retries: 3,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            read_timeout: None,
            seed: 0x5EED,
        }
    }
}

/// Typed transport-error counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorStats {
    /// `connect()` attempts that failed.
    pub connect_failures: u64,
    /// Reads that hit the configured `read_timeout`.
    pub timeouts: u64,
    /// Connections reset, aborted, broken-piped, or closed before every
    /// in-flight frame was answered.
    pub resets: u64,
    /// Any other I/O failure.
    pub other_io: u64,
    /// Successful re-connections after a transport failure.
    pub reconnects: u64,
    /// Requests resubmitted because their frame was sent but unanswered
    /// when the transport failed.
    pub resubmitted: u64,
    /// Records answered `Busy` by an overloaded gateway and queued for a
    /// backed-off resend. Flow control, not a transport failure: disjoint
    /// from `resets`/`timeouts`, excluded from
    /// [`total_failures`](ErrorStats::total_failures), and every shed
    /// record is retried until it earns a final verdict.
    pub shed: u64,
}

impl ErrorStats {
    fn merge(&mut self, other: ErrorStats) {
        self.connect_failures += other.connect_failures;
        self.timeouts += other.timeouts;
        self.resets += other.resets;
        self.other_io += other.other_io;
        self.reconnects += other.reconnects;
        self.resubmitted += other.resubmitted;
        self.shed += other.shed;
    }

    /// Total transport failures (reconnects and resubmissions are recovery
    /// actions, not failures, and are excluded).
    pub fn total_failures(&self) -> u64 {
        self.connect_failures + self.timeouts + self.resets + self.other_io
    }

    fn classify(&mut self, e: &io::Error) {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => self.timeouts += 1,
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof => self.resets += 1,
            _ => self.other_io += 1,
        }
    }
}

/// Counts of the verdicts a run received.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictTally {
    /// Requests served from the Hot Object Cache.
    pub hoc_hits: u64,
    /// Requests served from the Disk Cache.
    pub dc_hits: u64,
    /// Requests that went to the origin.
    pub origin_fetches: u64,
    /// Requests shed before processing.
    pub dropped: u64,
    /// Requests answered `Unavailable` by a degraded gateway (their shard
    /// was permanently dead).
    pub unavailable: u64,
    /// Requests whose object was admitted into the HOC.
    pub admitted: u64,
}

impl VerdictTally {
    fn absorb(&mut self, v: WireVerdict) {
        match v.outcome {
            VerdictOutcome::HocHit => self.hoc_hits += 1,
            VerdictOutcome::DcHit => self.dc_hits += 1,
            VerdictOutcome::OriginFetch => self.origin_fetches += 1,
            VerdictOutcome::Dropped => self.dropped += 1,
            VerdictOutcome::Unavailable => self.unavailable += 1,
            // `Busy` is not a final verdict: callers route it to the retry
            // queue (ErrorStats::shed) instead of tallying it.
            VerdictOutcome::Busy => debug_assert!(false, "Busy must be retried, not tallied"),
        }
        if v.admitted {
            self.admitted += 1;
        }
    }

    fn merge(&mut self, other: VerdictTally) {
        self.hoc_hits += other.hoc_hits;
        self.dc_hits += other.dc_hits;
        self.origin_fetches += other.origin_fetches;
        self.dropped += other.dropped;
        self.unavailable += other.unavailable;
        self.admitted += other.admitted;
    }

    /// Total verdicts received.
    pub fn total(&self) -> u64 {
        self.hoc_hits + self.dc_hits + self.origin_fetches + self.dropped + self.unavailable
    }
}

/// One connection's share of a replay — the unit the fairness audits work
/// in: under per-connection rate limiting, no well-behaved connection's
/// served total should fall far below its fair share.
#[derive(Debug, Clone, Copy)]
pub struct ConnReport {
    /// Requests assigned to this connection (its contiguous trace chunk).
    pub requests: u64,
    /// Final verdicts this connection received (retried `Busy` excluded).
    pub tally: VerdictTally,
    /// Transport/overload counters for this connection alone.
    pub errors: ErrorStats,
}

/// What a [`run`] measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent (= trace length).
    pub requests: u64,
    /// Wall-clock of the whole replay.
    pub elapsed: Duration,
    /// Per-outcome verdict counts, summed over connections.
    pub tally: VerdictTally,
    /// Transport-error counters, summed over connections.
    pub errors: ErrorStats,
    /// Per-frame round-trip latencies as a merged log-bucketed histogram
    /// (one sample per answered frame; see [`darwin_obs`] for the bucket
    /// scheme and its ≈3.1% relative error bound).
    pub latency: HistogramSnapshot,
    /// Per-connection breakdown, in connection order.
    pub per_connection: Vec<ConnReport>,
}

impl LoadgenReport {
    /// Requests per second over the whole replay.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// The `p`-th percentile frame round-trip — nearest-rank over the
    /// histogram buckets ([`HistogramSnapshot::quantile`]), so the reported
    /// value is the bucket lower bound: never above the true sample,
    /// below it by at most the ≈3.1% bucket width. Zero when no frames
    /// were measured.
    ///
    /// # Panics
    ///
    /// If `p` is not a number in `[0, 100]`.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        Duration::from_nanos(self.latency.quantile(p))
    }
}

fn contiguous_chunks(trace: &[Request], parts: usize) -> Vec<&[Request]> {
    let n = trace.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(&trace[at..at + len]);
        at += len;
    }
    out
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential backoff with full jitter: uniform in
/// `(0, min(cap, backoff · 2^failures)]`, so concurrent reconnecting
/// connections spread out instead of stampeding.
fn backoff_delay(cfg: &LoadgenConfig, consecutive_failures: u32, rng: &mut u64) -> Duration {
    let ceiling = cfg
        .backoff
        .saturating_mul(1u32 << consecutive_failures.saturating_sub(1).min(20))
        .min(cfg.backoff_cap)
        .as_nanos() as u64;
    Duration::from_nanos(if ceiling == 0 { 0 } else { splitmix64(rng) % ceiling + 1 })
}

/// What one connection accumulated.
struct ChunkOutcome {
    tally: VerdictTally,
    errors: ErrorStats,
    latency: Histogram,
}

/// What a sent frame carried — an original trace frame (by index) or a
/// resend of previously shed records (owned, since shed records from
/// different frames get re-chunked together).
enum Sent {
    Original(usize),
    Retry(Vec<Request>),
}

/// One connection's replay: pipelined writes with a bounded in-flight
/// window, reconnecting (and resubmitting the unanswered suffix) on
/// transport failure.
///
/// Replies on a connection arrive strictly in frame order, so frames split
/// into an *answered prefix* (tallied, never resent) and an unanswered
/// suffix; after a reconnect the replay resumes at the first unanswered
/// frame. Records answered `Busy` join a retry queue and are resent after a
/// backoff scaled by the gateway's `retry_after` hint, once every
/// outstanding reply is in — shed work is deferred, never lost. Protocol
/// violations (a malformed or unexpected reply) are not transport failures
/// and abort the run — retrying a server that talks garbage only makes more
/// garbage.
fn replay_chunk(
    addr: &SocketAddr,
    chunk: &[Request],
    cfg: &LoadgenConfig,
    conn_index: usize,
) -> io::Result<ChunkOutcome> {
    let batch = cfg.batch.max(1);
    let frames: Vec<&[Request]> = chunk.chunks(batch).collect();
    let mut answered = 0usize; // original frames fully answered (prefix length)
    let mut sent_high = 0usize; // highest original frame index ever sent + 1
    let mut out = ChunkOutcome {
        tally: VerdictTally::default(),
        errors: ErrorStats::default(),
        latency: Histogram::new(),
    };
    let mut rng = cfg.seed ^ (conn_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut failures = 0u32; // consecutive, reset on progress
    let mut buf = Vec::with_capacity(batch * crate::wire::GET_RECORD_LEN + crate::wire::HEADER_LEN);
    let mut first_session = true;
    // Shed (`Busy`) records awaiting their backed-off resend, the largest
    // retry hint seen since the last resend, and resend frames ready to go.
    let mut retry: Vec<Request> = Vec::new();
    let mut retry_hint = 0u32;
    let mut resend: VecDeque<Vec<Request>> = VecDeque::new();
    let mut inflight: VecDeque<(Instant, Sent)> = VecDeque::with_capacity(cfg.window);

    'session: while answered < frames.len() || !retry.is_empty() || !resend.is_empty() {
        if !first_session {
            std::thread::sleep(backoff_delay(cfg, failures, &mut rng));
        }
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                out.errors.connect_failures += 1;
                failures += 1;
                if failures > cfg.retries {
                    return Err(e);
                }
                first_session = false;
                continue 'session;
            }
        };
        if !first_session {
            out.errors.reconnects += 1;
            // Everything sent but unanswered on the dead connection goes
            // again on this one: unanswered original frames are re-derived
            // from the answered prefix, in-flight resend frames give their
            // records back to the retry queue.
            let mut resubmit: usize = frames[answered..sent_high].iter().map(|f| f.len()).sum();
            for (_, what) in inflight.drain(..) {
                if let Sent::Retry(reqs) = what {
                    resubmit += reqs.len();
                    retry.extend(reqs);
                }
            }
            out.errors.resubmitted += resubmit as u64;
        }
        inflight.clear();
        first_session = false;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(cfg.read_timeout);
        let mut reader = match stream.try_clone() {
            Ok(read_half) => FrameReader::new(read_half),
            Err(e) => {
                out.errors.classify(&e);
                failures += 1;
                if failures > cfg.retries {
                    return Err(e);
                }
                continue 'session;
            }
        };
        let mut next_send = answered;
        sent_high = sent_high.max(answered);

        loop {
            // Top the window up — original frames first, then resends of
            // shed records — then (or when everything is sent) read.
            if inflight.len() < cfg.window.max(1) {
                if next_send < frames.len() {
                    buf.clear();
                    encode_get(frames[next_send], &mut buf);
                    if let Err(e) = stream.write_all(&buf) {
                        out.errors.classify(&e);
                        failures += 1;
                        if failures > cfg.retries {
                            return Err(e);
                        }
                        continue 'session;
                    }
                    inflight.push_back((Instant::now(), Sent::Original(next_send)));
                    next_send += 1;
                    sent_high = sent_high.max(next_send);
                    continue;
                }
                if let Some(reqs) = resend.pop_front() {
                    buf.clear();
                    encode_get(&reqs, &mut buf);
                    if let Err(e) = stream.write_all(&buf) {
                        resend.push_front(reqs);
                        out.errors.classify(&e);
                        failures += 1;
                        if failures > cfg.retries {
                            return Err(e);
                        }
                        continue 'session;
                    }
                    inflight.push_back((Instant::now(), Sent::Retry(reqs)));
                    continue;
                }
                if inflight.is_empty() && !retry.is_empty() {
                    // Every outstanding reply is in: honour the gateway's
                    // largest retry hint with a full-jitter backoff, then
                    // re-frame the shed records for resending.
                    std::thread::sleep(backoff_delay(cfg, retry_hint.clamp(1, 7), &mut rng));
                    retry_hint = 0;
                    for shed in retry.chunks(batch) {
                        resend.push_back(shed.to_vec());
                    }
                    retry.clear();
                    continue;
                }
            }
            if inflight.is_empty() {
                break; // all frames sent and answered, nothing left to retry
            }
            match reader.recv() {
                Ok(Some(Message::Verdicts(vs))) => {
                    let (sent, what) = inflight.pop_front().expect("verdicts with no frame in flight");
                    out.latency.record_duration(sent.elapsed());
                    let records: &[Request] = match &what {
                        Sent::Original(idx) => frames[*idx],
                        Sent::Retry(reqs) => reqs,
                    };
                    if vs.len() != records.len() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "frame of {} records answered with {} verdicts",
                                records.len(),
                                vs.len()
                            ),
                        ));
                    }
                    for (v, req) in vs.iter().zip(records) {
                        if v.outcome == VerdictOutcome::Busy {
                            out.errors.shed += 1;
                            retry_hint = retry_hint.max(u32::from(v.retry_after));
                            retry.push(*req);
                        } else {
                            out.tally.absorb(*v);
                        }
                    }
                    if matches!(what, Sent::Original(_)) {
                        answered += 1;
                    }
                    failures = 0;
                }
                Ok(None) => {
                    // EOF with frames still in flight: the gateway closed on
                    // us (shutdown or a torn connection) — reconnect.
                    out.errors.resets += 1;
                    failures += 1;
                    if failures > cfg.retries {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "gateway closed with frames unanswered",
                        ));
                    }
                    continue 'session;
                }
                Ok(Some(other)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected VERDICTS reply, got {other:?}"),
                    ));
                }
                Err(RecvError::Wire(e)) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                Err(RecvError::Io(e)) => {
                    out.errors.classify(&e);
                    failures += 1;
                    if failures > cfg.retries {
                        return Err(e);
                    }
                    continue 'session;
                }
            }
        }
    }
    Ok(out)
}

/// Replays `trace` against a gateway at `addr` and reports throughput,
/// latency percentiles and the verdict tally.
pub fn run(addr: impl ToSocketAddrs, trace: &Trace, cfg: LoadgenConfig) -> io::Result<LoadgenReport> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved for gateway"))?;
    let requests = trace.len() as u64;
    let chunks = contiguous_chunks(trace.requests(), cfg.connections.max(1));
    let started = Instant::now();
    let results: Vec<io::Result<ChunkOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || replay_chunk(&addr, chunk, &cfg, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panic!("loadgen connection thread panicked")))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut tally = VerdictTally::default();
    let mut errors = ErrorStats::default();
    let mut latency = HistogramSnapshot::default();
    let mut per_connection = Vec::with_capacity(chunks.len());
    for (r, chunk) in results.into_iter().zip(&chunks) {
        let out = r?;
        tally.merge(out.tally);
        errors.merge(out.errors);
        latency.merge(&out.latency.snapshot());
        per_connection.push(ConnReport {
            requests: chunk.len() as u64,
            tally: out.tally,
            errors: out.errors,
        });
    }
    Ok(LoadgenReport { requests, elapsed, tally, errors, latency, per_connection })
}

/// Asks a gateway for its JSON fleet-metrics snapshot (`STATS`).
pub fn fetch_stats(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&crate::wire::encoded(&Message::Stats))?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = FrameReader::new(stream);
    match reader.recv() {
        Ok(Some(Message::StatsReply(json))) => Ok(json),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected STATS_REPLY, got {other:?}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Asks a gateway for its per-shard event journals (`EVENTS`), decoded
/// into `(shard, journal)` pairs.
pub fn fetch_events(addr: impl ToSocketAddrs) -> io::Result<Vec<(u32, JournalSnapshot)>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&crate::wire::encoded(&Message::Events))?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = FrameReader::new(stream);
    match reader.recv() {
        Ok(Some(Message::EventsReply(frame))) => decode_fleet_events(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected EVENTS_REPLY, got {other:?}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Asks an elastic gateway to re-shard to `shards` shards (`RESIZE`) and
/// returns the parsed `RESIZE_ACK`. The ack arrives after the cutover
/// completes; a non-elastic gateway answers with `error` set (the wire
/// exchange itself still succeeds).
pub fn send_resize(addr: impl ToSocketAddrs, shards: u32) -> io::Result<crate::ResizeAck> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&crate::wire::encoded(&Message::Resize(shards)))?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = FrameReader::new(stream);
    match reader.recv() {
        Ok(Some(Message::ResizeAck(json))) => serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected RESIZE_ACK, got {other:?}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Sends a graceful-shutdown request and waits for its acknowledgement.
pub fn send_shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&crate::wire::encoded(&Message::Shutdown))?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = FrameReader::new(stream);
    match reader.recv() {
        Ok(Some(Message::ShutdownAck)) => Ok(()),
        Ok(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected SHUTDOWN_ACK, got {other:?}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_trace_contiguously() {
        let reqs: Vec<Request> = (0..10).map(|i| Request::new(i, 1, i)).collect();
        let chunks = contiguous_chunks(&reqs, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
        let flat: Vec<Request> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(flat, reqs);
    }

    #[test]
    fn backoff_is_bounded_jittered_and_reproducible() {
        let cfg = LoadgenConfig {
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            ..LoadgenConfig::default()
        };
        for failures in 1..=10u32 {
            let ceiling = cfg.backoff.saturating_mul(1 << (failures - 1)).min(cfg.backoff_cap);
            let mut rng = 7;
            let d = backoff_delay(&cfg, failures, &mut rng);
            assert!(d > Duration::ZERO && d <= ceiling, "failures={failures}: {d:?} vs {ceiling:?}");
        }
        let (mut a, mut b) = (42u64, 42u64);
        for failures in 1..=5 {
            assert_eq!(backoff_delay(&cfg, failures, &mut a), backoff_delay(&cfg, failures, &mut b));
        }
    }

    /// A server that answers one frame then slams the door forces the client
    /// through its reconnect path; the second session answers everything.
    /// Every request must end up tallied exactly once.
    #[test]
    fn reconnect_resubmits_the_unanswered_suffix() {
        use crate::wire::encode_verdict_bytes;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let answer = |stream: &TcpStream, records: usize| {
                let bytes = vec![WireVerdict::DROPPED.to_byte(); records];
                let mut out = Vec::new();
                encode_verdict_bytes(&bytes, &mut out);
                (&mut &*stream).write_all(&out).unwrap();
            };
            // Session 1: one answer, then disconnect mid-conversation.
            let (s, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(s.try_clone().unwrap());
            if let Ok(Some(Message::Get(recs))) = reader.recv() {
                answer(&s, recs.len());
            }
            drop(reader);
            drop(s);
            // Session 2: answer until the client is done.
            let (s, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(s.try_clone().unwrap());
            while let Ok(Some(msg)) = reader.recv() {
                if let Message::Get(recs) = msg {
                    answer(&s, recs.len());
                }
            }
        });

        let reqs: Vec<Request> = (0..12).map(|i| Request::new(i, 100, i)).collect();
        let trace = Trace::from_requests(reqs);
        let cfg = LoadgenConfig {
            connections: 1,
            batch: 3,
            window: 8,
            retries: 5,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..LoadgenConfig::default()
        };
        let report = run(addr, &trace, cfg).expect("replay should survive the disconnect");
        server.join().unwrap();
        assert_eq!(report.tally.total(), 12, "every request answered exactly once");
        assert_eq!(report.errors.reconnects, 1);
        assert!(report.errors.resets >= 1, "the slammed door must be classified: {:?}", report.errors);
        assert!(report.errors.resubmitted >= 3, "at least one frame resent: {:?}", report.errors);
    }

    /// A gateway that sheds the first `GET` frame (every record `Busy`)
    /// must see those records again: the client backs off, resends, and
    /// still tallies every request exactly once — no reconnect involved.
    #[test]
    fn busy_records_are_resent_until_answered() {
        use crate::wire::encode_verdict_bytes;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(s.try_clone().unwrap());
            let mut first = true;
            let mut shed = 0u64;
            while let Ok(Some(Message::Get(recs))) = reader.recv() {
                let byte = if first {
                    shed = recs.len() as u64;
                    WireVerdict::busy(2).to_byte()
                } else {
                    WireVerdict::DROPPED.to_byte()
                };
                first = false;
                let mut out = Vec::new();
                encode_verdict_bytes(&vec![byte; recs.len()], &mut out);
                (&mut &s).write_all(&out).unwrap();
            }
            shed
        });

        let reqs: Vec<Request> = (0..6).map(|i| Request::new(i, 100, i)).collect();
        let trace = Trace::from_requests(reqs);
        let cfg = LoadgenConfig {
            connections: 1,
            batch: 3,
            window: 1,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..LoadgenConfig::default()
        };
        let report = run(addr, &trace, cfg).expect("shedding is not a failure");
        let shed = server.join().unwrap();
        assert_eq!(shed, 3, "the first frame was shed whole");
        assert_eq!(report.errors.shed, 3, "shed records counted: {:?}", report.errors);
        assert_eq!(report.errors.total_failures(), 0, "shedding is flow control, not failure");
        assert_eq!(report.tally.total(), 6, "every request still answered exactly once");
        assert_eq!(report.per_connection.len(), 1);
        assert_eq!(report.per_connection[0].requests, 6);
    }

    /// A report whose latency histogram was fed the given millisecond
    /// samples.
    fn report_with_latencies(samples_ms: &[u64]) -> LoadgenReport {
        let h = Histogram::new();
        for &ms in samples_ms {
            h.record_duration(Duration::from_millis(ms));
        }
        LoadgenReport {
            requests: samples_ms.len() as u64,
            elapsed: Duration::from_secs(2),
            tally: VerdictTally::default(),
            errors: ErrorStats::default(),
            latency: h.snapshot(),
            per_connection: Vec::new(),
        }
    }

    /// A bucketed quantile reports the bucket lower bound: never above the
    /// true sample, below it by at most the ≈3.1% bucket width.
    fn assert_within_bucket(got: Duration, sample: Duration) {
        assert!(got <= sample, "bucket floor {got:?} above sample {sample:?}");
        let floor = sample - Duration::from_nanos(sample.as_nanos() as u64 / 32);
        assert!(got >= floor, "{got:?} undershoots {sample:?} by more than a bucket");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let report = report_with_latencies(&[1, 2, 3, 4]);
        assert_eq!(report.rps(), 2.0);
        assert_within_bucket(report.latency_percentile(0.0), Duration::from_millis(1));
        // Nearest-rank: ⌈50/100 · 4⌉ = rank 2, i.e. the 2ms sample — *not*
        // the rounded-interpolation 3ms the old implementation returned.
        // The histogram reports the sample's bucket floor, so the regression
        // assertion is the bucket error bound around 2ms.
        assert_within_bucket(report.latency_percentile(50.0), Duration::from_millis(2));
        assert_within_bucket(report.latency_percentile(75.0), Duration::from_millis(3));
        assert_within_bucket(report.latency_percentile(99.0), Duration::from_millis(4));
        assert_within_bucket(report.latency_percentile(100.0), Duration::from_millis(4));
        // Odd-length sanity: p50 of [1..=5] is the middle sample.
        let odd = report_with_latencies(&[1, 2, 3, 4, 5]);
        assert_within_bucket(odd.latency_percentile(50.0), Duration::from_millis(3));
        // No samples: zero, regardless of p.
        let empty = report_with_latencies(&[]);
        assert_eq!(empty.latency_percentile(99.0), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn percentile_above_100_is_rejected() {
        let _ = report_with_latencies(&[1]).latency_percentile(100.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn negative_percentile_is_rejected() {
        let _ = report_with_latencies(&[1]).latency_percentile(-1.0);
    }
}
