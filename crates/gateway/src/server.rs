//! The TCP gateway: acceptor, connection workers, graceful shutdown.
//!
//! ```text
//!            ┌──────────────────────────── Gateway ───────────────────────┐
//!            │ acceptor thread (nonblocking accept + shutdown flag)       │
//!            │   ├─ conn 0: reader ─▶ FleetProducer 0 ─▶ per-shard lanes  │
//! clients ──▶│   │          writer ◀── ConnSink (seq-ordered replies) ◀───┼── verdicts
//!            │   └─ conn k: reader ─▶ FleetProducer k ─▶ per-shard lanes  │
//!            │ STATS / EVENTS / SHUTDOWN bypass the ingest path entirely  │
//!            └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each connection reader owns a private [`FleetProducer`]: it routes a
//! whole decoded `GET` frame into per-shard runs and delivers each run with
//! one batched queue operation, so N connections contend per *shard* (on
//! that shard's lane) instead of serializing through one fleet-wide lock.
//! Backpressure (a full shard queue under
//! [`Backpressure::Block`](darwin_shard::Backpressure::Block)) therefore
//! stalls only the submitting connections, never monitoring: `STATS` frames
//! read the fleet through its non-blocking [`MetricsHandle`] and answer even
//! while every submitter is blocked.

use crate::conn::{writer_loop, ConnSink, GatewayEnvelope, PendingBatch, Reply, SinkGuard};
use crate::netfault::{spin, NetFaultKind, NetFaultPlan};
use crate::wire::{FrameReader, Message, RecvError, WireVerdict};
use darwin_cache::CacheConfig;
use darwin_obs::{EventKind, Journal, JournalSnapshot};
use darwin_rebalance::{ElasticFleet, ElasticReport, RingRouter};
use darwin_shard::{
    FaultPlan, FleetBoot, FleetConfig, FleetIngest, FleetMetrics, FleetProducer, FleetReport,
    GatewaySnapshot, GenerationSummary, MetricsHandle, Router, ShardedFleet,
};
use darwin_testbed::AdmissionDriver;
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pseudo-shard id the gateway's own event journal travels under in an
/// `EVENTS` reply, alongside the real shards (whose ids are dense from 0).
pub const GATEWAY_JOURNAL_SHARD: u32 = u32::MAX;

/// How a gateway shut down unhappily.
///
/// A shard worker dying is *not* in this list: the fleet's supervisor
/// restarts it (or buries the shard once its restart budget is spent), and
/// the final [`FleetReport`] carries the restart and dead-shard counts —
/// degraded service, not an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// The acceptor thread panicked.
    AcceptorPanicked,
    /// This many connection workers panicked (a writer failure the reader
    /// could not absorb).
    ConnectionPanicked(usize),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::AcceptorPanicked => write!(f, "gateway acceptor thread panicked"),
            GatewayError::ConnectionPanicked(n) => {
                write!(f, "{n} gateway connection worker(s) panicked")
            }
        }
    }
}

impl std::error::Error for GatewayError {}

/// Gateway-side tuning knobs, separate from the fleet's [`FleetConfig`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Per-connection socket read timeout. This is the gateway's
    /// shutdown-latency / idle-cost dial: a quiet connection only notices a
    /// shutdown request (or its idle deadline) when a read times out, so
    /// smaller values make shutdown and the idle cutoff more responsive at
    /// the price of more wakeups per quiet connection; larger values are
    /// cheaper but let quiet connections linger after
    /// [`Gateway::shutdown`]. It does **not** bound how long a client may
    /// take to send a frame — timeouts without a shutdown or idle deadline
    /// pending simply re-arm the read.
    pub read_timeout: Duration,
    /// Close a connection after this long without a decoded frame (`None` =
    /// never). Resolution is bounded below by `read_timeout`: the idle clock
    /// is only consulted when a read times out.
    pub idle_timeout: Option<Duration>,
    /// Scripted faults threaded into the shard workers
    /// ([`ShardedFleet::with_fault_plan`]). The empty plan is the identity;
    /// production paths leave it empty.
    pub fault_plan: FaultPlan,
    /// Directory for on-disk warm-restart checkpoint spills
    /// (`shard-{s}.ckpt`, written via atomic rename). `None` keeps
    /// checkpoints in memory only. Only meaningful when the fleet's
    /// `checkpoint_every` is set.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// With `checkpoint_dir` set, restore each shard from its spill file at
    /// startup (the cross-process warm boot) instead of clearing the
    /// directory. A spill that fails validation is detected cold per shard:
    /// the shard journals `RestoreCold`, drops the bad file and starts
    /// empty. `false` restores the historical cold-start semantics (the
    /// `--cold-boot` flag).
    pub warm_boot: bool,
    /// Per-connection fair-share rate limit, in records per second (`None` =
    /// unlimited). Enforced by a token bucket with a one-second burst
    /// allowance: a `GET` frame that would overdraw the bucket is answered
    /// `Busy` for every record — without touching the fleet — so one greedy
    /// client cannot starve its well-behaved neighbours (the `--conn-rate`
    /// flag).
    pub conn_rate: Option<u64>,
    /// How long a reply write may sit in the socket buffer before the
    /// connection is declared a slow client and evicted (`None` = wait
    /// forever, the historical behaviour; the `--write-stall-ms` flag).
    pub write_stall: Option<Duration>,
    /// Bound on a connection's reply backlog, in frames: decoded frames
    /// whose reply has not yet been written. At the bound, new `GET` frames
    /// are answered `Busy` without fleet submission, so a client that
    /// pipelines faster than it reads cannot grow the sink's reorder/reply
    /// memory without bound.
    pub sink_backlog: u64,
    /// Scripted transport-layer faults (resets, stalls, frame corruption,
    /// accept pauses), keyed off connection ids and frame sequence numbers —
    /// deterministic, no wall clock. The empty plan is the identity.
    pub net_fault_plan: NetFaultPlan,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_millis(50),
            idle_timeout: None,
            fault_plan: FaultPlan::default(),
            checkpoint_dir: None,
            warm_boot: true,
            conn_rate: None,
            write_stall: None,
            sink_backlog: 1024,
            net_fault_plan: NetFaultPlan::default(),
        }
    }
}

/// The gateway's own counters (see [`GatewaySnapshot`] for field meanings).
#[derive(Debug, Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    idle_closed: AtomicU64,
    frames_in: AtomicU64,
    frames_rejected: AtomicU64,
    requests_in: AtomicU64,
    verdicts_out: AtomicU64,
    stats_served: AtomicU64,
    events_served: AtomicU64,
    resizes_served: AtomicU64,
    shed: AtomicU64,
    throttled: AtomicU64,
    slow_closed: AtomicU64,
    net_faults: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl Counters {
    fn add(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> GatewaySnapshot {
        GatewaySnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            requests_in: self.requests_in.load(Ordering::Relaxed),
            verdicts_out: self.verdicts_out.load(Ordering::Relaxed),
            stats_served: self.stats_served.load(Ordering::Relaxed),
            events_served: self.events_served.load(Ordering::Relaxed),
            resizes_served: self.resizes_served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            slow_closed: self.slow_closed.load(Ordering::Relaxed),
            net_faults: self.net_faults.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Decrements the active-connection gauge even when the reader panics.
struct ActiveGuard(Arc<Counters>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.connections_active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The JSON body of a `RESIZE_ACK` frame: the performed resize's ledger,
/// or an `error` explaining the refusal (non-elastic gateway, degenerate
/// target, or a failed handoff).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResizeAck {
    /// `Some` when the resize was refused or failed; the remaining fields
    /// then describe the unchanged serving fleet (zeros on a non-elastic
    /// gateway).
    #[serde(default)]
    pub error: Option<String>,
    /// Serving router generation after the ack.
    pub generation: u32,
    /// Serving shard count after the ack.
    pub shards: u32,
    /// Shards whose final cut was shipped into the new generation by this
    /// resize (0 on a refusal).
    pub transferred_shards: u32,
    /// Retired generations' ledger rows, oldest first — the
    /// [`GenerationSummary`] audit trail `STATS` also carries.
    pub ledger: Vec<GenerationSummary>,
}

/// The fleet behind the gateway: fixed-size (the historical shape, with a
/// lock-free per-connection ingest path) or elastic (re-shardable live by
/// `RESIZE` frames, every access through its generation lock).
enum FleetCore<D: AdmissionDriver + Send + 'static> {
    /// A fixed [`ShardedFleet`]: the ingest and metrics handles are minted
    /// once at bind and stay valid for the gateway's life.
    Static {
        /// Held only for [`Gateway::finish`]; the serving path never locks
        /// it.
        fleet: Mutex<Option<ShardedFleet<D, GatewayEnvelope>>>,
        /// Multi-producer ingest front: each connection mints its own
        /// producer.
        ingest: FleetIngest<D, GatewayEnvelope>,
        metrics: MetricsHandle,
    },
    /// An [`ElasticFleet`]: a `RESIZE` frame drains the serving generation
    /// and boots the next one, so ingest and metrics go through the fleet's
    /// generation lock on every call instead of a cached handle.
    Elastic(Box<ElasticFleet<D, GatewayEnvelope>>),
}

struct Shared<D: AdmissionDriver + Send + 'static> {
    core: FleetCore<D>,
    counters: Arc<Counters>,
    /// The gateway's own event journal (shed episodes, net faults, evicted
    /// slow clients). Rides the `EVENTS` reply as pseudo-shard
    /// [`GATEWAY_JOURNAL_SHARD`].
    journal: Journal,
    shutdown: AtomicBool,
    read_timeout: Duration,
    idle_timeout: Option<Duration>,
    conn_rate: Option<u64>,
    write_stall: Option<Duration>,
    sink_backlog: u64,
    net_fault_plan: NetFaultPlan,
}

impl<D: AdmissionDriver + Send + 'static> Shared<D> {
    /// Fleet snapshot with the gateway counters folded in — non-blocking by
    /// construction for a static fleet (shard cells + atomics, no fleet
    /// mutex); an elastic fleet reads through its generation lock, so a
    /// snapshot taken during a resize waits for the cutover.
    fn fleet_metrics(&self) -> FleetMetrics {
        let snap = match &self.core {
            FleetCore::Static { metrics, .. } => metrics.snapshot(),
            FleetCore::Elastic(fleet) => fleet.metrics(),
        };
        snap.with_gateway(self.counters.snapshot())
    }

    /// The shard journals an `EVENTS` reply drains: the fixed fleet's, or
    /// the elastic fleet's *serving* generation (retired generations' rings
    /// retire with their cells).
    fn journals(&self) -> Vec<(u32, JournalSnapshot)> {
        match &self.core {
            FleetCore::Static { metrics, .. } => metrics.journals(),
            FleetCore::Elastic(fleet) => fleet.metrics_handle().journals(),
        }
    }

    /// Answers one `RESIZE` frame. On an elastic gateway this *performs*
    /// the resize inline on the connection's reader thread (concurrent
    /// resizes serialize on the generation lock) and acks with the new
    /// generation plus the retired-generation ledger; a static gateway — or
    /// a degenerate target — refuses with an `{"error": …}` ack. The reply
    /// is always a `RESIZE_ACK`: a refused resize is a protocol answer,
    /// not a dropped connection.
    fn handle_resize(&self, target: u32) -> String {
        let ack = match &self.core {
            FleetCore::Static { .. } => ResizeAck {
                error: Some("gateway is not elastic (start it with --elastic)".into()),
                generation: 0,
                shards: 0,
                transferred_shards: 0,
                ledger: Vec::new(),
            },
            FleetCore::Elastic(fleet) => {
                let outcome = if target == 0 {
                    Err("resize target must be at least one shard".to_string())
                } else {
                    fleet.resize(target as usize).map_err(|e| format!("resize failed: {e}"))
                };
                ResizeAck {
                    transferred_shards: outcome.as_ref().map_or(0, |t| t.len() as u32),
                    error: outcome.err(),
                    generation: fleet.generation(),
                    shards: fleet.shards() as u32,
                    ledger: fleet.metrics().generations,
                }
            }
        };
        serde_json::to_string(&ack).expect("resize ack serialization cannot fail")
    }
}

/// A running TCP gateway over a [`ShardedFleet`].
///
/// Bind with [`Gateway::bind`], point clients (e.g. the `loadgen` binary or
/// [`crate::loadgen`]) at [`local_addr`](Self::local_addr), then
/// [`finish`](Self::finish) to drain connections, join the shard workers and
/// collect the final [`FleetReport`].
pub struct Gateway<D: AdmissionDriver + Send + 'static> {
    shared: Arc<Shared<D>>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    addr: SocketAddr,
}

impl<D: AdmissionDriver + Send + 'static> Gateway<D> {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns the fleet
    /// plus the acceptor thread with default [`GatewayConfig`] knobs.
    /// `factory(s)` builds shard `s`'s admission driver, exactly as in
    /// [`ShardedFleet::new`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        factory: impl FnMut(usize) -> D + Send + 'static,
    ) -> std::io::Result<Self> {
        Self::bind_with(addr, cfg, cache, router, GatewayConfig::default(), factory)
    }

    /// [`bind`](Self::bind) with explicit gateway knobs: connection
    /// deadlines and (for chaos tests) a scripted fault plan.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        cfg: FleetConfig,
        cache: CacheConfig,
        router: Box<dyn Router>,
        gateway: GatewayConfig,
        factory: impl FnMut(usize) -> D + Send + 'static,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let fleet: ShardedFleet<D, GatewayEnvelope> = ShardedFleet::with_boot(
            cfg,
            cache,
            router,
            factory,
            gateway.fault_plan.clone(),
            FleetBoot {
                checkpoint_dir: gateway.checkpoint_dir.clone(),
                warm_boot: gateway.warm_boot,
                ..FleetBoot::default()
            },
        );
        let core = FleetCore::Static {
            metrics: fleet.metrics_handle(),
            ingest: fleet.ingest(),
            fleet: Mutex::new(Some(fleet)),
        };
        Self::launch(listener, addr, core, gateway)
    }

    /// Binds an *elastic* gateway: the fleet behind it is an
    /// [`ElasticFleet`] routed by the consistent-hash `ring`, and a client
    /// `RESIZE` frame re-shards it live (drain, final cuts, delta-shipped
    /// handoff, warm boot — answered with a `RESIZE_ACK` carrying the
    /// generation ledger). Collect the final report with
    /// [`finish_elastic`](Self::finish_elastic), not
    /// [`finish`](Self::finish).
    ///
    /// The scripted shard fault plan in `gateway` is ignored on this path:
    /// [`ElasticFleet`] boots every generation fault-free.
    pub fn bind_elastic(
        addr: impl ToSocketAddrs,
        cfg: FleetConfig,
        cache: CacheConfig,
        ring: RingRouter,
        gateway: GatewayConfig,
        factory: impl FnMut(usize) -> D + Send + 'static,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let fleet: ElasticFleet<D, GatewayEnvelope> = ElasticFleet::new(
            cfg,
            cache,
            ring,
            factory,
            gateway.checkpoint_dir.clone(),
            gateway.warm_boot,
        );
        Self::launch(listener, addr, FleetCore::Elastic(Box::new(fleet)), gateway)
    }

    /// Shared tail of the bind paths: wraps `core` in the connection-shared
    /// state and spawns the acceptor.
    fn launch(
        listener: TcpListener,
        addr: SocketAddr,
        core: FleetCore<D>,
        gateway: GatewayConfig,
    ) -> std::io::Result<Self> {
        let shared = Arc::new(Shared {
            core,
            counters: Arc::new(Counters::default()),
            journal: Journal::default(),
            shutdown: AtomicBool::new(false),
            read_timeout: gateway.read_timeout,
            idle_timeout: gateway.idle_timeout,
            conn_rate: gateway.conn_rate,
            write_stall: gateway.write_stall,
            sink_backlog: gateway.sink_backlog.max(1),
            net_fault_plan: gateway.net_fault_plan,
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("gw-accept".into())
            .spawn(move || acceptor_loop(listener, acceptor_shared))?;
        Ok(Self { shared, acceptor: Some(acceptor), addr })
    }

    /// The address the gateway is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Non-blocking fleet + gateway metrics snapshot (the same document a
    /// `STATS` frame returns).
    pub fn metrics(&self) -> FleetMetrics {
        self.shared.fleet_metrics()
    }

    /// Requests a graceful shutdown: stop accepting, let connections drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// True once shutdown was requested (by [`shutdown`](Self::shutdown) or
    /// a client's `SHUTDOWN` frame).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until shutdown is requested.
    pub fn wait_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful shutdown: stops accepting, drains and joins every
    /// connection, joins the shard workers, and returns the final report.
    /// Gateway-thread panics surface as `Err`; shard-worker deaths do not —
    /// the supervisor has already absorbed them, and the report's
    /// `total_restarts()` / `dead_shards()` say how bumpy the ride was.
    /// Panics on an elastic gateway — use
    /// [`finish_elastic`](Self::finish_elastic) there.
    pub fn finish(mut self) -> Result<FleetReport<D>, GatewayError> {
        let panicked = self.join_workers()?;
        let FleetCore::Static { fleet, .. } = &self.shared.core else {
            panic!("elastic gateway: collect the report with finish_elastic()");
        };
        let fleet = match fleet.lock() {
            Ok(mut guard) => guard.take(),
            // A reader that panicked mid-submit poisons the mutex; the fleet
            // itself is still recoverable.
            Err(poisoned) => poisoned.into_inner().take(),
        }
        .expect("fleet taken exactly once");
        let report = fleet.finish();
        if panicked > 0 {
            return Err(GatewayError::ConnectionPanicked(panicked));
        }
        Ok(report)
    }

    /// [`finish`](Self::finish) for a gateway bound with
    /// [`bind_elastic`](Self::bind_elastic): drains and joins every
    /// connection, then drains the serving generation (cutting final
    /// checkpoints into the spill directory when one is configured) and
    /// returns the [`ElasticReport`] merged across every generation.
    /// Panics on a static gateway.
    pub fn finish_elastic(mut self) -> Result<ElasticReport, GatewayError> {
        let panicked = self.join_workers()?;
        let FleetCore::Elastic(fleet) = &self.shared.core else {
            panic!("static gateway: collect the report with finish()");
        };
        let report = fleet.finish_live(true);
        if panicked > 0 {
            return Err(GatewayError::ConnectionPanicked(panicked));
        }
        Ok(report)
    }

    /// Stops accepting and joins the acceptor plus every connection worker;
    /// returns how many connection workers panicked.
    fn join_workers(&mut self) -> Result<usize, GatewayError> {
        self.shutdown();
        let conns = self
            .acceptor
            .take()
            .expect("finish consumes the gateway")
            .join()
            .map_err(|_| GatewayError::AcceptorPanicked)?;
        Ok(conns.into_iter().map(|c| c.join()).filter(Result::is_err).count())
    }
}

fn acceptor_loop<D: AdmissionDriver + Send + 'static>(
    listener: TcpListener,
    shared: Arc<Shared<D>>,
) -> Vec<JoinHandle<()>> {
    let mut conns = Vec::new();
    let mut next_id = 0u64;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                Counters::add(&shared.counters.connections_accepted, 1);
                shared.counters.connections_active.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let id = next_id;
                next_id += 1;
                // Scripted listen-queue stall: spin before handing the
                // connection to its worker, so every later frame on every
                // connection observes the same accept ordering.
                if let Some(spins) = shared.net_fault_plan.accept_pause(id) {
                    Counters::add(&shared.counters.net_faults, 1);
                    shared.journal.record(
                        id,
                        EventKind::NetFault {
                            conn: id,
                            frame: 0,
                            fault: NetFaultKind::AcceptPause { spins }.label(),
                        },
                    );
                    spin(spins);
                }
                let handle = std::thread::Builder::new()
                    .name(format!("gw-conn-{id}"))
                    .spawn(move || connection(id, stream, conn_shared))
                    .expect("spawn gateway connection worker");
                conns.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    conns
}

/// The per-connection fair-share limiter: a token bucket holding up to one
/// second's worth of records, refilled continuously at `rate` records per
/// second. A `GET` frame is admitted whole or shed whole — partial frames
/// would break the one-reply-per-frame protocol invariant.
struct TokenBucket {
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: u64) -> Self {
        let rate = rate.max(1) as f64;
        Self { rate, tokens: rate, last: Instant::now() }
    }

    fn admit(&mut self, records: u64) -> bool {
        let now = Instant::now();
        self.tokens =
            (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate).min(self.rate);
        self.last = now;
        if self.tokens >= records as f64 {
            self.tokens -= records as f64;
            true
        } else {
            false
        }
    }
}

/// One connection's reader: decodes frames, submits `GET` records through
/// the fleet, answers `STATS`/`SHUTDOWN` off the metrics handle, and on exit
/// either drains (clean EOF / shutdown: every accepted frame still gets its
/// reply) or aborts (protocol violation / transport error).
fn connection<D: AdmissionDriver + Send + 'static>(id: u64, stream: TcpStream, shared: Arc<Shared<D>>) {
    let counters = Arc::clone(&shared.counters);
    let _active = ActiveGuard(Arc::clone(&counters));
    let _ = stream.set_nodelay(true);
    // The read timeout bounds how long a quiet connection takes to notice a
    // gateway-side shutdown request or its idle deadline (see
    // `GatewayConfig::read_timeout` for the tradeoff).
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let sink = Arc::new(ConnSink::new());
    let sink_guard = SinkGuard(Arc::clone(&sink));
    let writer = {
        let sink = Arc::clone(&sink);
        let writer_shared = Arc::clone(&shared);
        let write_stall = shared.write_stall;
        std::thread::Builder::new()
            .name("gw-write".into())
            .spawn(move || {
                let stats = writer_loop(&sink, write_half, write_stall);
                Counters::add(&writer_shared.counters.bytes_out, stats.bytes_out);
                Counters::add(&writer_shared.counters.verdicts_out, stats.verdicts_out);
                if stats.stalled {
                    Counters::add(&writer_shared.counters.slow_closed, 1);
                    writer_shared.journal.record(id, EventKind::SlowClientClosed { conn: id });
                }
            })
            .expect("spawn gateway connection writer")
    };

    let mut reader = FrameReader::new(stream);
    // Static fleet: this connection's private ingest front. Routing and
    // staging are lock-free; delivery serializes per shard on the shard's
    // lane. Dropped (and thereby flushed) when the reader exits, before
    // `finish` can join this thread — no envelope outlives its connection
    // unanswered. An elastic fleet has no durable producer (a resize
    // retires the generation a producer points into), so its frames go
    // through the fleet's generation lock instead.
    let mut producer: Option<FleetProducer<D, GatewayEnvelope>> = match &shared.core {
        FleetCore::Static { ingest, .. } => Some(ingest.producer()),
        FleetCore::Elastic(_) => None,
    };
    let mut seq = 0u64;
    let mut bytes_seen = 0u64;
    let mut last_frame = Instant::now();
    let mut bucket = shared.conn_rate.map(TokenBucket::new);
    // `ConnThrottled` journals once per connection; the `throttled` counter
    // keeps counting records.
    let mut throttled_logged = false;
    let mut faults = shared.net_fault_plan.cursor(id);
    let mut frames_decoded = 0u64;
    // True ⇒ drain replies through `seq` before closing; false ⇒ abort now.
    let drain = loop {
        let next = reader.recv();
        let bytes = reader.bytes_read();
        Counters::add(&counters.bytes_in, bytes - bytes_seen);
        bytes_seen = bytes;
        if matches!(next, Ok(Some(_))) {
            last_frame = Instant::now();
            // Scripted transport faults fire between decoding a frame and
            // handling it, keyed off this connection's frame count — a
            // wall-clock-free stand-in for a hostile network.
            let frame = frames_decoded;
            frames_decoded += 1;
            let mut severed = false;
            while let Some(kind) = faults.take(frame) {
                Counters::add(&counters.net_faults, 1);
                shared
                    .journal
                    .record(frame, EventKind::NetFault { conn: id, frame, fault: kind.label() });
                match kind {
                    NetFaultKind::Stall { spins } => spin(spins),
                    NetFaultKind::Corrupt => {
                        // Damaged in flight: reject the frame and close, as
                        // the codec does for genuinely malformed bytes.
                        Counters::add(&counters.frames_rejected, 1);
                        severed = true;
                    }
                    NetFaultKind::Reset => severed = true,
                    NetFaultKind::AcceptPause { .. } => {}
                }
                if severed {
                    break;
                }
            }
            if severed {
                break false;
            }
        }
        match next {
            Ok(Some(Message::Get(records))) => {
                Counters::add(&counters.frames_in, 1);
                // Overload control, cheapest check first: a client that
                // pipelines past its reply backlog or its fair-share rate is
                // answered `Busy` for the whole frame without touching the
                // fleet. The reply still occupies the frame's sequence slot,
                // so pipelining clients keep their reply-order guarantee.
                let backlogged = sink.backlog(seq) >= shared.sink_backlog;
                let throttled =
                    !backlogged && !bucket.as_mut().is_none_or(|b| b.admit(records.len() as u64));
                if throttled {
                    Counters::add(&counters.throttled, records.len() as u64);
                    if !throttled_logged {
                        throttled_logged = true;
                        shared.journal.record(seq, EventKind::ConnThrottled { conn: id });
                    }
                }
                if backlogged || throttled {
                    Counters::add(&counters.shed, records.len() as u64);
                    let busy = WireVerdict::busy(1).to_byte();
                    sink.push(seq, Reply::Verdicts(vec![busy; records.len()]));
                    seq += 1;
                    continue;
                }
                Counters::add(&counters.requests_in, records.len() as u64);
                let batch = PendingBatch::new(seq, Arc::clone(&sink), records.len());
                seq += 1;
                // Route the whole frame into per-shard runs and deliver each
                // run with one queue operation. The client is waiting on this
                // frame's verdicts, so `submit_frame` flushes immediately
                // instead of pooling toward the batch threshold.
                let envelopes = records
                    .into_iter()
                    .enumerate()
                    .map(|(index, req)| GatewayEnvelope::new(req, Arc::clone(&batch), index));
                match (&shared.core, producer.as_mut()) {
                    (_, Some(p)) => p.submit_frame(envelopes),
                    (FleetCore::Elastic(fleet), None) => fleet.submit_frame(envelopes),
                    (FleetCore::Static { .. }, None) => {
                        unreachable!("static gateway mints a producer at connection start")
                    }
                }
            }
            Ok(Some(Message::Stats)) => {
                Counters::add(&counters.frames_in, 1);
                Counters::add(&counters.stats_served, 1);
                sink.push(seq, Reply::Stats(shared.fleet_metrics().to_json()));
                seq += 1;
            }
            Ok(Some(Message::Events)) => {
                Counters::add(&counters.frames_in, 1);
                Counters::add(&counters.events_served, 1);
                // Journal rings are drained off the shard cells, never the
                // fleet mutex — like STATS, this answers even under full
                // backpressure. The gateway's own journal rides along as the
                // final pseudo-shard entry.
                let mut journals = shared.journals();
                journals.push((GATEWAY_JOURNAL_SHARD, shared.journal.snapshot()));
                let frame = darwin_obs::encode_fleet_events(&journals);
                sink.push(seq, Reply::Events(frame));
                seq += 1;
            }
            Ok(Some(Message::Resize(target))) => {
                Counters::add(&counters.frames_in, 1);
                Counters::add(&counters.resizes_served, 1);
                // Performed inline on this reader: the connection's later
                // frames observe the post-resize fleet, and concurrent
                // resizes serialize on the elastic generation lock. Other
                // connections' in-flight `GET` frames block on that lock's
                // read side, so no frame splits across the cutover.
                sink.push(seq, Reply::ResizeAck(shared.handle_resize(target)));
                seq += 1;
            }
            Ok(Some(Message::Shutdown)) => {
                Counters::add(&counters.frames_in, 1);
                // Flag first: the writer may deliver the ack the instant it is
                // pushed, and a client that has the ack in hand must observe
                // `shutdown_requested() == true`.
                shared.shutdown.store(true, Ordering::Release);
                sink.push(seq, Reply::ShutdownAck);
                seq += 1;
                break true;
            }
            Ok(Some(
                Message::Verdicts(_)
                | Message::StatsReply(_)
                | Message::ShutdownAck
                | Message::EventsReply(_)
                | Message::ResizeAck(_),
            )) => {
                // Server-to-client opcodes are illegal from a client.
                Counters::add(&counters.frames_rejected, 1);
                break false;
            }
            Ok(None) => break true,
            Err(e) if e.is_timeout() => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break true;
                }
                if shared.idle_timeout.is_some_and(|idle| last_frame.elapsed() >= idle) {
                    Counters::add(&counters.idle_closed, 1);
                    break true;
                }
            }
            Err(RecvError::Wire(_)) => {
                Counters::add(&counters.frames_rejected, 1);
                break false;
            }
            Err(RecvError::Io(_)) => break false,
        }
    };
    if drain {
        sink.finish_at(seq);
    } else {
        sink.abort();
    }
    if writer.join().is_err() {
        // Keep the guard alive through the unwinding panic below; its abort
        // is a no-op since the writer is already gone.
        panic!("gateway connection writer panicked");
    }
    drop(sink_guard);
}
