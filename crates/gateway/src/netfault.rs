//! Deterministic network fault injection for chaos testing the gateway.
//!
//! A [`NetFaultPlan`] is the transport-layer sibling of the fleet's
//! `FaultPlan`: a script of [`NetFaultEvent`]s, each keyed off a **gateway
//! connection id** (the 0-based accept order) and a **per-connection frame
//! sequence number** (the 0-based index of a well-formed frame decoded on
//! that connection). Neither key involves a wall clock, so the same client
//! behaviour under the same plan reproduces the same faults at the same
//! frames, run after run — hostile-network runs are bit-for-bit auditable
//! through the gateway's event journal.
//!
//! Four fault kinds are scripted:
//!
//! * [`NetFaultKind::Reset`] — the connection is torn down abruptly right
//!   after decoding the frame at the event's index, as if the peer's NAT
//!   dropped the mapping. In-flight replies are abandoned; the client sees a
//!   reset/EOF and follows its reconnect-and-resubmit protocol.
//! * [`NetFaultKind::Stall`] — the reader spins `spins` iterations before
//!   handling the frame: a deterministic stand-in for a congested or
//!   bufferbloated path.
//! * [`NetFaultKind::Corrupt`] — the frame at the event's index is treated
//!   as damaged in flight: it is rejected (counted in `frames_rejected`)
//!   and the connection is closed, exactly as a real CRC-failed or
//!   malformed frame would be handled.
//! * [`NetFaultKind::AcceptPause`] — the acceptor spins before accepting
//!   the connection with this id, simulating a listen-queue stall (SYN
//!   flood aftermath).
//!
//! Every fired fault is journaled as a gateway
//! [`EventKind::NetFault`](darwin_obs::EventKind::NetFault) and counted in
//! the gateway's `net_faults` counter.

use serde::{Deserialize, Serialize};

/// What happens when a [`NetFaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetFaultKind {
    /// Tear the connection down abruptly right after the keyed frame is
    /// decoded (before it is handled).
    Reset,
    /// Spin this many iterations before handling the keyed frame.
    Stall {
        /// Busy-loop iterations (`std::hint::spin_loop`), bounding the stall
        /// without any wall-clock dependency.
        spins: u32,
    },
    /// Treat the keyed frame as corrupted in flight: reject it and close
    /// the connection, as the codec does for genuinely malformed bytes.
    Corrupt,
    /// Spin this many iterations before accepting the keyed connection
    /// (`at_frame` is ignored for this kind).
    AcceptPause {
        /// Busy-loop iterations in the acceptor.
        spins: u32,
    },
}

impl NetFaultKind {
    /// Stable journal label. Part of the deterministic journal contract:
    /// integers and fixed strings only.
    pub fn label(&self) -> String {
        match self {
            NetFaultKind::Reset => "reset".into(),
            NetFaultKind::Stall { spins } => format!("stall({spins})"),
            NetFaultKind::Corrupt => "corrupt".into(),
            NetFaultKind::AcceptPause { spins } => format!("accept-pause({spins})"),
        }
    }
}

/// One scripted network fault: `kind` fires on connection `conn` at its
/// frame number `at_frame` (accept time for [`NetFaultKind::AcceptPause`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetFaultEvent {
    /// Gateway connection id (0-based accept order) the fault fires on.
    pub conn: u64,
    /// Per-connection frame sequence number (0-based decode index) the
    /// fault is keyed to. Ignored by [`NetFaultKind::AcceptPause`].
    pub at_frame: u64,
    /// What happens.
    pub kind: NetFaultKind,
}

/// A deterministic hostile-network script: a set of [`NetFaultEvent`]s,
/// held sorted by `(conn, at_frame)`. The default plan is empty (a healthy
/// network).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetFaultPlan {
    events: Vec<NetFaultEvent>,
}

impl NetFaultPlan {
    /// A plan over the given events (sorted internally; at most one
    /// connection-ending fault per `(conn, at_frame)` is kept).
    pub fn new(events: Vec<NetFaultEvent>) -> Self {
        let mut plan = Self { events };
        plan.normalize();
        plan
    }

    /// Adds one event.
    pub fn push(&mut self, event: NetFaultEvent) {
        self.events.push(event);
        self.normalize();
    }

    /// True when the plan scripts no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, sorted by `(conn, at_frame)`.
    pub fn events(&self) -> &[NetFaultEvent] {
        &self.events
    }

    fn normalize(&mut self) {
        self.events.sort_by_key(|e| (e.conn, e.at_frame, fault_rank(e.kind)));
        self.events.dedup_by(|a, b| a.conn == b.conn && a.at_frame == b.at_frame && a.kind == b.kind);
    }

    /// A seeded random plan: `n_events` faults spread over `conns`
    /// connections with per-connection frame indices below `horizon`. Same
    /// seed ⇒ same plan (self-contained SplitMix64, the fleet's constants).
    pub fn random(seed: u64, conns: u64, horizon: u64, n_events: usize) -> Self {
        assert!(conns > 0, "at least one connection");
        assert!(horizon > 0, "horizon must be positive");
        let mut state = seed;
        let mut next = move || -> u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let conn = next() % conns;
            let at_frame = next() % horizon;
            let kind = match next() % 4 {
                0 => NetFaultKind::Reset,
                1 => NetFaultKind::Corrupt,
                2 => NetFaultKind::Stall { spins: (next() % 8_192) as u32 },
                _ => NetFaultKind::AcceptPause { spins: (next() % 8_192) as u32 },
            };
            events.push(NetFaultEvent { conn, at_frame, kind });
        }
        Self::new(events)
    }

    /// The connection-scoped cursor for `conn`'s frame-keyed events
    /// (everything except accept pauses).
    pub(crate) fn cursor(&self, conn: u64) -> ConnFaultCursor {
        let events = self
            .events
            .iter()
            .filter(|e| e.conn == conn && !matches!(e.kind, NetFaultKind::AcceptPause { .. }))
            .map(|e| (e.at_frame, e.kind))
            .collect();
        ConnFaultCursor { events, next: 0 }
    }

    /// Accept-pause spins scripted for connection `conn`, if any (summed
    /// over duplicate events).
    pub(crate) fn accept_pause(&self, conn: u64) -> Option<u32> {
        let total: u64 = self
            .events
            .iter()
            .filter(|e| e.conn == conn)
            .filter_map(|e| match e.kind {
                NetFaultKind::AcceptPause { spins } => Some(spins as u64),
                _ => None,
            })
            .sum();
        (total > 0).then(|| total.min(u32::MAX as u64) as u32)
    }
}

/// Sort rank so that at one `(conn, at_frame)` a stall fires before a
/// connection-ending reset/corrupt.
fn fault_rank(kind: NetFaultKind) -> u8 {
    match kind {
        NetFaultKind::AcceptPause { .. } => 0,
        NetFaultKind::Stall { .. } => 1,
        NetFaultKind::Corrupt => 2,
        NetFaultKind::Reset => 3,
    }
}

/// One connection's view of the plan: its frame-keyed events, consumed in
/// order as the reader counts decoded frames.
#[derive(Debug, Default)]
pub(crate) struct ConnFaultCursor {
    events: Vec<(u64, NetFaultKind)>,
    next: usize,
}

impl ConnFaultCursor {
    /// Pops the next fault scheduled at frame `idx`, if any. Callers loop
    /// until `None`: a stall and a reset may share a frame.
    pub(crate) fn take(&mut self, idx: u64) -> Option<NetFaultKind> {
        while self.events.get(self.next).is_some_and(|&(at, _)| at < idx) {
            self.next += 1;
        }
        match self.events.get(self.next) {
            Some(&(at, kind)) if at == idx => {
                self.next += 1;
                Some(kind)
            }
            _ => None,
        }
    }
}

/// Deterministic busy-wait used by stall and accept-pause faults.
pub(crate) fn spin(spins: u32) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_and_dedup() {
        let plan = NetFaultPlan::new(vec![
            NetFaultEvent { conn: 1, at_frame: 50, kind: NetFaultKind::Reset },
            NetFaultEvent { conn: 0, at_frame: 10, kind: NetFaultKind::Corrupt },
            NetFaultEvent { conn: 1, at_frame: 50, kind: NetFaultKind::Reset },
            NetFaultEvent { conn: 1, at_frame: 50, kind: NetFaultKind::Stall { spins: 5 } },
        ]);
        assert_eq!(plan.events().len(), 3, "duplicate reset collapsed");
        // The stall sorts before the reset at the shared frame.
        assert_eq!(plan.events()[1].kind, NetFaultKind::Stall { spins: 5 });
        assert_eq!(plan.events()[2].kind, NetFaultKind::Reset);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = NetFaultPlan::random(7, 4, 1_000, 12);
        let b = NetFaultPlan::random(7, 4, 1_000, 12);
        let c = NetFaultPlan::random(8, 4, 1_000, 12);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert!(a.events().iter().all(|e| e.conn < 4 && e.at_frame < 1_000));
    }

    #[test]
    fn cursor_yields_frame_events_in_order() {
        let plan = NetFaultPlan::new(vec![
            NetFaultEvent { conn: 0, at_frame: 3, kind: NetFaultKind::Stall { spins: 1 } },
            NetFaultEvent { conn: 0, at_frame: 3, kind: NetFaultKind::Reset },
            NetFaultEvent { conn: 0, at_frame: 9, kind: NetFaultKind::Corrupt },
            NetFaultEvent { conn: 0, at_frame: 0, kind: NetFaultKind::AcceptPause { spins: 7 } },
            NetFaultEvent { conn: 1, at_frame: 4, kind: NetFaultKind::Reset },
        ]);
        let mut cur = plan.cursor(0);
        assert_eq!(cur.take(0), None, "accept pauses are not frame events");
        assert_eq!(cur.take(3), Some(NetFaultKind::Stall { spins: 1 }));
        assert_eq!(cur.take(3), Some(NetFaultKind::Reset));
        assert_eq!(cur.take(3), None);
        assert_eq!(cur.take(9), Some(NetFaultKind::Corrupt));
        assert_eq!(plan.accept_pause(0), Some(7));
        assert_eq!(plan.accept_pause(1), None);
    }

    #[test]
    fn plan_serde_roundtrips() {
        let plan = NetFaultPlan::random(42, 3, 1_000, 6);
        let json = serde_json::to_string(&plan).unwrap();
        let back: NetFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
