//! End-to-end loopback tests: a trace served through a real TCP gateway on
//! 127.0.0.1 (port 0 — always ephemeral) must behave exactly like the
//! in-process fleet, and the serving layer must stay live and consistent
//! under shutdown, worker panics, shedding and client disconnects.

use darwin::{DarwinModel, Expert, ExpertGrid, OfflineConfig, OfflineTrainer, OnlineConfig};
use darwin_cache::{CacheConfig, CacheMetrics, ThresholdPolicy};
use darwin_gateway::wire::{encode_get, FrameReader, Message};
use darwin_gateway::{loadgen, Gateway, LoadgenConfig};
use darwin_nn::TrainConfig;
use darwin_shard::{partition, run_sequential, Backpressure, FleetConfig, FleetMetrics, HashRouter};
use darwin_testbed::{AdmissionDriver, DarwinDriver, StaticDriver};
use darwin_trace::{MixSpec, Request, Trace, TraceGenerator, TrafficClass};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

fn model() -> Arc<DarwinModel> {
    static MODEL: OnceLock<Arc<DarwinModel>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = OfflineConfig {
                grid: ExpertGrid::new(vec![
                    Expert::new(1, 20),
                    Expert::new(1, 500),
                    Expert::new(5, 20),
                    Expert::new(5, 500),
                ]),
                hoc_bytes: 2 * 1024 * 1024,
                nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
                n_clusters: 2,
                ..OfflineConfig::default()
            };
            let traces: Vec<Trace> = (0..4)
                .map(|i| {
                    TraceGenerator::new(
                        MixSpec::two_class(
                            TrafficClass::image(),
                            TrafficClass::download(),
                            i as f64 / 3.0,
                        ),
                        10 + i as u64,
                    )
                    .generate(10_000)
                })
                .collect();
            Arc::new(OfflineTrainer::new(cfg).train(&traces))
        })
        .clone()
}

fn cache_cfg() -> CacheConfig {
    CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() }
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        epoch_requests: 20_000,
        warmup_requests: 1_000,
        round_requests: 300,
        ..OnlineConfig::default()
    }
}

fn fleet_cfg(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 256,
        batch: 64,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: None,
        shed_watermark: None,
        replicas: 0,
    }
}

fn test_trace(n: usize) -> Trace {
    TraceGenerator::new(MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5), 4242)
        .generate(n)
}

/// The tentpole contract: a trace replayed through the loopback gateway on a
/// single connection (which preserves trace order exactly) is bitwise
/// identical — per-shard cache metrics, occupancy — to the sequential
/// per-partition replay, and the verdict stream the client saw agrees with
/// the server's own counters.
#[test]
fn static_gateway_equivalent_to_sequential_replay() {
    let trace = test_trace(30_000);
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let gateway =
        Gateway::bind("127.0.0.1:0", fleet_cfg(2), cache_cfg(), Box::new(HashRouter), move |_| {
            StaticDriver::new(policy)
        })
        .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 1, batch: 64, window: 8, ..Default::default() },
    )
    .expect("loadgen replay");
    gateway.shutdown();
    let fleet_report = gateway.finish().expect("clean gateway shutdown");

    let seq = run_sequential(2, cache_cfg(), &HashRouter, |_| StaticDriver::new(policy), &trace);
    for (f, s) in fleet_report.shards.iter().zip(&seq) {
        assert_eq!(f.cache, s.cache, "shard {}: cache metrics", f.shard);
        assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {}: HOC occupancy", f.shard);
        assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {}: DC occupancy", f.shard);
        assert_eq!(f.dropped, 0, "Block backpressure is lossless");
    }

    // The client's verdict tally is the fleet's cache metrics, seen from the
    // other end of the wire.
    let fleet_cache: CacheMetrics = fleet_report.fleet_cache();
    let t = report.tally;
    assert_eq!(t.total(), trace.len() as u64);
    assert_eq!(t.dropped, 0);
    assert_eq!(t.hoc_hits, fleet_cache.hoc_hits);
    assert_eq!(t.dc_hits, fleet_cache.dc_hits);
    assert_eq!(t.origin_fetches, fleet_cache.origin_fetches);
    assert_eq!(t.admitted, fleet_cache.hoc_writes);
}

/// Same contract with the full per-shard Darwin controllers: the deployed
/// expert sequences must also match the sequential replay exactly.
#[test]
fn darwin_gateway_equivalent_to_sequential_replay() {
    let model = model();
    let trace = test_trace(48_000);
    let gateway = {
        let model = Arc::clone(&model);
        Gateway::bind("127.0.0.1:0", fleet_cfg(2), cache_cfg(), Box::new(HashRouter), move |_| {
            DarwinDriver::new(Arc::clone(&model), online_cfg())
        })
        .expect("bind loopback gateway")
    };
    let addr = gateway.local_addr();

    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 1, batch: 64, window: 8, ..Default::default() },
    )
    .expect("loadgen replay");
    assert_eq!(report.tally.total(), trace.len() as u64);
    gateway.shutdown();
    let fleet_report = gateway.finish().expect("clean gateway shutdown");

    let seq = run_sequential(
        2,
        cache_cfg(),
        &HashRouter,
        |_| DarwinDriver::new(Arc::clone(&model), online_cfg()),
        &trace,
    );
    let mut switched_anywhere = false;
    for (f, s) in fleet_report.shards.into_iter().zip(seq) {
        let shard = f.shard;
        assert_eq!(f.processed, s.processed, "shard {shard}: processed");
        assert_eq!(f.cache, s.cache, "shard {shard}: cache metrics");
        assert_eq!(f.hoc_used_bytes, s.hoc_used_bytes, "shard {shard}: HOC occupancy");
        assert_eq!(f.dc_used_bytes, s.dc_used_bytes, "shard {shard}: DC occupancy");
        let gw_seq = f.driver.expect("live shard keeps its driver").into_controller().expert_sequence();
        let replay_seq = s.driver.into_controller().expert_sequence();
        assert_eq!(gw_seq, replay_seq, "shard {shard}: deployed-expert sequence");
        switched_anywhere |= gw_seq.len() > 1;
    }
    assert!(switched_anywhere, "trace must exercise real controller switches");
}

/// Multiple connections interleave at the fleet, so bitwise equivalence no
/// longer applies — but every request must still get exactly one verdict and
/// nothing may be shed under blocking backpressure.
#[test]
fn multi_connection_replay_answers_every_request() {
    let trace = test_trace(20_000);
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let gateway =
        Gateway::bind("127.0.0.1:0", fleet_cfg(4), cache_cfg(), Box::new(HashRouter), move |_| {
            StaticDriver::new(policy)
        })
        .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 4, batch: 32, window: 4, ..Default::default() },
    )
    .expect("loadgen replay");
    assert_eq!(report.tally.total(), trace.len() as u64);
    assert_eq!(report.tally.dropped, 0);

    let fleet_report = {
        gateway.shutdown();
        gateway.finish().expect("clean gateway shutdown")
    };
    assert_eq!(fleet_report.total_processed(), trace.len() as u64);
    assert_eq!(fleet_report.total_dropped(), 0);
}

/// Four connections hammering tiny shard queues under blocking backpressure:
/// the per-connection producers contend on the per-shard lanes, yet the
/// router still determines the partition exactly — each shard processes
/// precisely the requests whose IDs route to it, whatever the interleaving —
/// and every request is answered exactly once with nothing shed.
#[test]
fn contended_connections_preserve_per_shard_partition() {
    let trace = test_trace(24_000);
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let cfg = FleetConfig {
        shards: 2,
        queue_capacity: 32, // small enough that Block backpressure engages
        batch: 16,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: None,
        shed_watermark: None,
        replicas: 0,
    };
    let gateway = Gateway::bind("127.0.0.1:0", cfg, cache_cfg(), Box::new(HashRouter), move |_| {
        StaticDriver::new(policy)
    })
    .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 4, batch: 48, window: 4, ..Default::default() },
    )
    .expect("contended replay");
    assert_eq!(report.tally.total(), trace.len() as u64, "exactly-once answering");
    assert_eq!(report.tally.dropped, 0, "Block backpressure is lossless");
    assert_eq!(report.tally.unavailable, 0);

    gateway.shutdown();
    let fleet_report = gateway.finish().expect("clean gateway shutdown");
    assert_eq!(fleet_report.total_processed(), trace.len() as u64);
    assert_eq!(fleet_report.total_dropped(), 0);
    let parts = partition(&trace, &HashRouter, 2);
    for (outcome, part) in fleet_report.shards.iter().zip(&parts) {
        assert_eq!(
            outcome.processed,
            part.len() as u64,
            "shard {}: processed exactly its partition",
            outcome.shard
        );
        assert_eq!(outcome.cache.requests, part.len() as u64);
        assert!(
            outcome.queue_high_water <= 32,
            "shard {}: high-water {} exceeds queue capacity",
            outcome.shard,
            outcome.queue_high_water
        );
    }
    // The verdict tally and the fleet's cache metrics agree across the wire.
    let fleet_cache = fleet_report.fleet_cache();
    assert_eq!(
        report.tally.hoc_hits + report.tally.dc_hits + report.tally.origin_fetches,
        fleet_cache.requests
    );
}

/// `STATS` answers with a parseable [`FleetMetrics`] JSON document carrying
/// the gateway's own counters — the same snapshot `Gateway::metrics` returns.
#[test]
fn stats_frame_returns_parseable_snapshot() {
    let trace = test_trace(5_000);
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let gateway =
        Gateway::bind("127.0.0.1:0", fleet_cfg(2), cache_cfg(), Box::new(HashRouter), move |_| {
            StaticDriver::new(policy)
        })
        .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    loadgen::run(addr, &trace, LoadgenConfig::default()).expect("loadgen replay");
    let json = loadgen::fetch_stats(addr).expect("stats fetch");
    let snapshot = FleetMetrics::from_json(&json).expect("stats reply parses as FleetMetrics");
    let gw = snapshot.gateway.expect("gateway counters folded into the snapshot");
    assert!(gw.connections_accepted >= 2, "replay + stats connections");
    assert_eq!(gw.requests_in, trace.len() as u64);
    assert!(gw.stats_served >= 1);
    assert!(gw.bytes_in > 0 && gw.bytes_out > 0);

    // In-process and over-the-wire snapshots use the same code path; the
    // cache-side numbers of a quiesced fleet agree exactly.
    let local = gateway.metrics();
    assert_eq!(local.fleet_cache(), snapshot.fleet_cache());
    gateway.shutdown();
    gateway.finish().expect("clean gateway shutdown");
}

/// `EVENTS` answers with the fleet's per-shard journals: a scripted
/// mid-run panic must show up as fault-injection, death and restart events
/// with monotonically increasing sequence stamps, and serving the frame
/// bumps the gateway's `events_served` counter.
#[test]
fn events_frame_returns_fleet_journals() {
    use darwin_gateway::GatewayConfig;
    use darwin_obs::EventKind;
    use darwin_shard::{FaultEvent, FaultKind, FaultPlan};

    let trace = test_trace(4_000);
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let gateway = Gateway::bind_with(
        "127.0.0.1:0",
        fleet_cfg(2),
        cache_cfg(),
        Box::new(HashRouter),
        GatewayConfig {
            fault_plan: FaultPlan::new(vec![FaultEvent { shard: 0, at: 500, kind: FaultKind::Panic }]),
            ..GatewayConfig::default()
        },
        move |_| StaticDriver::new(policy),
    )
    .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    loadgen::run(addr, &trace, LoadgenConfig::default()).expect("loadgen replay");
    let journals = loadgen::fetch_events(addr).expect("events fetch");
    assert_eq!(journals.len(), 3, "one journal per shard plus the gateway pseudo-shard");
    assert!(
        journals.iter().any(|(s, _)| *s == darwin_gateway::GATEWAY_JOURNAL_SHARD),
        "gateway journal rides along under the pseudo-shard id"
    );
    let shard0 = &journals.iter().find(|(s, _)| *s == 0).expect("shard 0 journal").1;
    let kinds: Vec<&EventKind> = shard0.events.iter().map(|e| &e.kind).collect();
    assert!(kinds.iter().any(|k| matches!(k, EventKind::FaultInjected { .. })));
    assert!(kinds.iter().any(|k| matches!(k, EventKind::WorkerDeath)));
    assert!(kinds.iter().any(|k| matches!(k, EventKind::RestartGranted { .. })));
    assert!(
        shard0.events.windows(2).all(|w| w[0].seq <= w[1].seq),
        "journal sequence stamps are monotone"
    );

    let gw = gateway.metrics().gateway.expect("gateway counters");
    assert!(gw.events_served >= 1, "EVENTS frames are counted");
    gateway.shutdown();
    gateway.finish().expect("clean gateway shutdown");
}

/// A client `SHUTDOWN` frame is acknowledged and leaves the gateway ready to
/// finish without any local shutdown call.
#[test]
fn shutdown_frame_drains_gateway() {
    let trace = test_trace(2_000);
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let gateway =
        Gateway::bind("127.0.0.1:0", fleet_cfg(1), cache_cfg(), Box::new(HashRouter), move |_| {
            StaticDriver::new(policy)
        })
        .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    loadgen::run(addr, &trace, LoadgenConfig::default()).expect("loadgen replay");
    loadgen::send_shutdown(addr).expect("shutdown acked");
    assert!(gateway.shutdown_requested());
    gateway.wait_shutdown();
    let report = gateway.finish().expect("clean gateway shutdown");
    assert_eq!(report.total_processed(), trace.len() as u64);
}

/// A driver that panics mid-run, killing its shard worker.
#[derive(Debug)]
struct PanickyDriver {
    seen: u64,
    fuse: u64,
}

impl AdmissionDriver for PanickyDriver {
    fn initial_policy(&mut self) -> ThresholdPolicy {
        ThresholdPolicy::new(2, 100 * 1024)
    }
    fn observe(&mut self, _req: &Request, _m: &CacheMetrics) -> Option<ThresholdPolicy> {
        self.seen += 1;
        assert!(self.seen < self.fuse, "injected shard worker panic");
        None
    }
    fn label(&self) -> String {
        "panicky".into()
    }
}

/// Repeated shard-worker panics no longer collapse the gateway: the
/// supervisor cold-restarts the worker while its budget lasts (each fresh
/// `PanickyDriver` burns through another fuse), then buries the shard, after
/// which its requests are answered `Unavailable`. The client's replay
/// completes, every request is answered exactly once, and `finish()` reports
/// the damage instead of failing.
#[test]
fn worker_panics_are_supervised_and_degrade_gracefully() {
    let trace = test_trace(4_000);
    let gateway = Gateway::bind("127.0.0.1:0", fleet_cfg(1), cache_cfg(), Box::new(HashRouter), |_| {
        PanickyDriver { seen: 0, fuse: 500 }
    })
    .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 1, batch: 128, window: 2, ..Default::default() },
    )
    .expect("replay must survive supervised worker deaths");
    assert_eq!(report.tally.total(), trace.len() as u64, "exactly-once answering");
    assert!(report.tally.unavailable > 0, "the buried shard answers Unavailable");

    gateway.shutdown();
    let fleet = gateway.finish().expect("supervised fleet finishes cleanly");
    assert_eq!(fleet.total_restarts(), 3, "default budget grants three restarts");
    assert_eq!(fleet.dead_shards(), 1, "the fourth death buries the only shard");
    assert_eq!(
        fleet.total_processed() + fleet.total_dropped() + fleet.total_unavailable(),
        trace.len() as u64,
        "conservation: processed + dropped + unavailable == submitted"
    );
    assert_eq!(report.tally.unavailable, fleet.total_unavailable());
    assert_eq!(report.tally.dropped, fleet.total_dropped());
}

/// A driver slow enough that a tiny `DropNewest` queue must shed load.
struct SlowDriver;

impl AdmissionDriver for SlowDriver {
    fn initial_policy(&mut self) -> ThresholdPolicy {
        ThresholdPolicy::new(2, 100 * 1024)
    }
    fn observe(&mut self, _req: &Request, _m: &CacheMetrics) -> Option<ThresholdPolicy> {
        std::thread::sleep(std::time::Duration::from_micros(200));
        None
    }
    fn label(&self) -> String {
        "slow".into()
    }
}

/// A client that writes a burst and vanishes without reading replies: the
/// connection worker must exit cleanly, shed requests must be counted (not
/// lost), and queue gauges must respect the configured capacity.
#[test]
fn client_disconnect_mid_stream_keeps_counters_consistent() {
    let trace = test_trace(8_000);
    let cfg = FleetConfig {
        shards: 2,
        queue_capacity: 64,
        batch: 16,
        backpressure: Backpressure::DropNewest,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: None,
        shed_watermark: None,
        replicas: 0,
    };
    let gateway = Gateway::bind("127.0.0.1:0", cfg, cache_cfg(), Box::new(HashRouter), |_| SlowDriver)
        .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    {
        // Raw client: stream every frame, read nothing, hang up.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut buf = Vec::new();
        for frame in trace.requests().chunks(128) {
            buf.clear();
            encode_get(frame, &mut buf);
            if stream.write_all(&buf).is_err() {
                break; // gateway already noticed the overload — fine
            }
        }
        // Dropping the stream closes both halves with replies unread.
    }

    // Give the reader time to drain what reached the socket, then stop.
    std::thread::sleep(std::time::Duration::from_millis(300));
    gateway.shutdown();
    let metrics = gateway.metrics();
    let report = gateway.finish().expect("disconnect must not poison the gateway");

    let gw = metrics.gateway.expect("gateway counters");
    assert_eq!(
        report.total_processed() + report.total_dropped(),
        gw.requests_in,
        "every decoded request is either processed or counted as shed"
    );
    assert!(report.total_dropped() > 0, "tiny DropNewest queue over a slow worker must shed");
    for s in &report.shards {
        assert!(
            s.queue_high_water <= 64,
            "shard {}: high-water {} exceeds queue capacity",
            s.shard,
            s.queue_high_water
        );
    }
    assert_eq!(gw.connections_active, 0, "connection worker exited");
}

/// Pipelined mixed traffic on one connection: replies come back in frame
/// order regardless of opcode mix.
#[test]
fn pipelined_mixed_frames_reply_in_order() {
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let gateway =
        Gateway::bind("127.0.0.1:0", fleet_cfg(2), cache_cfg(), Box::new(HashRouter), move |_| {
            StaticDriver::new(policy)
        })
        .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reqs: Vec<Request> = (0..10).map(|i| Request::new(i, 1000, i)).collect();
    let mut burst = Vec::new();
    encode_get(&reqs[..4], &mut burst);
    darwin_gateway::wire::encode(&Message::Stats, &mut burst);
    encode_get(&reqs[4..], &mut burst);
    stream.write_all(&burst).expect("write burst");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");

    let mut reader = FrameReader::new(stream);
    match reader.recv().expect("first reply") {
        Some(Message::Verdicts(vs)) => assert_eq!(vs.len(), 4),
        other => panic!("expected 4 verdicts first, got {other:?}"),
    }
    assert!(
        matches!(reader.recv().expect("second reply"), Some(Message::StatsReply(_))),
        "stats reply must come second"
    );
    match reader.recv().expect("third reply") {
        Some(Message::Verdicts(vs)) => assert_eq!(vs.len(), 6),
        other => panic!("expected 6 verdicts last, got {other:?}"),
    }
    assert!(reader.recv().expect("clean EOF").is_none());

    gateway.shutdown();
    gateway.finish().expect("clean gateway shutdown");
}

/// A `RESIZE` frame over a real socket re-shards a live elastic gateway:
/// the ack carries the new generation plus the retired-generation ledger,
/// later frames are served by the successor generation, and the fleet's
/// exactly-once conservation ledger holds across the cutover.
#[test]
fn resize_frame_reshards_elastic_gateway() {
    use darwin_gateway::GatewayConfig;
    use darwin_rebalance::{RingRouter, DEFAULT_SEED, DEFAULT_VNODES};

    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let mut cfg = fleet_cfg(2);
    // Periodic cuts give the handoff a pre-copied base to delta against.
    cfg.checkpoint_every = Some(512);
    let gateway = Gateway::bind_elastic(
        "127.0.0.1:0",
        cfg,
        cache_cfg(),
        RingRouter::new(DEFAULT_SEED, DEFAULT_VNODES),
        GatewayConfig::default(),
        move |_| StaticDriver::new(policy),
    )
    .expect("bind elastic gateway");
    let addr = gateway.local_addr();

    let before = test_trace(6_000);
    let first = loadgen::run(addr, &before, LoadgenConfig::default()).expect("replay before resize");
    assert_eq!(first.tally.total(), before.len() as u64);
    assert_eq!(first.tally.unavailable, 0);

    let ack = loadgen::send_resize(addr, 4).expect("resize acked");
    assert_eq!(ack.error, None, "elastic gateway performs the resize");
    assert_eq!((ack.generation, ack.shards), (1, 4));
    assert_eq!(ack.transferred_shards, 2, "both source shards survive a grow");
    assert_eq!(ack.ledger.len(), 1, "generation 0 retired into the ledger");
    assert_eq!(ack.ledger[0].generation, 0);
    assert_eq!(ack.ledger[0].shards, 2);
    assert_eq!(ack.ledger[0].processed, before.len() as u64);

    // The successor generation serves — and STATS shows 4 shards plus the
    // retired generation's ledger row.
    let after = TraceGenerator::new(
        MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
        777,
    )
    .generate(6_000);
    let second = loadgen::run(addr, &after, LoadgenConfig::default()).expect("replay after resize");
    assert_eq!(second.tally.total(), after.len() as u64);
    assert_eq!(second.tally.unavailable, 0);
    let snapshot = FleetMetrics::from_json(&loadgen::fetch_stats(addr).expect("stats"))
        .expect("stats reply parses");
    assert_eq!(snapshot.shards.len(), 4, "STATS reports the serving generation");
    assert_eq!(snapshot.generations.len(), 1, "ledger rides the snapshot");
    assert_eq!(snapshot.gateway.as_ref().expect("gateway counters").resizes_served, 1);

    let report = gateway.finish_elastic().expect("clean elastic shutdown");
    assert!(report.conserved(), "processed + dropped + unavailable == submitted across the resize");
    assert_eq!(report.submitted, (before.len() + after.len()) as u64);
    assert_eq!(report.metrics.total_unavailable(), 0);
    assert_eq!(report.transfers.len(), 2);
}

/// A static gateway answers `RESIZE` with an error ack — a protocol-level
/// refusal, not a dropped connection — and keeps serving afterwards.
#[test]
fn static_gateway_refuses_resize_with_error_ack() {
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    let gateway =
        Gateway::bind("127.0.0.1:0", fleet_cfg(1), cache_cfg(), Box::new(HashRouter), move |_| {
            StaticDriver::new(policy)
        })
        .expect("bind loopback gateway");
    let addr = gateway.local_addr();

    let ack = loadgen::send_resize(addr, 4).expect("refusal still acks");
    assert!(ack.error.as_deref().is_some_and(|e| e.contains("not elastic")), "ack: {ack:?}");

    // The refusal did not wedge the gateway: a replay still completes.
    let trace = test_trace(1_000);
    let report = loadgen::run(addr, &trace, LoadgenConfig::default()).expect("replay after refusal");
    assert_eq!(report.tally.total(), trace.len() as u64);
    gateway.shutdown();
    gateway.finish().expect("clean gateway shutdown");
}
