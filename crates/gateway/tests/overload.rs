//! Flash-crowd behaviour over real sockets: per-connection throttling
//! answers `Busy` without losing anyone's requests, slow clients are evicted
//! without collateral damage, and scripted network faults (resets, stalls,
//! corruption, accept pauses) are survived by the client's reconnect
//! protocol and fully journaled by the gateway.

use darwin_cache::{CacheConfig, ThresholdPolicy};
use darwin_gateway::netfault::{NetFaultEvent, NetFaultKind, NetFaultPlan};
use darwin_gateway::wire::{encode, Message};
use darwin_gateway::{loadgen, Gateway, GatewayConfig, LoadgenConfig, GATEWAY_JOURNAL_SHARD};
use darwin_obs::EventKind;
use darwin_shard::{Backpressure, FleetConfig, HashRouter};
use darwin_testbed::StaticDriver;
use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn fleet_cfg(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 256,
        batch: 64,
        backpressure: Backpressure::Block,
        snapshot_every: None,
        restart_budget: Default::default(),
        checkpoint_every: None,
        shed_watermark: None,
        replicas: 0,
    }
}

fn test_trace(n: usize, seed: u64) -> Trace {
    TraceGenerator::new(MixSpec::single(TrafficClass::image()), seed).generate(n)
}

fn static_gateway(cfg: GatewayConfig, shards: usize) -> Gateway<StaticDriver> {
    let policy = ThresholdPolicy::new(2, 100 * 1024);
    Gateway::bind_with(
        "127.0.0.1:0",
        fleet_cfg(shards),
        CacheConfig::small_test(),
        Box::new(HashRouter),
        cfg,
        move |_| StaticDriver::new(policy),
    )
    .expect("bind loopback gateway")
}

/// A connection that writes requests but never reads its replies must be
/// evicted once the writer exhausts its stall budget — counted in
/// `slow_closed`, journaled, and without disturbing sibling connections.
#[test]
fn slow_client_is_evicted_and_siblings_survive() {
    let gateway = static_gateway(
        GatewayConfig { write_stall: Some(Duration::from_millis(50)), ..GatewayConfig::default() },
        1,
    );
    let addr = gateway.local_addr();

    // The slow client: a firehose of STATS frames (each reply is a sizeable
    // JSON document) with the reply stream never read, so the gateway's send
    // buffer fills and its writer hits the stall budget.
    let mut stream = TcpStream::connect(addr).expect("connect slow client");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_write_timeout(Some(Duration::from_millis(200))).expect("write timeout");
    let mut stats_frame = Vec::new();
    encode(&Message::Stats, &mut stats_frame);

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut evicted = false;
    'firehose: while Instant::now() < deadline {
        for _ in 0..32 {
            if stream.write_all(&stats_frame).is_err() {
                // The gateway shut the socket down under us — expected once
                // the eviction fires; confirm via the counter below.
                break;
            }
        }
        if gateway.metrics().gateway.expect("gateway counters").slow_closed >= 1 {
            evicted = true;
            break 'firehose;
        }
    }
    assert!(evicted, "non-reading client must be evicted within the deadline");
    drop(stream);

    // A sibling connection opened after the eviction is served in full.
    let trace = test_trace(2_000, 7);
    let report = loadgen::run(addr, &trace, LoadgenConfig::default()).expect("sibling replay");
    assert_eq!(report.tally.total(), trace.len() as u64, "sibling fully answered");
    assert_eq!(report.errors.total_failures(), 0, "sibling untouched by the eviction");

    // The eviction is first-class observable: counter and journal agree.
    let journals = loadgen::fetch_events(addr).expect("events fetch");
    let gw_journal =
        &journals.iter().find(|(s, _)| *s == GATEWAY_JOURNAL_SHARD).expect("gateway journal").1;
    let slow_events = gw_journal
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SlowClientClosed { .. }))
        .count();
    assert_eq!(slow_events, 1, "exactly one slow-client eviction journaled");

    gateway.shutdown();
    gateway.finish().expect("clean gateway shutdown");
}

/// A greedy connection pushing far past its token-bucket fair share gets
/// `Busy` verdicts — flow control, not failures — and, with the loadgen's
/// backed-off resends, still ends with every request answered exactly once.
#[test]
fn throttled_connection_retries_to_completion() {
    let gateway =
        static_gateway(GatewayConfig { conn_rate: Some(1_000), ..GatewayConfig::default() }, 2);
    let addr = gateway.local_addr();

    // 3k requests against a 1k-records/second bucket: the initial burst
    // alone overruns the one-second burst budget.
    let trace = test_trace(3_000, 11);
    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 1, batch: 64, window: 8, ..Default::default() },
    )
    .expect("throttled replay");

    assert_eq!(report.tally.total(), trace.len() as u64, "every request answered exactly once");
    assert!(report.errors.shed > 0, "the bucket must actually throttle");
    assert_eq!(report.errors.total_failures(), 0, "Busy is flow control, not a failure");

    gateway.shutdown();
    let metrics = gateway.metrics();
    let fleet = gateway.finish().expect("clean gateway shutdown");
    let gw = metrics.gateway.expect("gateway counters");
    assert!(gw.throttled > 0, "gateway counted the throttled records");
    assert_eq!(gw.throttled, gw.shed, "all sheds here came from the token bucket");
    assert_eq!(
        fleet.total_processed(),
        trace.len() as u64,
        "throttled records never reached the fleet until their resend"
    );
}

/// A hostile-network script — accept pause, stall, reset, corruption — is
/// survived end to end: the loadgen reconnects and resubmits, every request
/// still earns exactly one verdict, and all four faults are counted and
/// journaled with their deterministic labels.
#[test]
fn scripted_network_faults_are_survived_and_journaled() {
    let plan = NetFaultPlan::new(vec![
        NetFaultEvent { conn: 0, at_frame: 0, kind: NetFaultKind::AcceptPause { spins: 50_000 } },
        NetFaultEvent { conn: 0, at_frame: 1, kind: NetFaultKind::Stall { spins: 100_000 } },
        NetFaultEvent { conn: 0, at_frame: 3, kind: NetFaultKind::Reset },
        NetFaultEvent { conn: 1, at_frame: 2, kind: NetFaultKind::Corrupt },
    ]);
    let gateway = static_gateway(GatewayConfig { net_fault_plan: plan, ..GatewayConfig::default() }, 2);
    let addr = gateway.local_addr();

    let trace = test_trace(4_000, 13);
    let report = loadgen::run(
        addr,
        &trace,
        LoadgenConfig { connections: 1, batch: 64, window: 4, ..Default::default() },
    )
    .expect("replay must survive the hostile network");

    assert_eq!(report.tally.total(), trace.len() as u64, "exactly-once answering");
    assert!(report.errors.resets >= 2, "reset + corruption both sever the transport");
    assert!(report.errors.reconnects >= 2, "the client reconnected past both");
    assert!(report.errors.resubmitted > 0, "in-flight frames were recovered");

    // The gateway's own journal rides the EVENTS opcode as a pseudo-shard.
    let journals = loadgen::fetch_events(addr).expect("events fetch");
    let gw_journal =
        &journals.iter().find(|(s, _)| *s == GATEWAY_JOURNAL_SHARD).expect("gateway journal").1;
    let labels: Vec<&str> = gw_journal
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::NetFault { fault, .. } => Some(fault.as_str()),
            _ => None,
        })
        .collect();
    for expect in ["accept-pause(50000)", "stall(100000)", "reset", "corrupt"] {
        assert!(labels.contains(&expect), "journal records {expect}: {labels:?}");
    }
    assert_eq!(labels.len(), 4, "every scripted fault fired exactly once");

    gateway.shutdown();
    let metrics = gateway.metrics();
    gateway.finish().expect("clean gateway shutdown");
    let gw = metrics.gateway.expect("gateway counters");
    assert_eq!(gw.net_faults, 4, "counter agrees with the journal");
    assert!(gw.frames_rejected >= 1, "corruption counted as a rejected frame");
}
