//! Property and corpus tests for the wire codec: encode→decode is the
//! identity on every expressible frame, and malformed / truncated /
//! oversized input is rejected without panicking.

use darwin_gateway::wire::{
    decode, encoded, Message, WireError, WireVerdict, GET_RECORD_LEN, HEADER_LEN, MAGIC, MAX_BODY_LEN,
    VERSION,
};
use darwin_gateway::VerdictOutcome;
use darwin_trace::Request;
use proptest::prelude::*;

fn frame(opcode: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(opcode);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GET frames round-trip: decoding an encoding yields the original
    /// records and consumes exactly the frame.
    #[test]
    fn get_roundtrip(recs in proptest::collection::vec(
        (0u64..u64::MAX, 1u64..1 << 40, 0u64..1 << 50), 1..300,
    )) {
        let records: Vec<Request> =
            recs.iter().map(|&(id, size, ts)| Request::new(id, size, ts)).collect();
        let bytes = encoded(&Message::Get(records.clone()));
        let (msg, used) = decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(msg, Message::Get(records));
    }

    /// Verdict frames round-trip through the packed byte encoding,
    /// including the v4 `Busy` outcome and its retry hint.
    #[test]
    fn verdicts_roundtrip(vs in proptest::collection::vec(
        (0u8..6, proptest::bool::ANY, 0u8..8), 1..500,
    )) {
        let verdicts: Vec<WireVerdict> = vs
            .iter()
            .map(|&(o, admitted, hint)| WireVerdict {
                outcome: match o {
                    0 => VerdictOutcome::HocHit,
                    1 => VerdictOutcome::DcHit,
                    2 => VerdictOutcome::OriginFetch,
                    3 => VerdictOutcome::Dropped,
                    4 => VerdictOutcome::Unavailable,
                    _ => VerdictOutcome::Busy,
                },
                // never-processed (dropped/unavailable/busy) + admitted is
                // inexpressible by construction
                admitted: admitted && o < 3,
                // a retry hint is only expressible on Busy
                retry_after: if o == 5 { hint } else { 0 },
            })
            .collect();
        let bytes = encoded(&Message::Verdicts(verdicts.clone()));
        let (msg, used) = decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(msg, Message::Verdicts(verdicts));
    }

    /// Stats replies round-trip arbitrary (UTF-8) payloads.
    #[test]
    fn stats_reply_roundtrip(chars in proptest::collection::vec(32u8..127, 0..2000)) {
        let json = String::from_utf8(chars).expect("ascii payload");
        let bytes = encoded(&Message::StatsReply(json.clone()));
        let (msg, used) = decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(msg, Message::StatsReply(json));
    }

    /// RESIZE frames round-trip every expressible target, and every strict
    /// prefix is "need more bytes" — a truncated resize is never silently
    /// applied as a different target.
    #[test]
    fn resize_roundtrip_and_truncation(target in 0u32..=u32::MAX) {
        let bytes = encoded(&Message::Resize(target));
        let (msg, used) = decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(msg, Message::Resize(target));
        for cut in 0..bytes.len() {
            prop_assert_eq!(decode(&bytes[..cut]).unwrap(), None, "cut at {}", cut);
        }
    }

    /// Every strict prefix of a valid frame decodes to "need more bytes" —
    /// never to a frame, never to an error, never a panic.
    #[test]
    fn truncations_are_incomplete_not_errors(recs in proptest::collection::vec(
        (0u64..1 << 32, 1u64..1 << 20, 0u64..1 << 30), 1..50,
    )) {
        let records: Vec<Request> =
            recs.iter().map(|&(id, size, ts)| Request::new(id, size, ts)).collect();
        let bytes = encoded(&Message::Get(records));
        for cut in 0..bytes.len() {
            prop_assert_eq!(decode(&bytes[..cut]).unwrap(), None, "cut at {}", cut);
        }
    }

    /// Arbitrary byte soup never panics the decoder: it either wants more
    /// bytes, yields a frame, or reports a structured error.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..600)) {
        let _ = decode(&bytes);
    }
}

#[test]
fn malformed_corpus_is_rejected() {
    // Wrong magic (both visible in a 2-byte prefix and in a full header).
    assert_eq!(decode(&[0xEF, 0xBE]), Err(WireError::BadMagic(0xBEEF)));
    let mut f = frame(0x02, &[]);
    f[0] = 0x00;
    assert_eq!(decode(&f), Err(WireError::BadMagic(0xDA00)));

    // Wrong version, visible from byte 3 on.
    let mut f = frame(0x02, &[]);
    f[2] = 9;
    assert_eq!(decode(&f), Err(WireError::BadVersion(9)));
    assert_eq!(decode(&f[..3]), Err(WireError::BadVersion(9)));

    // Unknown opcodes, client and server ranges (0x05/0x85 became
    // RESIZE/RESIZE_ACK in v5).
    for op in [0x00u8, 0x06, 0x42, 0x80, 0x86, 0xFF] {
        assert_eq!(decode(&frame(op, &[])), Err(WireError::UnknownOpcode(op)));
    }

    // Oversized body_len is rejected from the header alone — no body needed.
    let mut f = frame(0x01, &[]);
    f[4..8].copy_from_slice(&((MAX_BODY_LEN + 1) as u32).to_le_bytes());
    assert_eq!(decode(&f), Err(WireError::Oversized { opcode: 0x01, len: MAX_BODY_LEN + 1 }));

    // Body lengths illegal for their opcode.
    assert_eq!(decode(&frame(0x01, &[])), Err(WireError::BadBodyLen { opcode: 0x01, len: 0 }));
    assert_eq!(
        decode(&frame(0x01, &[0u8; GET_RECORD_LEN + 1])),
        Err(WireError::BadBodyLen { opcode: 0x01, len: GET_RECORD_LEN + 1 })
    );
    assert_eq!(decode(&frame(0x02, &[1])), Err(WireError::BadBodyLen { opcode: 0x02, len: 1 }));
    assert_eq!(decode(&frame(0x03, &[1])), Err(WireError::BadBodyLen { opcode: 0x03, len: 1 }));
    assert_eq!(decode(&frame(0x04, &[1])), Err(WireError::BadBodyLen { opcode: 0x04, len: 1 }));
    // RESIZE bodies are exactly 4 bytes (u32 target) — nothing else.
    for len in [0usize, 1, 3, 5, 8] {
        assert_eq!(
            decode(&frame(0x05, &vec![0u8; len])),
            Err(WireError::BadBodyLen { opcode: 0x05, len }),
            "RESIZE body len {len}"
        );
    }
    assert_eq!(decode(&frame(0x81, &[])), Err(WireError::BadBodyLen { opcode: 0x81, len: 0 }));
    assert_eq!(decode(&frame(0x83, &[1])), Err(WireError::BadBodyLen { opcode: 0x83, len: 1 }));

    // Resize acks must be UTF-8, like stats replies.
    assert_eq!(decode(&frame(0x85, &[0xFF, 0xFE])), Err(WireError::BadUtf8));

    // Verdict bytes with the reserved bit, unassigned outcomes, the
    // inexpressible never-processed-yet-admitted combinations, and (v4)
    // retry hints on non-Busy outcomes.
    for b in [
        0b1011u8,    // Dropped + admitted
        0b1100,      // Unavailable + admitted
        0b1101,      // Busy + admitted
        0b110,       // unassigned outcome 6
        0b111,       // unassigned outcome 7
        0b1_0000,    // retry hint on HocHit
        0b111_0100,  // retry hint on Unavailable
        0b101_1010,  // retry hint on OriginFetch + admitted
        0b1000_0000, // reserved bit 7
        0xFF,
    ] {
        assert_eq!(decode(&frame(0x81, &[b])), Err(WireError::BadVerdictByte(b)), "byte {b:#b}");
    }

    // Stats replies must be UTF-8.
    assert_eq!(decode(&frame(0x82, &[0xFF, 0xFE])), Err(WireError::BadUtf8));
}

/// A frame damaged in flight — any single bit flipped anywhere in a valid
/// `VERDICTS` frame — must decode to an error, an incomplete, or a
/// different-but-valid frame, never panic. (Length-extending flips in the
/// body-length field read as "need more bytes"; flips inside verdict bytes
/// either stay expressible or are rejected.)
#[test]
fn bit_flips_never_panic_the_decoder() {
    let body = [0b0000u8, 0b1010, 0b011, 0b100, 0b0101, 0b111_0101];
    let good = frame(0x81, &body);
    assert!(decode(&good).unwrap().is_some(), "corpus frame must be valid");
    for byte in 0..good.len() {
        for bit in 0..8 {
            let mut bad = good.clone();
            bad[byte] ^= 1 << bit;
            let _ = decode(&bad); // must not panic, whatever it returns
        }
    }
}

/// Same for a control frame that *mutates* the fleet: any single bit
/// flipped anywhere in a valid `RESIZE` frame decodes to an error, an
/// incomplete, or a structurally valid frame — never a panic. (A flip
/// inside the 4-byte target body decodes as a *different* resize; the
/// header's magic/version/opcode/length guards catch everything else. The
/// target itself is intentionally unguarded here — the ack echoes the
/// generation and shard count, so a client detects a mis-applied target at
/// the protocol level.)
#[test]
fn bit_flipped_resize_never_panics() {
    let good = encoded(&Message::Resize(6));
    assert!(decode(&good).unwrap().is_some(), "corpus frame must be valid");
    for byte in 0..good.len() {
        for bit in 0..8 {
            let mut bad = good.clone();
            bad[byte] ^= 1 << bit;
            let _ = decode(&bad); // must not panic, whatever it returns
        }
    }
}

/// The degraded-mode `Unavailable` bit (outcome 4) is a first-class citizen
/// of the verdict byte: it decodes next to processed and dropped verdicts,
/// and only its un-admitted form is legal.
#[test]
fn unavailable_verdict_frames_decode() {
    let body = [
        0b0000u8, // HocHit
        0b1010,   // OriginFetch + admitted
        0b011,    // Dropped
        0b100,    // Unavailable
    ];
    let (msg, used) = decode(&frame(0x81, &body)).unwrap().expect("complete frame");
    assert_eq!(used, HEADER_LEN + body.len());
    let Message::Verdicts(vs) = msg else { panic!("expected VERDICTS") };
    assert_eq!(
        vs.iter().map(|v| v.outcome).collect::<Vec<_>>(),
        vec![
            VerdictOutcome::HocHit,
            VerdictOutcome::OriginFetch,
            VerdictOutcome::Dropped,
            VerdictOutcome::Unavailable,
        ]
    );
    assert_eq!(vs[3], WireVerdict::UNAVAILABLE);
    assert!(vs[1].admitted && !vs[3].admitted);
}

/// The v4 overload outcome: `Busy` decodes alongside final verdicts, its
/// retry hint rides bits 4–6, and zero-hint `Busy` is legal (hint unknown).
#[test]
fn busy_verdict_frames_decode_with_retry_hints() {
    let body = [
        0b0101u8,   // Busy, no hint
        0b001_0101, // Busy, retry hint 1
        0b111_0101, // Busy, retry hint 7
        0b0000,     // HocHit — Busy must coexist with final verdicts
    ];
    let (msg, used) = decode(&frame(0x81, &body)).unwrap().expect("complete frame");
    assert_eq!(used, HEADER_LEN + body.len());
    let Message::Verdicts(vs) = msg else { panic!("expected VERDICTS") };
    assert_eq!(vs[0].outcome, VerdictOutcome::Busy);
    assert_eq!(vs[0].retry_after, 0);
    assert_eq!(vs[1], WireVerdict::busy(1));
    assert_eq!(vs[2], WireVerdict::busy(7));
    assert_eq!(vs[2].retry_after, 7);
    assert!(vs.iter().all(|v| !v.admitted));
    assert_eq!(vs[3].outcome, VerdictOutcome::HocHit);
    assert_eq!(vs[3].retry_after, 0, "final verdicts carry no hint");
}

#[test]
fn decode_consumes_one_frame_at_a_time() {
    let mut stream = encoded(&Message::Stats);
    stream.extend_from_slice(&encoded(&Message::Shutdown));
    let (first, used) = decode(&stream).unwrap().expect("first frame");
    assert_eq!(first, Message::Stats);
    let (second, used2) = decode(&stream[used..]).unwrap().expect("second frame");
    assert_eq!(second, Message::Shutdown);
    assert_eq!(used + used2, stream.len());
}
