//! Online expert identification and deployment (step 2, §4.2).
//!
//! [`OnlineController`] is the "brain" driven by a cache server: after the
//! server processes each request, the controller ingests the request and the
//! server's cumulative metrics, and occasionally returns a new expert to
//! deploy. Each epoch of `Ne` requests runs three phases:
//!
//! * **Warm-up** (`N_warmup` requests): an arbitrary expert (the previous
//!   epoch's choice) serves traffic while features are estimated; at the end
//!   the cluster is looked up and its best-expert set loaded.
//! * **Identify**: Track-and-Stop with Side Information deploys experts over
//!   rounds of `N_round` requests. At each round end the deployed expert's
//!   *real* reward is computed from the metrics window, fictitious rewards
//!   for all other candidates are generated with the cross-expert
//!   predictors, and the bandit decides the next deployment or stops.
//! * **Deploy**: the identified best expert serves the rest of the epoch.
//!
//! `N_round` "is chosen to be sufficiently long such that the state of the
//! cache … sufficiently de-correlates" — the controller models the residual
//! correlation with `correlation_length` (requests per effectively
//! independent sample) when scaling the per-request Bernoulli variances of
//! §4.1 into per-round reward variances.

use crate::expert::Expert;
use crate::model::DarwinModel;
use darwin_bandit::{TasConfig, TrackAndStopSideInfo};
use darwin_cache::CacheMetrics;
use darwin_ckpt::{CkptError, Dec, Enc};
use darwin_features::{DriftDetector, FeatureExtractor, FeatureVector, SizeDistribution};
use darwin_trace::Request;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Online-phase configuration. Defaults keep the paper's proportions
/// (N_e = 100 M, N_warmup = 3 M, N_round = 0.5 M ⇒ 3 % / 0.5 %) at a
/// laptop-friendly scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Epoch length N_e in requests.
    pub epoch_requests: usize,
    /// Warm-up (feature estimation) length N_warmup in requests.
    pub warmup_requests: usize,
    /// Bandit round length N_round in requests.
    pub round_requests: usize,
    /// Bandit failure probability δ.
    pub delta: f64,
    /// Stability stop: rounds of unchanged empirical best (paper: 5).
    pub stability_rounds: Option<usize>,
    /// Hard cap on identification rounds per epoch (0 = none).
    pub max_identify_rounds: usize,
    /// Requests per effectively independent reward sample within a round
    /// (cache-state correlation); round variance = Bernoulli variance /
    /// (round_requests / correlation_length).
    pub correlation_length: f64,
    /// Variance floor for the side-information matrix.
    pub min_variance: f64,
    /// Iterations of the α* optimizer per round.
    pub alpha_iters: usize,
    /// Extension beyond the paper: when set, a drift detector watches the
    /// deployed phase (chunks of `round_requests`) and restarts the epoch —
    /// warm-up, cluster lookup, identification — as soon as the live size
    /// statistics deviate from the just-identified traffic by more than this
    /// threshold (see [`darwin_features::DriftDetector`]; 0.2–0.8 sensible).
    /// `None` reproduces the paper's fixed-length epochs.
    pub drift_threshold: Option<f64>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            epoch_requests: 100_000,
            warmup_requests: 3_000,
            round_requests: 500,
            delta: 0.05,
            stability_rounds: Some(5),
            max_identify_rounds: 100,
            correlation_length: 25.0,
            min_variance: 1e-7,
            alpha_iters: 120,
            drift_threshold: None,
        }
    }
}

impl OnlineConfig {
    /// Scales all request counts by `factor` (e.g. to approach paper scale).
    pub fn scaled(&self, factor: usize) -> Self {
        Self {
            epoch_requests: self.epoch_requests * factor,
            warmup_requests: self.warmup_requests * factor,
            round_requests: self.round_requests * factor,
            ..*self
        }
    }
}

/// The controller's current phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerPhase {
    /// Feature estimation over the epoch's first `N_warmup` requests.
    Warmup,
    /// Bandit best-expert identification.
    Identify,
    /// Identified expert deployed for the rest of the epoch.
    Deploy,
}

/// A recorded expert switch (for reporting and the Fig 5d experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchEvent {
    /// Global request index at which the switch took effect.
    pub at_request: u64,
    /// Grid index of the newly deployed expert.
    pub expert: usize,
    /// Phase that triggered the switch.
    pub phase: ControllerPhase,
}

/// A control-plane decision buffered for the serving layer's event
/// journal. Drained (not persisted) via
/// [`OnlineController::drain_control_events`]: the buffer is telemetry,
/// so it is deliberately excluded from [`OnlineController::save_state`] —
/// a restored controller resumes with an empty buffer and byte-identical
/// persisted state.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// The controller deployed a different expert.
    Switch {
        /// Grid index of the previously deployed expert.
        from: usize,
        /// Grid index of the newly deployed expert.
        to: usize,
        /// Identification rounds completed this epoch when the switch fired.
        round: usize,
        /// Space-separated per-arm posterior means at the switch (empty
        /// when no bandit was live, e.g. a singleton expert set).
        posterior: String,
    },
    /// The drift detector fired and identification restarted early.
    Drift {
        /// Drift-triggered restarts so far, including this one.
        restarts: usize,
    },
}

/// Per-epoch identification summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochSummary {
    /// Cluster the warm-up features mapped to.
    pub cluster: usize,
    /// Size of the candidate expert set.
    pub set_size: usize,
    /// Bandit rounds used for identification (0 if the set was a singleton).
    pub identify_rounds: usize,
    /// Grid index of the expert deployed for the epoch tail.
    pub chosen_expert: usize,
}

/// The online controller state machine.
pub struct OnlineController {
    model: Arc<DarwinModel>,
    cfg: OnlineConfig,
    phase: ControllerPhase,
    epoch_request: usize,
    global_request: u64,
    current_expert: usize,
    extractor: FeatureExtractor,
    epoch_start_metrics: CacheMetrics,
    // Identification state.
    extended: Option<FeatureVector>,
    size_dist: Option<SizeDistribution>,
    set: Vec<usize>,
    cluster: usize,
    tas: Option<TrackAndStopSideInfo>,
    round_start_metrics: CacheMetrics,
    round_requests_seen: usize,
    pending_arm: usize,
    rounds_this_epoch: usize,
    // Drift-restart extension.
    drift: Option<DriftDetector>,
    drift_restarts: usize,
    // Reporting.
    switches: Vec<SwitchEvent>,
    epochs: Vec<EpochSummary>,
    // Telemetry buffer for the serving layer's journal; never persisted.
    pending_events: Vec<ControlEvent>,
}

impl OnlineController {
    /// New controller; the initial expert is grid index 0 until the first
    /// identification completes (the paper lets the operator pick any).
    pub fn new(model: Arc<DarwinModel>, cfg: OnlineConfig) -> Self {
        assert!(cfg.warmup_requests > 0, "warm-up must be positive");
        assert!(cfg.round_requests > 0, "round length must be positive");
        assert!(cfg.warmup_requests < cfg.epoch_requests, "warm-up must fit inside an epoch");
        Self {
            model,
            cfg,
            phase: ControllerPhase::Warmup,
            epoch_request: 0,
            global_request: 0,
            current_expert: 0,
            extractor: FeatureExtractor::paper_default(),
            epoch_start_metrics: CacheMetrics::default(),
            extended: None,
            size_dist: None,
            set: Vec::new(),
            cluster: 0,
            tas: None,
            round_start_metrics: CacheMetrics::default(),
            round_requests_seen: 0,
            pending_arm: 0,
            rounds_this_epoch: 0,
            drift: None,
            drift_restarts: 0,
            switches: Vec::new(),
            epochs: Vec::new(),
            pending_events: Vec::new(),
        }
    }

    /// The currently deployed expert.
    pub fn current_expert(&self) -> Expert {
        self.model.grid().get(self.current_expert)
    }

    /// Grid index of the currently deployed expert.
    pub fn current_expert_index(&self) -> usize {
        self.current_expert
    }

    /// Current phase.
    pub fn phase(&self) -> ControllerPhase {
        self.phase
    }

    /// All expert switches so far.
    pub fn switches(&self) -> &[SwitchEvent] {
        &self.switches
    }

    /// The full deployed-expert sequence: the initial expert (grid index 0,
    /// deployed from request 0) followed by every switch as `(at_request,
    /// expert)` pairs. Two controllers behaved identically iff their
    /// sequences are equal — the equality the sharded fleet's determinism
    /// contract is verified against.
    pub fn expert_sequence(&self) -> Vec<(u64, usize)> {
        std::iter::once((0, 0)).chain(self.switches.iter().map(|s| (s.at_request, s.expert))).collect()
    }

    /// Completed epoch summaries.
    pub fn epochs(&self) -> &[EpochSummary] {
        &self.epochs
    }

    /// Number of drift-triggered early epoch restarts (0 unless the
    /// `drift_threshold` extension is enabled).
    pub fn drift_restarts(&self) -> usize {
        self.drift_restarts
    }

    /// Takes the control-plane decisions buffered since the last drain
    /// (expert switches with round index and posterior summary, drift
    /// detections). The serving layer maps these into its event journal;
    /// callers that never drain pay only the buffer's memory until the
    /// controller is dropped.
    pub fn drain_control_events(&mut self) -> Vec<ControlEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// Ingests one processed request and the server's *cumulative* metrics
    /// after processing it. Returns `Some(expert)` when the deployment must
    /// change (the caller installs `expert.policy` on its server).
    pub fn observe(&mut self, req: &Request, cumulative: &CacheMetrics) -> Option<Expert> {
        self.global_request += 1;
        self.epoch_request += 1;

        let change = match self.phase {
            ControllerPhase::Warmup => self.observe_warmup(req, cumulative),
            ControllerPhase::Identify => self.observe_identify(cumulative),
            ControllerPhase::Deploy => {
                if let Some(detector) = &mut self.drift {
                    if detector.observe(req) {
                        self.drift_restarts += 1;
                        self.pending_events.push(ControlEvent::Drift { restarts: self.drift_restarts });
                        self.start_new_epoch(cumulative);
                        return None;
                    }
                }
                None
            }
        };

        // Epoch rollover (any phase; unfinished identification is abandoned
        // in favour of its current recommendation).
        if self.epoch_request >= self.cfg.epoch_requests {
            self.start_new_epoch(cumulative);
        }
        change
    }

    fn observe_warmup(&mut self, req: &Request, cumulative: &CacheMetrics) -> Option<Expert> {
        self.extractor.observe(req);
        if self.epoch_request < self.cfg.warmup_requests {
            return None;
        }
        // Warm-up complete: cluster lookup and expert-set load.
        let features = self.extractor.features();
        let extended = self.extractor.extended_features();
        let size_dist = self.extractor.size_distribution().clone();
        self.cluster = self.model.lookup_cluster(&features);
        self.set = self.model.expert_set(self.cluster).to_vec();
        self.extended = Some(extended);
        self.size_dist = Some(size_dist);
        self.rounds_this_epoch = 0;

        if self.set.len() == 1 {
            let chosen = self.set[0];
            self.phase = ControllerPhase::Deploy;
            self.arm_drift_detector();
            self.epochs.push(EpochSummary {
                cluster: self.cluster,
                set_size: 1,
                identify_rounds: 0,
                chosen_expert: chosen,
            });
            return self.switch_to(chosen);
        }

        // Bootstrap Σ from the warm-up expert's observed hit rate.
        let warm_window = cumulative.diff(&self.epoch_start_metrics);
        let p_warm = warm_window.hoc_ohr();
        let extended = self.extended.as_ref().expect("set above");
        let marginals =
            self.model.bootstrap_marginals(&self.set, extended, Some((self.current_expert, p_warm)));
        let effective = (self.cfg.round_requests as f64 / self.cfg.correlation_length).max(1.0);
        let sigma =
            self.model.side_info(&self.set, extended, &marginals, effective, self.cfg.min_variance);
        let tas_cfg = TasConfig {
            stability_rounds: self.cfg.stability_rounds,
            max_rounds: self.cfg.max_identify_rounds,
            alpha_iters: self.cfg.alpha_iters,
            ..TasConfig::default()
        };
        let mut tas = TrackAndStopSideInfo::new(sigma, self.cfg.delta, tas_cfg);

        self.phase = ControllerPhase::Identify;
        if tas.finished() {
            // Degenerate single-arm case already handled; defensive.
            let chosen = self.set[tas.recommend()];
            self.tas = None;
            self.phase = ControllerPhase::Deploy;
            return self.switch_to(chosen);
        }
        let arm = tas.next_arm();
        self.pending_arm = arm;
        self.tas = Some(tas);
        self.round_start_metrics = *cumulative;
        self.round_requests_seen = 0;
        let chosen = self.set[arm];
        self.switch_to(chosen)
    }

    fn observe_identify(&mut self, cumulative: &CacheMetrics) -> Option<Expert> {
        self.round_requests_seen += 1;
        if self.round_requests_seen < self.cfg.round_requests {
            return None;
        }
        // Round complete: real reward for the deployed arm, fictitious for
        // the rest.
        let window = cumulative.diff(&self.round_start_metrics);
        let p_hat = window.hoc_ohr();
        let real_reward = self.model.objective().reward(&window);
        let extended = self.extended.as_ref().expect("identification requires features");
        let size_dist = self.size_dist.as_ref().expect("identification requires size dist");
        let deployed_global = self.set[self.pending_arm];

        let y: Vec<f64> = self
            .set
            .iter()
            .enumerate()
            .map(|(a, &j)| {
                if a == self.pending_arm {
                    real_reward
                } else {
                    let pred_hit = self.model.predict_hit_rate(deployed_global, j, p_hat, extended);
                    self.model.hit_rate_to_reward(j, pred_hit, size_dist)
                }
            })
            .collect();

        let tas = self.tas.as_mut().expect("identify phase has a bandit");
        tas.observe(self.pending_arm, &y);
        self.rounds_this_epoch += 1;

        if tas.finished() {
            let chosen = self.set[tas.recommend()];
            self.phase = ControllerPhase::Deploy;
            self.arm_drift_detector();
            self.epochs.push(EpochSummary {
                cluster: self.cluster,
                set_size: self.set.len(),
                identify_rounds: self.rounds_this_epoch,
                chosen_expert: chosen,
            });
            // Switch before dropping the bandit so the deploy switch's
            // journal event carries the final posterior.
            let change = self.switch_to(chosen);
            self.tas = None;
            return change;
        }
        let arm = tas.next_arm();
        self.pending_arm = arm;
        self.round_start_metrics = *cumulative;
        self.round_requests_seen = 0;
        let chosen = self.set[arm];
        self.switch_to(chosen)
    }

    /// Creates the drift detector when the deploy phase begins (extension;
    /// no-op with the paper's fixed epochs).
    fn arm_drift_detector(&mut self) {
        self.drift =
            self.cfg.drift_threshold.map(|t| DriftDetector::new(self.cfg.round_requests.max(1), t));
    }

    fn start_new_epoch(&mut self, cumulative: &CacheMetrics) {
        if self.phase == ControllerPhase::Identify {
            // Epoch ended mid-identification: record the best-effort choice.
            if let Some(tas) = &self.tas {
                self.epochs.push(EpochSummary {
                    cluster: self.cluster,
                    set_size: self.set.len(),
                    identify_rounds: self.rounds_this_epoch,
                    chosen_expert: self.set[tas.recommend()],
                });
            }
            self.tas = None;
        }
        self.phase = ControllerPhase::Warmup;
        self.epoch_request = 0;
        self.extractor = FeatureExtractor::paper_default();
        self.epoch_start_metrics = *cumulative;
        self.drift = None;
        // Keep the current expert through warm-up ("or one from the previous
        // epoch", §4.2).
    }

    /// Serializes the controller's dynamic state (everything except the
    /// immutable [`DarwinModel`] and [`OnlineConfig`], which the restoring
    /// side must already hold). The bytes begin with a canonical fingerprint
    /// of the config so [`OnlineController::restore_state`] can refuse a
    /// restore into a controller configured differently.
    pub fn save_state(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.bytes(&online_config_fingerprint(&self.cfg));
        enc.u8(phase_tag(self.phase));
        enc.usize(self.epoch_request);
        enc.u64(self.global_request);
        enc.usize(self.current_expert);
        self.extractor.encode_state(&mut enc);
        self.epoch_start_metrics.encode_state(&mut enc);
        enc.opt(self.extended.as_ref(), |e, v| v.encode_state(e));
        enc.opt(self.size_dist.as_ref(), |e, v| v.encode_state(e));
        enc.seq(&self.set, |e, &v| e.usize(v));
        enc.usize(self.cluster);
        enc.opt(self.tas.as_ref(), |e, t| t.encode_state(e));
        self.round_start_metrics.encode_state(&mut enc);
        enc.usize(self.round_requests_seen);
        enc.usize(self.pending_arm);
        enc.usize(self.rounds_this_epoch);
        enc.opt(self.drift.as_ref(), |e, d| d.encode_state(e));
        enc.usize(self.drift_restarts);
        enc.seq(&self.switches, |e, s| {
            e.u64(s.at_request);
            e.usize(s.expert);
            e.u8(phase_tag(s.phase));
        });
        enc.seq(&self.epochs, |e, ep| {
            e.usize(ep.cluster);
            e.usize(ep.set_size);
            e.usize(ep.identify_rounds);
            e.usize(ep.chosen_expert);
        });
        enc.into_bytes()
    }

    /// Restores the dynamic state saved by [`OnlineController::save_state`]
    /// into this controller (which must have been built with the same model
    /// and config). On error, `self` is left untouched.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut dec = Dec::new(bytes);
        let fp = dec.bytes()?;
        if fp != online_config_fingerprint(&self.cfg).as_slice() {
            return Err(CkptError::Malformed("online config fingerprint mismatch".into()));
        }
        let phase = phase_from_tag(dec.u8()?)?;
        let epoch_request = dec.usize()?;
        let global_request = dec.u64()?;
        let current_expert = dec.usize()?;
        let extractor = darwin_features::FeatureExtractor::decode_state(&mut dec)?;
        let epoch_start_metrics = CacheMetrics::decode_state(&mut dec)?;
        let extended = dec.opt(FeatureVector::decode_state)?;
        let size_dist = dec.opt(SizeDistribution::decode_state)?;
        let set: Vec<usize> = dec.seq(|d| d.usize())?;
        let cluster = dec.usize()?;
        let tas = dec.opt(TrackAndStopSideInfo::decode_state)?;
        let round_start_metrics = CacheMetrics::decode_state(&mut dec)?;
        let round_requests_seen = dec.usize()?;
        let pending_arm = dec.usize()?;
        let rounds_this_epoch = dec.usize()?;
        let drift = dec.opt(DriftDetector::decode_state)?;
        let drift_restarts = dec.usize()?;
        let switches: Vec<SwitchEvent> = dec.seq(|d| {
            Ok(SwitchEvent { at_request: d.u64()?, expert: d.usize()?, phase: phase_from_tag(d.u8()?)? })
        })?;
        let epochs: Vec<EpochSummary> = dec.seq(|d| {
            Ok(EpochSummary {
                cluster: d.usize()?,
                set_size: d.usize()?,
                identify_rounds: d.usize()?,
                chosen_expert: d.usize()?,
            })
        })?;
        dec.finish()?;

        let grid_len = self.model.grid().len();
        if current_expert >= grid_len || set.iter().any(|&j| j >= grid_len) {
            return Err(CkptError::Malformed("expert index out of grid range".into()));
        }
        if let Some(t) = &tas {
            if phase != ControllerPhase::Identify {
                return Err(CkptError::Malformed("bandit present outside Identify phase".into()));
            }
            if t.k() != set.len() || pending_arm >= set.len() {
                return Err(CkptError::Malformed("bandit arm count mismatch".into()));
            }
        } else if phase == ControllerPhase::Identify {
            return Err(CkptError::Malformed("Identify phase without a bandit".into()));
        }

        self.phase = phase;
        self.epoch_request = epoch_request;
        self.global_request = global_request;
        self.current_expert = current_expert;
        self.extractor = extractor;
        self.epoch_start_metrics = epoch_start_metrics;
        self.extended = extended;
        self.size_dist = size_dist;
        self.set = set;
        self.cluster = cluster;
        self.tas = tas;
        self.round_start_metrics = round_start_metrics;
        self.round_requests_seen = round_requests_seen;
        self.pending_arm = pending_arm;
        self.rounds_this_epoch = rounds_this_epoch;
        self.drift = drift;
        self.drift_restarts = drift_restarts;
        self.switches = switches;
        self.epochs = epochs;
        // The telemetry buffer is not part of the persisted state; a
        // restored controller starts with nothing pending.
        self.pending_events.clear();
        Ok(())
    }

    fn switch_to(&mut self, expert_idx: usize) -> Option<Expert> {
        if expert_idx == self.current_expert {
            return None;
        }
        let from = self.current_expert;
        self.current_expert = expert_idx;
        self.switches.push(SwitchEvent {
            at_request: self.global_request,
            expert: expert_idx,
            phase: self.phase,
        });
        let posterior = self.tas.as_ref().map_or_else(String::new, |tas| {
            let means = tas.means();
            let mut out = String::new();
            for (i, m) in means.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{m:.4}"));
            }
            out
        });
        self.pending_events.push(ControlEvent::Switch {
            from,
            to: expert_idx,
            round: self.rounds_this_epoch,
            posterior,
        });
        Some(self.model.grid().get(expert_idx))
    }
}

fn phase_tag(phase: ControllerPhase) -> u8 {
    match phase {
        ControllerPhase::Warmup => 0,
        ControllerPhase::Identify => 1,
        ControllerPhase::Deploy => 2,
    }
}

fn phase_from_tag(tag: u8) -> Result<ControllerPhase, CkptError> {
    match tag {
        0 => Ok(ControllerPhase::Warmup),
        1 => Ok(ControllerPhase::Identify),
        2 => Ok(ControllerPhase::Deploy),
        other => Err(CkptError::Malformed(format!("unknown controller phase tag {other}"))),
    }
}

/// Canonical byte encoding of an [`OnlineConfig`], used to refuse restoring
/// controller state across differently-configured controllers.
fn online_config_fingerprint(cfg: &OnlineConfig) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.usize(cfg.epoch_requests);
    enc.usize(cfg.warmup_requests);
    enc.usize(cfg.round_requests);
    enc.f64(cfg.delta);
    enc.opt(cfg.stability_rounds.as_ref(), |e, &v| e.usize(v));
    enc.usize(cfg.max_identify_rounds);
    enc.f64(cfg.correlation_length);
    enc.f64(cfg.min_variance);
    enc.usize(cfg.alpha_iters);
    enc.opt(cfg.drift_threshold.as_ref(), |e, &v| e.f64(v));
    enc.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::{Expert, ExpertGrid};
    use crate::offline::{OfflineConfig, OfflineTrainer};
    use darwin_cache::{CacheConfig, CacheServer};
    use darwin_nn::TrainConfig;
    use darwin_trace::{MixSpec, Trace, TraceGenerator, TrafficClass};

    fn small_model() -> Arc<DarwinModel> {
        let cfg = OfflineConfig {
            grid: ExpertGrid::new(vec![
                Expert::new(1, 20),
                Expert::new(1, 500),
                Expert::new(5, 20),
                Expert::new(5, 500),
            ]),
            hoc_bytes: 2 * 1024 * 1024,
            nn_train: TrainConfig { epochs: 40, ..TrainConfig::default() },
            n_clusters: 2,
            ..OfflineConfig::default()
        };
        let trainer = OfflineTrainer::new(cfg);
        let traces: Vec<Trace> = (0..4)
            .map(|i| {
                TraceGenerator::new(
                    MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), i as f64 / 3.0),
                    10 + i as u64,
                )
                .generate(10_000)
            })
            .collect();
        Arc::new(trainer.train(&traces))
    }

    fn test_cfg() -> OnlineConfig {
        OnlineConfig {
            epoch_requests: 20_000,
            warmup_requests: 1_000,
            round_requests: 300,
            ..OnlineConfig::default()
        }
    }

    fn drive(model: Arc<DarwinModel>, cfg: OnlineConfig, trace: &Trace) -> OnlineController {
        let mut ctrl = OnlineController::new(model, cfg);
        let mut server =
            CacheServer::new(CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() });
        server.set_policy(ctrl.current_expert().policy);
        for r in trace {
            server.process(r);
            if let Some(e) = ctrl.observe(r, &server.metrics()) {
                server.set_policy(e.policy);
            }
        }
        ctrl
    }

    #[test]
    fn progresses_through_phases() {
        let model = small_model();
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 99).generate(15_000);
        let ctrl = drive(model, test_cfg(), &trace);
        assert_eq!(ctrl.phase(), ControllerPhase::Deploy, "should reach Deploy");
        assert_eq!(ctrl.epochs().len(), 1);
        let ep = ctrl.epochs()[0];
        assert!(ep.set_size >= 1);
        assert!(ep.chosen_expert < 4);
    }

    #[test]
    fn epoch_rollover_restarts_warmup() {
        let model = small_model();
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::download()), 7).generate(45_000);
        let ctrl = drive(model, test_cfg(), &trace);
        // 45k requests / 20k epoch = at least 2 completed epochs.
        assert!(ctrl.epochs().len() >= 2, "epochs: {:?}", ctrl.epochs().len());
    }

    #[test]
    fn switches_are_recorded_in_order() {
        let model = small_model();
        let trace = TraceGenerator::new(
            MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
            3,
        )
        .generate(15_000);
        let ctrl = drive(model, test_cfg(), &trace);
        let s = ctrl.switches();
        assert!(s.windows(2).all(|w| w[0].at_request <= w[1].at_request));
    }

    #[test]
    fn identification_uses_bounded_rounds() {
        let model = small_model();
        let cfg = OnlineConfig { max_identify_rounds: 6, ..test_cfg() };
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 5).generate(15_000);
        let ctrl = drive(model, cfg, &trace);
        for ep in ctrl.epochs() {
            assert!(ep.identify_rounds <= 6, "rounds {}", ep.identify_rounds);
        }
    }

    #[test]
    #[should_panic(expected = "warm-up must fit inside an epoch")]
    fn rejects_warmup_longer_than_epoch() {
        let model = small_model();
        OnlineController::new(
            model,
            OnlineConfig { epoch_requests: 100, warmup_requests: 100, ..OnlineConfig::default() },
        );
    }

    #[test]
    fn controller_is_send() {
        // Per-shard controllers live on fleet worker threads; this must keep
        // compiling if OnlineController grows new state.
        fn assert_send<T: Send>() {}
        assert_send::<OnlineController>();
    }

    #[test]
    fn expert_sequence_starts_at_initial_expert() {
        let model = small_model();
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 99).generate(15_000);
        let ctrl = drive(model, test_cfg(), &trace);
        let seq = ctrl.expert_sequence();
        assert_eq!(seq[0], (0, 0));
        assert_eq!(seq.len(), ctrl.switches().len() + 1);
        for (ev, &(at, ex)) in ctrl.switches().iter().zip(&seq[1..]) {
            assert_eq!((ev.at_request, ev.expert), (at, ex));
        }
    }

    #[test]
    fn save_restore_mid_run_resumes_bitwise_identically() {
        let model = small_model();
        let cfg = test_cfg();
        let trace = TraceGenerator::new(
            MixSpec::two_class(TrafficClass::image(), TrafficClass::download(), 0.5),
            42,
        )
        .generate(30_000);
        let requests = trace.requests();
        // Split inside the second epoch's identification window.
        let split = 21_500;

        let cache_cfg = CacheConfig { hoc_bytes: 2 * 1024 * 1024, ..CacheConfig::small_test() };
        let mut ctrl = OnlineController::new(Arc::clone(&model), cfg);
        let mut server = CacheServer::new(cache_cfg.clone());
        server.set_policy(ctrl.current_expert().policy);
        for r in &requests[..split] {
            server.process(r);
            if let Some(e) = ctrl.observe(r, &server.metrics()) {
                server.set_policy(e.policy);
            }
        }

        let saved = ctrl.save_state();
        let mut restored = OnlineController::new(Arc::clone(&model), cfg);
        restored.restore_state(&saved).unwrap();
        assert_eq!(restored.phase(), ctrl.phase());
        assert_eq!(restored.current_expert_index(), ctrl.current_expert_index());
        assert_eq!(restored.expert_sequence(), ctrl.expert_sequence());
        assert_eq!(restored.epochs(), ctrl.epochs());
        // Canonical encoding: re-saving the restored controller is bit-equal.
        assert_eq!(restored.save_state(), saved);

        // Warm-restore the cache server alongside the controller and verify
        // every decision over the tail matches the uninterrupted run.
        let mut server2 = CacheServer::restore_state(cache_cfg, &server.save_state()).unwrap();
        server2.set_policy(restored.current_expert().policy);
        for r in &requests[split..] {
            server.process(r);
            server2.process(r);
            let a = ctrl.observe(r, &server.metrics());
            let b = restored.observe(r, &server2.metrics());
            assert_eq!(
                a.as_ref().map(|e| e.policy),
                b.as_ref().map(|e| e.policy),
                "policy switch diverged"
            );
            if let Some(e) = a {
                server.set_policy(e.policy);
            }
            if let Some(e) = b {
                server2.set_policy(e.policy);
            }
        }
        assert_eq!(restored.expert_sequence(), ctrl.expert_sequence());
        assert_eq!(restored.epochs(), ctrl.epochs());
        assert_eq!(server2.metrics(), server.metrics());
    }

    #[test]
    fn restore_rejects_mismatched_config_and_corrupt_bytes() {
        let model = small_model();
        let trace = TraceGenerator::new(MixSpec::single(TrafficClass::image()), 11).generate(5_000);
        let ctrl = drive(Arc::clone(&model), test_cfg(), &trace);
        let saved = ctrl.save_state();

        // Different round length → fingerprint mismatch.
        let other_cfg = OnlineConfig { round_requests: 400, ..test_cfg() };
        let mut other = OnlineController::new(Arc::clone(&model), other_cfg);
        assert!(other.restore_state(&saved).is_err());
        // ... and the failed restore left it untouched.
        assert_eq!(other.phase(), ControllerPhase::Warmup);
        assert_eq!(other.expert_sequence(), vec![(0, 0)]);

        // Every truncation is rejected without panicking.
        let mut same = OnlineController::new(Arc::clone(&model), test_cfg());
        for keep in (0..saved.len()).step_by(97) {
            assert!(same.restore_state(&saved[..keep]).is_err(), "truncation to {keep} accepted");
        }
    }

    #[test]
    fn scaled_config_multiplies_lengths() {
        let c = OnlineConfig::default().scaled(3);
        assert_eq!(c.epoch_requests, 300_000);
        assert_eq!(c.warmup_requests, 9_000);
        assert_eq!(c.round_requests, 1_500);
    }
}
