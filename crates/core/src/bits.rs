//! Packed bitsets for per-request hit indicators.
//!
//! Cross-expert predictor training needs, for every expert pair (i, j) and
//! every trace, the joint hit/miss counts over the trace's requests (§4.1's
//! type (a)/(b)/(c) request classification). Storing one bit per request per
//! expert and intersecting with word-wise popcounts keeps this cheap: 36
//! experts × 1 M requests is 4.5 MB and a pair intersection is ~16 k
//! popcounts.

/// A fixed-length packed bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// An all-zeros bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Builds from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        let mut b = Bitset::new(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            if v {
                b.set(i);
            }
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of positions set in both `self` and `other`.
    pub fn and_count(&self, other: &Bitset) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Number of positions cleared in `self` but set in `other`.
    pub fn andnot_count(&self, other: &Bitset) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        let full = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (!a & b).count_ones() as usize)
            .sum::<usize>();
        // Mask out phantom bits beyond `len` in the last word: they are 0 in
        // `self`, so `!a` sets them — but `other` has 0 there too, so the
        // AND clears them. No correction needed; kept for clarity.
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitset::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn from_bools_matches() {
        let pattern: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let b = Bitset::from_bools(pattern.iter().copied());
        for (i, &v) in pattern.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
        assert_eq!(b.count_ones(), pattern.iter().filter(|&&v| v).count());
    }

    #[test]
    fn and_and_andnot_counts() {
        let a = Bitset::from_bools((0..200).map(|i| i % 2 == 0));
        let b = Bitset::from_bools((0..200).map(|i| i % 3 == 0));
        let both = (0..200).filter(|i| i % 2 == 0 && i % 3 == 0).count();
        let only_b = (0..200).filter(|i| i % 2 != 0 && i % 3 == 0).count();
        assert_eq!(a.and_count(&b), both);
        assert_eq!(a.andnot_count(&b), only_b);
    }

    #[test]
    fn empty_bitset() {
        let b = Bitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Bitset::new(10).get(10);
    }
}
